//! Cross-crate integration focused on the fault-simulation claims of
//! Table 6, including the top-up extension and bridging faults.

use scanft_core::flow::{run_flow, FlowConfig};
use scanft_core::generate::{generate, per_transition_baseline, GenConfig};
use scanft_fsm::{benchmarks, uio};
use scanft_sim::{campaign, faults};
use scanft_synth::{synthesize, SynthConfig};

/// On small benchmarks the default flow achieves complete detectable
/// coverage for both fault models, or the flow proves the misses redundant.
#[test]
fn complete_detectable_coverage_small_suite() {
    for name in ["lion", "bbtas", "dk15", "dk27", "shiftreg", "mc", "ex5"] {
        let table = benchmarks::build(name).expect("registry circuit");
        let report = run_flow(&table, &FlowConfig::default());
        let gate = report.gate.expect("gate level on");
        assert!(
            gate.stuck.complete_detectable_coverage(),
            "{name}: stuck-at incomplete"
        );
        assert!(
            gate.bridging.complete_detectable_coverage(),
            "{name}: bridging incomplete"
        );
    }
}

/// The top-up extension closes any masking gap: with it enabled, detected +
/// proven-undetectable accounts for every classified fault.
#[test]
fn top_up_closes_masking_gaps() {
    for name in ["dk17", "dk512"] {
        let table = benchmarks::build(name).expect("registry circuit");
        let report = run_flow(
            &table,
            &FlowConfig {
                top_up: true,
                ..FlowConfig::default()
            },
        );
        let gate = report.gate.expect("gate level on");
        for (label, m) in [("stuck", &gate.stuck), ("bridge", &gate.bridging)] {
            assert_eq!(
                m.detected + m.proven_undetectable + m.unclassified,
                m.total_faults,
                "{name}/{label}"
            );
        }
    }
}

/// The functional tests never detect fewer faults than they do transitions'
/// worth of baseline coverage misses: the per-transition baseline is an
/// upper bound that the functional set approaches.
#[test]
fn functional_vs_baseline_detection() {
    for name in ["lion", "bbtas", "dk17", "beecount"] {
        let table = benchmarks::build(name).expect("registry circuit");
        let uios = uio::derive_uios(&table, table.num_state_vars());
        let set = generate(&table, &uios, &GenConfig::default());
        let circuit = synthesize(&table, &SynthConfig::default());
        let stuck = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
        let funct = campaign::run(circuit.netlist(), &set.to_scan_tests(&circuit), &stuck);
        let base_set = per_transition_baseline(&table);
        let base = campaign::run(circuit.netlist(), &base_set.to_scan_tests(&circuit), &stuck);
        // The baseline is exhaustive over (state, input): it detects every
        // detectable fault; the functional set may mask a few but never
        // detects something the baseline misses.
        assert!(base.detected() >= funct.detected(), "{name}");
        for (f, d) in funct.detecting_test.iter().enumerate() {
            if d.is_some() {
                assert!(base.detecting_test[f].is_some(), "{name}: fault {f}");
            }
        }
    }
}

/// Bridging fault universes obey the paper's three structural conditions.
#[test]
fn bridging_pairs_satisfy_paper_conditions() {
    for name in ["lion", "dk16", "beecount"] {
        let table = benchmarks::build(name).expect("registry circuit");
        let circuit = synthesize(&table, &SynthConfig::default());
        let netlist = circuit.netlist();
        let reach = scanft_netlist::Reachability::new(netlist);
        let bridges = faults::enumerate_bridging(netlist, usize::MAX);
        for f in &bridges.faults {
            for net in [f.a, f.b] {
                let gate = netlist.driver(net).expect("bridged nets are gate outputs");
                assert!(gate.inputs.len() > 1, "{name}: condition 1");
                assert!(
                    !netlist.fanout(net).is_empty(),
                    "{name}: condition 2 (gate input)"
                );
            }
            let shared = netlist
                .fanout(f.a)
                .iter()
                .any(|g| netlist.fanout(f.b).contains(g));
            assert!(!shared, "{name}: condition 2 (different gates)");
            assert!(reach.independent(f.a, f.b), "{name}: condition 3");
        }
    }
}

/// Effective-test pruning keeps coverage for bridging faults too.
#[test]
fn effective_bridging_tests_preserve_coverage() {
    let table = benchmarks::build("lion").expect("registry circuit");
    let uios = uio::derive_uios(&table, table.num_state_vars());
    let set = generate(&table, &uios, &GenConfig::default());
    let circuit = synthesize(&table, &SynthConfig::default());
    let bridges = faults::enumerate_bridging(circuit.netlist(), usize::MAX);
    let list = faults::bridges_as_fault_list(&bridges.faults);
    let tests = set.to_scan_tests(&circuit);
    let report = campaign::run_decreasing_length(circuit.netlist(), &tests, &list);
    let effective: Vec<_> = report
        .effective_tests()
        .iter()
        .map(|&t| tests[t].clone())
        .collect();
    let pruned = campaign::run(circuit.netlist(), &effective, &list);
    assert_eq!(pruned.detected(), report.detected());
}
