//! Cross-crate integration: KISS2 in, functional tests out, gate-level
//! verification across encodings, compaction, and the CLI-facing flow.

use scanft_core::compact::combine_tests;
use scanft_core::flow::{run_flow, FlowConfig};
use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::{benchmarks, kiss, uio};
use scanft_sim::{campaign, faults};
use scanft_synth::{synthesize, verify_against_table, Encoding, SynthConfig};

/// A machine authored in KISS2 goes through the whole pipeline.
#[test]
fn kiss2_to_coverage() {
    let src = "\
.i 1
.o 1
.s 4
.r s0
0 s0 s0 0
1 s0 s1 1
0 s1 s2 1
1 s1 s1 0
0 s2 s3 0
1 s2 s0 1
0 s3 s1 1
1 s3 s3 1
.e
";
    let table = kiss::parse_with(src, "pipe", kiss::Completion::Reject).expect("valid KISS2");
    let uios = uio::derive_uios(&table, table.num_state_vars());
    let set = generate(&table, &uios, &GenConfig::default());

    // Every transition targeted exactly once.
    let mut seen = vec![false; table.num_transitions()];
    for t in &set.tests {
        for &(s, a) in &t.targets {
            let cell = s as usize * table.num_input_combos() + a as usize;
            assert!(!seen[cell]);
            seen[cell] = true;
        }
    }
    assert!(seen.iter().all(|&x| x));

    // Both encodings verify and reach complete detectable coverage.
    for encoding in [Encoding::Binary, Encoding::Gray] {
        let circuit = synthesize(
            &table,
            &SynthConfig {
                encoding,
                ..SynthConfig::default()
            },
        );
        verify_against_table(&circuit, &table, None).expect("synthesis matches the table");
        let stuck = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
        let report = campaign::run(circuit.netlist(), &set.to_scan_tests(&circuit), &stuck);
        for f in report.undetected_faults() {
            assert_eq!(
                scanft_sim::exhaustive::is_detectable(circuit.netlist(), &stuck[f], 1 << 20),
                scanft_sim::exhaustive::Detectability::Undetectable,
                "{encoding:?}: missed a detectable fault"
            );
        }
    }
}

/// KISS2 round-trips through the benchmark suite's own serialization.
#[test]
fn benchmarks_round_trip_kiss() {
    for name in ["lion", "bbtas", "dk15", "shiftreg", "mc"] {
        let table = benchmarks::build(name).expect("registry circuit");
        let text = kiss::write(&table);
        let back = kiss::parse_with(&text, name, kiss::Completion::Reject).expect("round trip");
        assert_eq!(table, back, "{name}");
    }
}

/// Coverage-preserving compaction on top of the generated tests (the
/// extension from the paper's reference [7]).
#[test]
fn compaction_preserves_gate_coverage() {
    let table = benchmarks::build("dk27").expect("registry circuit");
    let uios = uio::derive_uios(&table, table.num_state_vars());
    let set = generate(&table, &uios, &GenConfig::default());
    let circuit = synthesize(&table, &SynthConfig::default());
    let stuck = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
    let before = campaign::run(circuit.netlist(), &set.to_scan_tests(&circuit), &stuck).detected();
    let result = combine_tests(&set, |candidate| {
        let tests: Vec<_> = candidate.iter().map(|t| t.to_scan_test(&circuit)).collect();
        campaign::run(circuit.netlist(), &tests, &stuck).detected() >= before
    });
    let after_tests: Vec<_> = result
        .tests
        .iter()
        .map(|t| t.to_scan_test(&circuit))
        .collect();
    let after = campaign::run(circuit.netlist(), &after_tests, &stuck).detected();
    assert_eq!(before, after);
    assert!(result.tests.len() <= set.tests.len());
}

/// The functional-only flow runs on every in-budget benchmark and respects
/// the structural invariants of Tables 5 and 7.
#[test]
fn functional_flow_structural_invariants() {
    for spec in benchmarks::CIRCUITS {
        if spec.num_transitions() > 2048 {
            continue; // keep the integration suite fast
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let report = run_flow(
            &table,
            &FlowConfig {
                gate_level: false,
                ..FlowConfig::default()
            },
        );
        assert_eq!(report.tests.num_transitions, spec.num_transitions());
        assert!(
            report.tests.tests.len() <= spec.num_transitions(),
            "{}",
            spec.name
        );
        // Baseline cycle formula (the paper's Table 7 `trans` column).
        let trans = spec.num_transitions() as u64;
        assert_eq!(
            report.baseline_cycles,
            spec.num_state_vars as u64 * (trans + 1) + trans,
            "{}",
            spec.name
        );
    }
}
