//! Golden integration test: every exactly-reproducible artifact of the
//! paper's `lion` running example, exercised across all five crates.

use scanft_core::cycles::{percent_of, test_set_cycles};
use scanft_core::flow::{run_flow, FlowConfig};
use scanft_core::generate::{generate, per_transition_baseline, GenConfig};
use scanft_fsm::{benchmarks, format_input_seq, uio};

/// Table 1: the embedded machine (spot-checked; the cell-by-cell check
/// lives in `scanft-fsm`).
#[test]
fn table1_lion_dimensions() {
    let lion = benchmarks::lion();
    assert_eq!(lion.num_inputs(), 2);
    assert_eq!(lion.num_outputs(), 1);
    assert_eq!(lion.num_states(), 4);
    assert_eq!(lion.num_state_vars(), 2);
    assert_eq!(lion.num_transitions(), 16);
}

/// Table 2: the UIO sequences, verbatim.
#[test]
fn table2_uio_sequences() {
    let lion = benchmarks::lion();
    let uios = uio::derive_uios(&lion, 2);
    let u0 = uios.sequence(0).expect("state 0 has a UIO");
    assert_eq!(format_input_seq(&u0.inputs, 2), "00");
    assert_eq!(u0.final_state, 0);
    assert!(uios.sequence(1).is_none());
    let u2 = uios.sequence(2).expect("state 2 has a UIO");
    assert_eq!(format_input_seq(&u2.inputs, 2), "00 11");
    assert_eq!(u2.final_state, 3);
    assert!(uios.sequence(3).is_none());
}

/// Section 2's walkthrough: the nine tests, verbatim.
#[test]
fn section2_tests_verbatim() {
    let lion = benchmarks::lion();
    let uios = uio::derive_uios(&lion, 2);
    let set = generate(&lion, &uios, &GenConfig::default());
    let expect = [
        "(0, (00 00 01), 1)",
        "(0, (10 00 11 00 01 00), 1)",
        "(1, (11 00 01 01), 1)",
        "(2, (00 00 11 00), 1)",
        "(2, (01 00 11 01 00 11 10), 3)",
        "(1, (10), 3)",
        "(2, (10), 3)",
        "(2, (11), 3)",
        "(3, (11), 3)",
    ];
    let got: Vec<String> = set.tests.iter().map(|t| t.display(&lion)).collect();
    assert_eq!(got, expect);
}

/// Table 5 row and Table 7 row for lion, verbatim.
#[test]
fn table5_and_table7_lion_rows() {
    let lion = benchmarks::lion();
    let uios = uio::derive_uios(&lion, 2);
    let set = generate(&lion, &uios, &GenConfig::default());
    assert_eq!(set.num_transitions, 16);
    assert_eq!(set.tests.len(), 9);
    assert_eq!(set.total_length(), 28);
    assert!((set.percent_unit_tested() - 25.0).abs() < 1e-9);

    let base = per_transition_baseline(&lion);
    let base_cycles = test_set_cycles(&base, 2);
    let cycles = test_set_cycles(&set, 2);
    assert_eq!(base_cycles, 50);
    assert_eq!(cycles, 48);
    assert!((percent_of(cycles, base_cycles) - 96.0).abs() < 1e-9);
}

/// Table 3's structure and Table 6's claim, via the full flow.
#[test]
fn table3_and_table6_structure() {
    let lion = benchmarks::lion();
    let report = run_flow(&lion, &FlowConfig::default());
    let gate = report.gate.expect("gate level enabled");
    // Table 6's claim: complete coverage of detectable faults, both models.
    assert!(gate.stuck.complete_detectable_coverage());
    assert!(gate.bridging.complete_detectable_coverage());
    assert_eq!(gate.stuck.unclassified, 0);
    assert_eq!(gate.bridging.unclassified, 0);
    // Table 3's structure: a strict subset of tests is effective, and the
    // effective set costs fewer cycles than the full functional set.
    assert!(gate.stuck.effective_tests < report.tests.tests.len());
    assert!(gate.stuck.effective_cycles < report.functional_cycles);
}

/// The shiftreg benchmark is reconstructed structurally, and its Table 5
/// row also lands exactly on the paper: 13 tests, total length 27, 75.00%.
#[test]
fn shiftreg_table5_row_exact() {
    let t = benchmarks::build("shiftreg").expect("registry circuit");
    let uios = uio::derive_uios(&t, t.num_state_vars());
    let set = generate(&t, &uios, &GenConfig::default());
    assert_eq!(set.tests.len(), 13);
    assert_eq!(set.total_length(), 27);
    assert!((set.percent_unit_tested() - 75.0).abs() < 1e-9);
    // And Table 7: 69 cycles = 102.99% of the 67-cycle baseline.
    let cycles = test_set_cycles(&set, 3);
    assert_eq!(cycles, 69);
    let base = test_set_cycles(&per_transition_baseline(&t), 3);
    assert_eq!(base, 67);
}
