//! Golden test for the `--metrics` JSON-lines export.
//!
//! Runs the `scanft` binary in a fresh subprocess (the `scanft-obs`
//! registry is process-wide, so only a fresh process has deterministic
//! counter values) and pins both the schema of every line and the exact
//! counter/gauge values for the `lion` walkthrough.

#![allow(clippy::unwrap_used)]
use std::collections::BTreeMap;
use std::process::Command;

fn run_with_metrics(args: &[&str]) -> Vec<String> {
    let dir = std::env::temp_dir().join(format!(
        "scanft-metrics-{}-{}",
        std::process::id(),
        args.join("-").replace(['/', '\\'], "_")
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("metrics.jsonl");
    let metrics_arg = format!("--metrics={}", path.display());
    let output = Command::new(env!("CARGO_BIN_EXE_scanft"))
        .args(args)
        .arg(&metrics_arg)
        .output()
        .expect("run scanft");
    assert!(
        output.status.success(),
        "scanft {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    std::fs::remove_dir_all(&dir).ok();
    assert!(text.ends_with('\n'), "export ends with a newline");
    text.lines().map(str::to_owned).collect()
}

/// Minimal field extraction for the flat one-object-per-line schema; avoids
/// a JSON dependency while still failing loudly on malformed lines.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let marker = format!("\"{key}\":");
    let start = line
        .find(&marker)
        .unwrap_or_else(|| panic!("`{key}` missing in {line}"))
        + marker.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .scan(0i32, |depth, (i, c)| {
            match c {
                '[' => *depth += 1,
                ']' if *depth > 0 => *depth -= 1,
                ',' | '}' if *depth == 0 => return Some(Some(i)),
                _ => {}
            }
            Some(None)
        })
        .flatten()
        .next()
        .unwrap_or_else(|| panic!("unterminated `{key}` in {line}"));
    &rest[..end]
}

fn string_field(line: &str, key: &str) -> String {
    let raw = field(line, key);
    assert!(
        raw.starts_with('"') && raw.ends_with('"'),
        "{key} not a string in {line}"
    );
    raw[1..raw.len() - 1].to_owned()
}

/// The pinned schema: every line is one flat JSON object whose shape is
/// fixed by `kind`, and lines are sorted by metric name.
#[test]
fn metrics_schema_is_pinned() {
    let lines = run_with_metrics(&["evaluate", "lion"]);
    assert!(!lines.is_empty());
    let mut names = Vec::new();
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        let kind = string_field(line, "kind");
        let name = string_field(line, "name");
        match kind.as_str() {
            "counter" | "gauge" => {
                field(line, "value")
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad value in {line}"));
            }
            "timer" => {
                field(line, "count")
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad count in {line}"));
                for key in ["total_secs", "min_secs", "max_secs"] {
                    let v: f64 = field(line, key)
                        .parse()
                        .unwrap_or_else(|_| panic!("bad {key} in {line}"));
                    assert!(v.is_finite() && v >= 0.0, "{key} in {line}");
                }
                let buckets = field(line, "buckets");
                assert!(buckets.starts_with('[') && buckets.ends_with(']'), "{line}");
                let counts: Vec<u64> = buckets[1..buckets.len() - 1]
                    .split(',')
                    .map(|b| b.parse().unwrap_or_else(|_| panic!("bad bucket in {line}")))
                    .collect();
                assert_eq!(counts.len(), 9, "nine decade buckets: {line}");
                let count: u64 = field(line, "count").parse().unwrap();
                assert_eq!(counts.iter().sum::<u64>(), count, "{line}");
            }
            other => panic!("unknown kind `{other}` in {line}"),
        }
        names.push(name);
    }
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "lines sorted by metric name");
}

/// Exact counter and gauge values for `evaluate lion` — the paper's
/// walkthrough circuit, so every number here is a consequence of pinned
/// behavior (Tables 2, 4, 5 and the lion synthesis shape).
#[test]
fn evaluate_lion_counters_golden() {
    let lines = run_with_metrics(&["evaluate", "lion"]);
    let mut values: BTreeMap<String, u64> = BTreeMap::new();
    let mut timers: Vec<String> = Vec::new();
    for line in &lines {
        let kind = string_field(line, "kind");
        let name = string_field(line, "name");
        if kind == "timer" {
            timers.push(name);
        } else {
            values.insert(name, field(line, "value").parse().unwrap());
        }
    }

    let expected: &[(&str, u64)] = &[
        // Table 2 / Table 4: lion has 4 states, 2 of them with UIOs (one of
        // length 1, one of length 2).
        ("fsm.uio.machines", 1),
        ("fsm.uio.states_searched", 4),
        ("fsm.uio.found", 2),
        ("fsm.uio.found.len1", 1),
        ("fsm.uio.found.len2", 1),
        ("fsm.uio.none", 2),
        ("fsm.uio.nodes_expanded", 5),
        // Table 5 walkthrough: 9 tests, 4 of them postponed length-1 tests,
        // 2 transfer hops inside chained tests.
        ("core.generate.tests_emitted", 9),
        ("core.generate.postponed_unit_tests", 4),
        ("core.generate.transfer_hops", 2),
        // lion synthesis shape: 15 gates from 19 cover literals.
        ("synth.circuits", 1),
        ("synth.gates", 15),
        ("synth.literals", 19),
        ("netlist.built", 1),
        ("netlist.gates_built", 15),
        // 80 stuck-at + 42 bridging faults in 3 batches of 64 lanes.
        ("sim.campaign.faults", 122),
        ("sim.campaign.batches", 3),
        ("sim.campaign.tests_simulated", 18),
        ("sim.campaign.tests_skipped", 9),
    ];
    for &(name, value) in expected {
        assert_eq!(values.get(name), Some(&value), "{name}");
    }

    for timer in [
        "fsm.uio.derive",
        "core.generate",
        "core.generate.baseline",
        "core.flow",
        "synth.synthesize",
        "sim.campaign.run",
    ] {
        assert!(
            timers.iter().any(|t| t == timer),
            "timer `{timer}` exported"
        );
    }
}

/// Exact counters for the implication-guided ATPG path: `atpg lion
/// --no-functional` drives PODEM over all 45 collapsed faults, so the
/// static-learning and guidance counters must export deterministic values.
#[test]
fn atpg_lion_implication_counters_golden() {
    let lines = run_with_metrics(&["atpg", "lion", "--no-functional"]);
    let mut values: BTreeMap<String, u64> = BTreeMap::new();
    for line in &lines {
        if string_field(line, "kind") != "timer" {
            values.insert(
                string_field(line, "name"),
                field(line, "value").parse().unwrap(),
            );
        }
    }
    let expected: &[(&str, u64)] = &[
        // Static learning on the lion netlist: 13 indirect (contrapositive)
        // implications over 38 literals (19 nets).
        ("analyze.implications_learned", 13),
        ("analyze.implications.literals", 38),
        // Guided PODEM over the 45 collapsed faults: the closure fixes 17
        // necessary input assignments, leaving 14 decisions, 10 distinct
        // patterns, and not a single backtrack or unresolved fault.
        ("atpg.implications_applied", 17),
        ("atpg.decisions", 14),
        ("atpg.backtracks", 0),
        ("atpg.tests", 10),
        ("atpg.redundant", 0),
        ("atpg.aborted", 0),
        ("core.top_up.faults", 45),
    ];
    for &(name, value) in expected {
        assert_eq!(values.get(name), Some(&value), "{name}");
    }
}

/// Exact counters for the certificate-emitting optimizer: `optimize lion`
/// proves one equivalence merge (two cited lemmas), sweeps one dead gate,
/// and self-checks the proof log — so the certificate's exact shape is
/// pinned here, byte count included.
#[test]
fn optimize_lion_counters_golden() {
    let lines = run_with_metrics(&["optimize", "lion"]);
    let mut values: BTreeMap<String, u64> = BTreeMap::new();
    let mut timers: Vec<String> = Vec::new();
    for line in &lines {
        let kind = string_field(line, "kind");
        let name = string_field(line, "name");
        if kind == "timer" {
            timers.push(name);
        } else {
            values.insert(name, field(line, "value").parse().unwrap());
        }
    }
    let expected: &[(&str, u64)] = &[
        // lion: one pair of equivalent AND gates merges through the
        // closure, leaving the duplicate's generator dead; nothing is
        // constant, so nothing folds.
        ("opt.constants_folded", 0),
        ("opt.merges", 1),
        ("opt.gates_removed", 1),
        // begin + two equivalence lemmas + equiv + dead = 5 steps. The
        // byte count pins the lazy lemma emission: only the two cited
        // lemmas reach the log, not the full learned closure.
        ("opt.certificate_steps", 5),
        ("opt.certificate_bytes", 601),
    ];
    for &(name, value) in expected {
        assert_eq!(values.get(name), Some(&value), "{name}");
    }
    assert!(
        timers.iter().any(|t| t == "opt.optimize_secs"),
        "timer `opt.optimize_secs` exported"
    );
}

/// `--metrics` without a file streams the export to stdout after the
/// command output; `SCANFT_METRICS` is the flag-less equivalent.
#[test]
fn metrics_to_stdout_and_env_var() {
    let output = Command::new(env!("CARGO_BIN_EXE_scanft"))
        .args(["uio", "lion", "--metrics"])
        .output()
        .expect("run scanft");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("UIO sequences for lion"));
    assert!(stdout.contains(r#"{"kind":"counter","name":"fsm.uio.found","value":2}"#));

    let output = Command::new(env!("CARGO_BIN_EXE_scanft"))
        .args(["uio", "lion"])
        .env("SCANFT_METRICS", "-")
        .output()
        .expect("run scanft");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains(r#"{"kind":"counter","name":"fsm.uio.states_searched","value":4}"#));
}
