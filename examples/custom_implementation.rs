//! Bring-your-own machine: parse a KISS2 state table, generate functional
//! tests, compact them with the static test-combining extension (the
//! paper's reference [7]), and compare scan-operation counts.
//!
//! Run with: `cargo run --release -p scanft-cli --example custom_implementation`

use scanft_core::compact::combine_tests;
use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::{kiss, uio};
use scanft_sim::{campaign, faults};
use scanft_synth::{synthesize, SynthConfig};

/// A small traffic-light controller in KISS2 format (what you would read
/// from a file with `std::fs::read_to_string`).
const TRAFFIC: &str = "\
.i 2
.o 3
.s 4
.r GREEN
# inputs: car_waiting, timer_expired / outputs: g y r
00 GREEN  GREEN  100
01 GREEN  GREEN  100
10 GREEN  YELLOW 100
11 GREEN  YELLOW 100
-0 YELLOW YELLOW 010
-1 YELLOW RED    010
-0 RED    RED    001
-1 RED    GREEN2 001
-- GREEN2 GREEN  100
.e
";

fn main() {
    let table = kiss::parse_with(TRAFFIC, "traffic", kiss::Completion::SelfLoop)
        .expect("embedded KISS2 is well-formed");
    println!("{table}");

    let uios = uio::derive_uios(&table, table.num_state_vars());
    let set = generate(&table, &uios, &GenConfig::default());
    println!(
        "generated {} tests (total length {}) for {} transitions",
        set.tests.len(),
        set.total_length(),
        set.num_transitions
    );

    // Gate-level oracle for coverage-preserving compaction.
    let circuit = synthesize(&table, &SynthConfig::default());
    let stuck = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
    let baseline_coverage =
        campaign::run(circuit.netlist(), &set.to_scan_tests(&circuit), &stuck).detected();
    println!(
        "stuck-at coverage before compaction: {}/{}",
        baseline_coverage,
        stuck.len()
    );

    // Static compaction by test combining, accepting only combinations that
    // keep the gate-level coverage (the criterion of reference [7]).
    let result = combine_tests(&set, |candidate| {
        let tests: Vec<_> = candidate.iter().map(|t| t.to_scan_test(&circuit)).collect();
        campaign::run(circuit.netlist(), &tests, &stuck).detected() >= baseline_coverage
    });
    println!(
        "compaction: {} combinations accepted, {} rejected by the coverage oracle",
        result.combinations, result.rejected
    );
    println!(
        "tests: {} -> {} (each combination saves one {}-cycle scan operation)",
        set.tests.len(),
        result.tests.len(),
        table.num_state_vars()
    );

    let after: Vec<_> = result
        .tests
        .iter()
        .map(|t| t.to_scan_test(&circuit))
        .collect();
    let coverage = campaign::run(circuit.netlist(), &after, &stuck).detected();
    assert_eq!(coverage, baseline_coverage, "compaction preserved coverage");
    println!(
        "coverage after compaction: {}/{} (preserved)",
        coverage,
        stuck.len()
    );

    // The same workflow on a benchmark with more chaining opportunities.
    println!("\nthe same compaction on benchmark lion9:");
    let bench = scanft_fsm::benchmarks::build("lion9").expect("registry circuit");
    let uios = uio::derive_uios(&bench, bench.num_state_vars());
    let bench_set = generate(&bench, &uios, &GenConfig::default());
    let bench_circuit = synthesize(&bench, &SynthConfig::default());
    let bench_faults = faults::as_fault_list(&faults::enumerate_stuck(bench_circuit.netlist()));
    let bench_cov = campaign::run(
        bench_circuit.netlist(),
        &bench_set.to_scan_tests(&bench_circuit),
        &bench_faults,
    )
    .detected();
    let bench_result = combine_tests(&bench_set, |candidate| {
        let tests: Vec<_> = candidate
            .iter()
            .map(|t| t.to_scan_test(&bench_circuit))
            .collect();
        campaign::run(bench_circuit.netlist(), &tests, &bench_faults).detected() >= bench_cov
    });
    println!(
        "  {} -> {} tests, {} scan operations ({} cycles each) saved, coverage preserved",
        bench_set.tests.len(),
        bench_result.tests.len(),
        bench_result.combinations,
        bench.num_state_vars()
    );
}
