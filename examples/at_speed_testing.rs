//! At-speed testing: why chained functional tests catch delay defects that
//! one-transition-per-test application cannot.
//!
//! A transition-delay fault needs a *launch* (a value change between two
//! consecutive at-speed cycles) and a *capture*. A length-1 scan test has a
//! single functional cycle, so it never launches anything; the paper's
//! chained tests apply many consecutive cycles and launch transitions all
//! along. This example demonstrates the effect on `lion` fault by fault.
//!
//! Run with: `cargo run --release -p scanft-cli --example at_speed_testing`

use scanft_core::generate::{generate, per_transition_baseline, GenConfig};
use scanft_fsm::{benchmarks, uio};
use scanft_sim::{campaign, faults};
use scanft_synth::{synthesize, SynthConfig};

fn main() {
    let lion = benchmarks::lion();
    let uios = uio::derive_uios(&lion, lion.num_state_vars());
    let chained = generate(&lion, &uios, &GenConfig::default());
    let baseline = per_transition_baseline(&lion);
    let circuit = synthesize(&lion, &SynthConfig::default());

    let delays = faults::enumerate_delay(circuit.netlist());
    let list = faults::delays_as_fault_list(&delays);
    println!(
        "lion: {} gates, {} transition-delay faults (slow-to-rise/fall per net)",
        circuit.netlist().num_gates(),
        list.len()
    );

    let chained_report = campaign::run(circuit.netlist(), &chained.to_scan_tests(&circuit), &list);
    let baseline_report =
        campaign::run(circuit.netlist(), &baseline.to_scan_tests(&circuit), &list);

    println!("\nper-fault outcome (chained tests tau_0..tau_8 vs per-transition baseline):");
    for (k, fault) in list.iter().enumerate() {
        let by = match chained_report.detecting_test[k] {
            Some(t) => format!("detected by tau_{t}"),
            None => "undetected".to_owned(),
        };
        println!("  {:<22} {by}", fault.describe(circuit.netlist()));
    }

    println!(
        "\nchained tests:  {}/{} delay faults detected ({:.2}%)",
        chained_report.detected(),
        list.len(),
        chained_report.coverage_percent()
    );
    println!(
        "baseline tests: {}/{} delay faults detected ({:.2}%)",
        baseline_report.detected(),
        list.len(),
        baseline_report.coverage_percent()
    );
    assert_eq!(
        baseline_report.detected(),
        0,
        "length-1 tests cannot launch transitions"
    );
    assert!(chained_report.detected() > 0);

    // The same stuck-at coverage comparison shows both sets equal there —
    // the delay faults are where at-speed application pays.
    let stuck = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
    let chained_sa = campaign::run(circuit.netlist(), &chained.to_scan_tests(&circuit), &stuck);
    let baseline_sa = campaign::run(circuit.netlist(), &baseline.to_scan_tests(&circuit), &stuck);
    println!(
        "\nfor contrast, stuck-at coverage: chained {:.2}% vs baseline {:.2}%",
        chained_sa.coverage_percent(),
        baseline_sa.coverage_percent()
    );
}
