//! Table-9-style design-space exploration on one circuit: how the UIO
//! length limit and the transfer-sequence allowance trade test count,
//! at-speed sequence length, and test application time.
//!
//! Run with: `cargo run --release -p scanft-cli --example parameter_sweep [circuit]`

use scanft_core::cycles::{percent_of, test_set_cycles};
use scanft_core::generate::{generate, per_transition_baseline, GenConfig};
use scanft_fsm::benchmarks;
use scanft_fsm::uio::{derive_uios_with, UioConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "dk512".into());
    let table = benchmarks::build(&name).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let sv = table.num_state_vars();
    let base_cycles = test_set_cycles(&per_transition_baseline(&table), sv);
    println!(
        "{name}: {} states, {} input combinations, {} transitions, baseline {} cycles",
        table.num_states(),
        table.num_input_combos(),
        table.num_transitions(),
        base_cycles
    );

    println!("\nUIO length limit sweep (transfer <= 1):");
    println!("  L | unique | tests |  len |  1len% | cycles |      %");
    let mut prev_unique = usize::MAX;
    for limit in 1..=sv + 4 {
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(limit));
        let set = generate(&table, &uios, &GenConfig::default());
        let cycles = test_set_cycles(&set, sv);
        println!(
            "  {limit} | {:>6} | {:>5} | {:>4} | {:>6.2} | {:>6} | {:>6.2}",
            uios.num_with_uio(),
            set.tests.len(),
            set.total_length(),
            set.percent_unit_tested(),
            cycles,
            percent_of(cycles, base_cycles)
        );
        if uios.num_with_uio() == prev_unique {
            break; // saturated, like the paper's stopping rule
        }
        prev_unique = uios.num_with_uio();
    }

    println!("\ntransfer length sweep (UIO <= sv):");
    println!("  T | tests |  len | cycles |      %");
    let uios = derive_uios_with(&table, &UioConfig::with_max_len(sv));
    for transfer in 0..=3usize {
        let set = generate(
            &table,
            &uios,
            &GenConfig {
                transfer_max_len: transfer,
                ..GenConfig::default()
            },
        );
        let cycles = test_set_cycles(&set, sv);
        println!(
            "  {transfer} | {:>5} | {:>4} | {:>6} | {:>6.2}",
            set.tests.len(),
            set.total_length(),
            cycles,
            percent_of(cycles, base_cycles)
        );
    }
    println!("\nlonger UIOs and transfers chain more transitions per test (fewer scans,");
    println!("more at-speed cycles); past L ~ sv the sequences cost more than scan.");
}
