//! Quickstart: reproduce the paper's running example end to end.
//!
//! Builds the `lion` benchmark (Table 1), derives its UIO sequences
//! (Table 2), generates the nine functional tests of Section 2, synthesizes
//! a gate-level full-scan implementation, and fault-simulates the tests
//! (Table 3).
//!
//! Run with: `cargo run --release -p scanft-cli --example quickstart`

use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::{benchmarks, format_input_seq, uio};
use scanft_sim::{campaign, faults};
use scanft_synth::{synthesize, SynthConfig};

fn main() {
    // 1. The machine: lion, embedded exactly from Table 1 of the paper.
    let lion = benchmarks::lion();
    println!("{lion}");

    // 2. Unique input-output sequences (Table 2).
    let uios = uio::derive_uios(&lion, lion.num_state_vars());
    println!("UIO sequences:");
    for s in 0..lion.num_states() as u32 {
        match uios.sequence(s) {
            Some(u) => println!(
                "  state {s}: ({}) -> final state {}",
                format_input_seq(&u.inputs, lion.num_inputs()),
                u.final_state
            ),
            None => println!("  state {s}: none"),
        }
    }

    // 3. Functional tests for all 16 single state-transition faults.
    let set = generate(&lion, &uios, &GenConfig::default());
    println!("\nfunctional tests (the paper's tau_0 .. tau_8):");
    for (k, t) in set.tests.iter().enumerate() {
        println!("  tau_{k} = {}", t.display(&lion));
    }
    println!(
        "  -> {} tests, total length {}, {:.2}% of transitions unit-tested",
        set.tests.len(),
        set.total_length(),
        set.percent_unit_tested()
    );

    // 4. Gate-level implementation and stuck-at fault simulation (Table 3).
    let circuit = synthesize(&lion, &SynthConfig::default());
    println!("\nsynthesized netlist: {}", circuit.netlist().stats());
    let scan_tests = set.to_scan_tests(&circuit);
    let stuck = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
    let report = campaign::run_decreasing_length(circuit.netlist(), &scan_tests, &stuck);
    println!("stuck-at simulation in decreasing length order:");
    for row in campaign::effectiveness_table(&scan_tests, &report) {
        println!(
            "  tau_{} (length {}): {} faults detected so far{}",
            row.test,
            row.length,
            row.cumulative_detected,
            if row.effective { "  [effective]" } else { "" }
        );
    }
    println!(
        "\ncoverage: {}/{} stuck-at faults, {} effective tests",
        report.detected(),
        stuck.len(),
        report.effective_tests().len()
    );
    assert_eq!(report.detected(), stuck.len(), "lion reaches full coverage");
}
