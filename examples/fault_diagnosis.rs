//! Fault diagnosis: using the functional test set beyond go/no-go.
//!
//! A high-coverage test set also *locates* defects: simulate every fault
//! against every test (no dropping) to build a fault dictionary, then match
//! the pass/fail pattern observed on a failing device against the
//! signatures. This example builds the dictionary for `dk27`'s functional
//! tests, "manufactures" devices with known injected defects, and shows the
//! diagnosis narrowing each failure down to its ambiguity group.
//!
//! Run with: `cargo run --release -p scanft-cli --example fault_diagnosis`

use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::{benchmarks, uio};
use scanft_sim::dictionary::FaultDictionary;
use scanft_sim::engine::{FaultEngine, InjectionPlan};
use scanft_sim::{faults, logic};
use scanft_synth::{synthesize, SynthConfig};

fn main() {
    let table = benchmarks::build("dk27").expect("registry circuit");
    let uios = uio::derive_uios(&table, table.num_state_vars());
    let set = generate(&table, &uios, &GenConfig::default());
    let circuit = synthesize(&table, &SynthConfig::default());
    let tests = set.to_scan_tests(&circuit);
    let stuck = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));

    println!(
        "dk27: {} tests, {} stuck-at faults",
        tests.len(),
        stuck.len()
    );
    let dict = FaultDictionary::build(circuit.netlist(), &tests, &stuck);
    println!(
        "dictionary: {:.1}% diagnostic resolution, {} ambiguity groups",
        100.0 * dict.resolution(),
        dict.ambiguity_groups().len()
    );

    // "Manufacture" three defective devices and diagnose them from their
    // pass/fail behaviour alone.
    for &defect in &[3usize, 17, 40] {
        let fault = stuck[defect.min(stuck.len() - 1)];
        // Observe which tests fail on the defective device.
        let plan = InjectionPlan::new(circuit.netlist(), std::slice::from_ref(&fault));
        let mut engine = FaultEngine::new(circuit.netlist());
        let observed: Vec<u32> = tests
            .iter()
            .enumerate()
            .filter_map(|(t, test)| {
                let ff = logic::simulate(circuit.netlist(), test);
                (engine.run_test(test, &ff, &plan, 0) != 0).then_some(t as u32)
            })
            .collect();
        let candidates = dict.diagnose(&observed);
        println!(
            "\ndevice with defect `{}`: {} failing tests {:?}",
            fault.describe(circuit.netlist()),
            observed.len(),
            observed
        );
        if observed.is_empty() {
            println!("  device passes: the defect is undetectable by this test set");
            continue;
        }
        println!(
            "  diagnosis: {} candidate fault(s): {}",
            candidates.len(),
            candidates
                .iter()
                .map(|&f| stuck[f].describe(circuit.netlist()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        assert!(
            candidates.iter().any(|&f| stuck[f] == fault),
            "the injected defect must be among the candidates"
        );
    }
}
