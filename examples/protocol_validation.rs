//! Design-validation scenario from the paper's introduction: functional
//! tests are generated from the *specification* (a state table), before any
//! implementation exists, and remain valid for every implementation.
//!
//! The example models a small link-layer protocol controller as a Mealy
//! machine, generates its functional test set once, then checks the same
//! tests against two structurally different implementations (binary vs Gray
//! state encoding, minimized vs flat logic) — all are covered by the same
//! specification-level tests.
//!
//! Run with: `cargo run --release -p scanft-cli --example protocol_validation`

#![allow(clippy::unwrap_used)]
use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::{uio, StateTableBuilder};
use scanft_sim::{campaign, faults};
use scanft_synth::{synthesize, Encoding, SynthConfig};

/// A toy stop-and-wait link controller.
///
/// States: 0 = IDLE, 1 = SENT (awaiting ack), 2 = RETRY, 3 = DONE.
/// Inputs (2 bits): bit0 = `send` request, bit1 = `ack` received.
/// Output (2 bits): bit0 = `tx` strobe, bit1 = `busy`.
fn link_controller() -> scanft_fsm::StateTable {
    let mut b = StateTableBuilder::new("link", 2, 2, 4).expect("valid dimensions");
    b.name_state(0, "IDLE").unwrap();
    b.name_state(1, "SENT").unwrap();
    b.name_state(2, "RETRY").unwrap();
    b.name_state(3, "DONE").unwrap();
    for input in 0..4u32 {
        let send = input & 1 == 1;
        let ack = input & 2 == 2;
        // IDLE: a send request transmits and waits; otherwise stay idle.
        b.set(
            0,
            input,
            if send { 1 } else { 0 },
            if send { 0b01 } else { 0b00 },
        )
        .unwrap();
        // SENT: ack completes; no ack -> retry. Busy all along.
        b.set(1, input, if ack { 3 } else { 2 }, 0b10).unwrap();
        // RETRY: retransmit once, then wait again.
        b.set(2, input, 1, 0b11).unwrap();
        // DONE: report and return to IDLE on the next request, else rest.
        b.set(
            3,
            input,
            if send { 1 } else { 0 },
            if send { 0b01 } else { 0b00 },
        )
        .unwrap();
    }
    b.build().expect("completely specified")
}

fn main() {
    let spec = link_controller();
    println!("{spec}");

    // Specification-level test generation (implementation-independent).
    let uios = uio::derive_uios(&spec, spec.num_state_vars());
    let set = generate(&spec, &uios, &GenConfig::default());
    println!("specification tests:");
    for (k, t) in set.tests.iter().enumerate() {
        println!("  tau_{k} = {}", t.display(&spec));
    }

    // Check the SAME tests against different implementations.
    let variants = [
        ("binary/minimized", Encoding::Binary, true),
        ("gray/minimized", Encoding::Gray, true),
        ("binary/flat", Encoding::Binary, false),
    ];
    println!("\nimplementation-independence check:");
    for (label, encoding, minimize) in variants {
        let circuit = synthesize(
            &spec,
            &SynthConfig {
                encoding,
                minimize,
                ..SynthConfig::default()
            },
        );
        let stuck = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
        let report = campaign::run(circuit.netlist(), &set.to_scan_tests(&circuit), &stuck);
        // Classify the misses: the claim is complete coverage of the
        // *detectable* faults of every implementation.
        let mut undetectable = 0;
        for f in report.undetected_faults() {
            if scanft_sim::exhaustive::is_detectable(circuit.netlist(), &stuck[f], 1 << 20)
                == scanft_sim::exhaustive::Detectability::Undetectable
            {
                undetectable += 1;
            }
        }
        let complete = report.detected() + undetectable == stuck.len();
        println!(
            "  {label:<17} {} gates, stuck-at {}/{} detected, {} redundant -> complete detectable coverage: {}",
            circuit.netlist().num_gates(),
            report.detected(),
            stuck.len(),
            undetectable,
            complete
        );
        assert!(
            complete,
            "{label}: specification tests missed a detectable fault"
        );
    }
    println!("\nthe same specification-level test set covers every implementation.");
}
