//! `scanft` — command-line driver for the functional test generation flow.
//!
//! ```text
//! scanft list
//! scanft show <circuit> [--kiss]
//! scanft uio <circuit> [--max-len N]
//! scanft generate <circuit> [--no-transfer] [--uio-cap N]
//! scanft simulate <circuit> --tests FILE [--optimize] [--threads N] [--deadline SECS] [--journal FILE] [--resume] [--chaos-seed N] [--kernel narrow|wide]
//! scanft evaluate <circuit> [--functional-only] [--top-up] [--gray]
//! scanft optimize <circuit> [--cert FILE]
//! scanft atpg <circuit> [--budget N] [--deadline SECS] [--optimize] [--no-functional] [--uncollapsed] [--no-implications] [--gray] [--level]
//! scanft synth <circuit> [--gray] [--flat] [--dot|--blif]
//! scanft lint <circuit>... | --all [--json] [--full] [--deny|--warn|--allow CODE]
//! ```
//!
//! Circuits are the 31 benchmarks of the paper's Table 4, or a path to a
//! KISS2 file.
//!
//! Every command additionally accepts `--metrics[=FILE]` (or the
//! `SCANFT_METRICS` environment variable set to a path, `-` for stdout):
//! after the command finishes, the process-wide `scanft-obs` registry is
//! exported as JSON lines — one counter, gauge or timer per line.
//!
//! Failures exit with a per-class code from
//! [`scanft_harness::ScanftError::exit_code`]: 2 usage, 3 FSM/KISS2,
//! 4 I/O, 5 netlist, 6 synthesis, 7 test-file format, 8 journal,
//! 9 recovery (a `serve --state-dir` WAL that cannot be replayed). Exit 1
//! is reserved for "ran and reported a negative result" (`lint` deny
//! findings); 0 is success.

use std::process::ExitCode;

use scanft_core::flow::{run_flow, FlowConfig};
use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use scanft_fsm::{benchmarks, format_input_seq, kiss, StateTable};
use scanft_harness::{Budget, FailurePlan, JournalWriter, ScanftError};
use scanft_synth::{synthesize, Encoding, SynthConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = run(&args);
    if let Some(dest) = metrics_destination(&args) {
        if let Err(err) = export_metrics(&dest) {
            eprintln!("error[{}]: {err}", err.class());
            return ExitCode::from(err.exit_code());
        }
    }
    match outcome {
        Ok(code) => code,
        Err(err) => {
            eprintln!("error[{}]: {err}", err.class());
            if matches!(err, ScanftError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(err.exit_code())
        }
    }
}

/// Where to export the metrics registry, if anywhere: `--metrics` alone (or
/// a destination of `-`) means stdout, `--metrics=FILE` a file, and the
/// `SCANFT_METRICS` environment variable supplies a destination when the
/// flag is absent.
fn metrics_destination(args: &[String]) -> Option<String> {
    for arg in args {
        if arg == "--metrics" {
            return Some("-".to_owned());
        }
        if let Some(path) = arg.strip_prefix("--metrics=") {
            return Some(path.to_owned());
        }
    }
    std::env::var("SCANFT_METRICS")
        .ok()
        .filter(|v| !v.is_empty())
}

fn export_metrics(dest: &str) -> Result<(), ScanftError> {
    let jsonl = scanft_obs::global().to_jsonl();
    if dest == "-" {
        print!("{jsonl}");
        Ok(())
    } else {
        std::fs::write(dest, jsonl).map_err(|e| ScanftError::Io {
            path: dest.to_owned(),
            source: e,
        })
    }
}

const USAGE: &str = "usage:
  scanft list
  scanft show <circuit> [--kiss]
  scanft uio <circuit> [--max-len N]
  scanft generate <circuit> [--no-transfer] [--uio-cap N] [--out FILE]
  scanft simulate <circuit> --tests FILE [--optimize] [--threads N]
                  [--deadline SECS] [--journal FILE] [--resume]
                  [--chaos-seed N] [--kernel narrow|wide]
  scanft evaluate <circuit> [--functional-only] [--top-up] [--gray]
  scanft optimize <circuit> [--cert FILE]
  scanft atpg <circuit> [--budget N] [--deadline SECS] [--optimize] [--no-functional] [--uncollapsed] [--no-implications] [--gray] [--level]
  scanft synth <circuit> [--gray] [--flat] [--dot|--blif]
  scanft lint <circuit>... | --all [--json] [--full] [--deny|--warn|--allow CODE]
  scanft dot <circuit>
  scanft serve [--addr HOST:PORT] [--workers N] [--threads N] [--optimize]
               [--kernel narrow|wide] [--journal-dir DIR] [--cache N]
               [--max-active N] [--max-units N] [--body-limit BYTES]
               [--timeout SECS] [--deadline SECS] [--chaos-seed N]
               [--state-dir DIR] [--queue-depth N] [--retry-after SECS]
  scanft submit <circuit> --server HOST:PORT [--tests FILE] [--tenant T]
                [--atpg] [--idempotency-key KEY] [--retries N]
                [--wait [--timeout SECS]]
  scanft status <job-id> --server HOST:PORT [--retries N]
  scanft cancel <job-id> --server HOST:PORT [--retries N]
  scanft events <job-id> --server HOST:PORT
  scanft drain --server HOST:PORT [--retries N]

<circuit> is a benchmark name from `scanft list` or a path to a KISS2 file
(`lint` also accepts BLIF netlist paths). `lint` exits 1 when any deny-level
diagnostic fires. `serve --state-dir` makes the job queue crash-safe: every
admission is WAL-logged before its 202, and a restarted server replays the
WAL, re-queues unfinished jobs, and resumes interrupted campaigns from
their journals. `drain` stops admission (503 + Retry-After) and lets the
server finish in-flight jobs and exit. Any command also accepts
--metrics[=FILE] (or SCANFT_METRICS=FILE, `-` for stdout) to export the
instrumentation registry as JSON lines on exit. Errors exit with a
per-class code: 2 usage, 3 fsm, 4 io, 5 netlist, 6 synth, 7 test-format,
8 journal, 9 recovery.";

fn run(args: &[String]) -> Result<ExitCode, ScanftError> {
    let Some(command) = args.first() else {
        return Err(ScanftError::usage("missing command"));
    };
    let rest = &args[1..];
    match command.as_str() {
        "lint" => return cmd_lint(rest),
        "submit" => return cmd_submit(rest),
        "status" => return cmd_status(rest),
        "cancel" => return cmd_cancel(rest),
        "events" => return cmd_events(rest),
        "drain" => return cmd_drain(rest),
        "serve" => cmd_serve(rest),
        "list" => cmd_list(),
        "show" => cmd_show(rest),
        "uio" => cmd_uio(rest),
        "generate" => cmd_generate(rest),
        "simulate" => cmd_simulate(rest),
        "evaluate" => cmd_evaluate(rest),
        "optimize" => cmd_optimize(rest),
        "atpg" => cmd_atpg(rest),
        "synth" => cmd_synth(rest),
        "dot" => cmd_dot(rest),
        other => Err(ScanftError::usage(format!("unknown command `{other}`"))),
    }
    .map(|()| ExitCode::SUCCESS)
}

fn read_file(path: &str) -> Result<String, ScanftError> {
    std::fs::read_to_string(path).map_err(|e| ScanftError::Io {
        path: path.to_owned(),
        source: e,
    })
}

fn write_file(path: &str, contents: String) -> Result<(), ScanftError> {
    std::fs::write(path, contents).map_err(|e| ScanftError::Io {
        path: path.to_owned(),
        source: e,
    })
}

fn load_circuit(rest: &[String]) -> Result<StateTable, ScanftError> {
    let name = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| ScanftError::usage("missing circuit name"))?;
    if std::path::Path::new(name).exists() {
        let text = read_file(name)?;
        return kiss::parse_with(&text, name, kiss::Completion::SelfLoop)
            .map_err(ScanftError::from);
    }
    benchmarks::build(name).map_err(ScanftError::from)
}

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn string_of(rest: &[String], name: &str) -> Result<Option<String>, ScanftError> {
    let Some(pos) = rest.iter().position(|a| a == name) else {
        return Ok(None);
    };
    rest.get(pos + 1)
        .cloned()
        .map(Some)
        .ok_or_else(|| ScanftError::usage(format!("{name} needs a value")))
}

fn value_of(rest: &[String], name: &str) -> Result<Option<usize>, ScanftError> {
    let Some(pos) = rest.iter().position(|a| a == name) else {
        return Ok(None);
    };
    rest.get(pos + 1)
        .and_then(|v| v.parse().ok())
        .map(Some)
        .ok_or_else(|| ScanftError::usage(format!("{name} needs an integer value")))
}

fn cmd_list() -> Result<(), ScanftError> {
    println!(
        "{:<10} {:>3} {:>7} {:>3} {:>8} {:>7}",
        "circuit", "pi", "states", "sv", "outputs", "trans"
    );
    for spec in benchmarks::CIRCUITS {
        println!(
            "{:<10} {:>3} {:>7} {:>3} {:>8} {:>7}",
            spec.name,
            spec.num_inputs,
            spec.num_states,
            spec.num_state_vars,
            spec.num_outputs,
            spec.num_transitions()
        );
    }
    Ok(())
}

fn cmd_show(rest: &[String]) -> Result<(), ScanftError> {
    let table = load_circuit(rest)?;
    if flag(rest, "--kiss") {
        print!("{}", kiss::write(&table));
    } else {
        print!("{table}");
    }
    Ok(())
}

fn cmd_uio(rest: &[String]) -> Result<(), ScanftError> {
    let table = load_circuit(rest)?;
    let max_len = value_of(rest, "--max-len")?.unwrap_or(table.num_state_vars());
    let uios = derive_uios_with(&table, &UioConfig::with_max_len(max_len));
    println!("UIO sequences for {} (L = {max_len}):", table.name());
    for s in 0..table.num_states() as u32 {
        match uios.sequence(s) {
            Some(u) => println!(
                "  state {:<6} -> ({})  final state {}",
                table.state_name(s),
                format_input_seq(&u.inputs, table.num_inputs()),
                table.state_name(u.final_state)
            ),
            None => println!("  state {:<6} -> none", table.state_name(s)),
        }
    }
    println!(
        "{} of {} states have a UIO (max length {}), derived in {:.2}s",
        uios.num_with_uio(),
        table.num_states(),
        uios.max_found_len(),
        uios.elapsed_secs()
    );
    if uios.any_budget_exceeded() {
        println!("note: the search budget was exhausted for at least one state");
    }
    Ok(())
}

fn cmd_generate(rest: &[String]) -> Result<(), ScanftError> {
    let table = load_circuit(rest)?;
    let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
    let config = GenConfig {
        uio_len_cap: value_of(rest, "--uio-cap")?,
        transfer_max_len: if flag(rest, "--no-transfer") { 0 } else { 1 },
    };
    let set = generate(&table, &uios, &config);
    if let Some(path) = string_of(rest, "--out")? {
        write_file(&path, scanft_core::io::write_tests(&set, &table))?;
        println!(
            "wrote {} tests (total length {}) to {path}",
            set.tests.len(),
            set.total_length()
        );
        return Ok(());
    }
    println!("functional tests for {}:", table.name());
    for (k, t) in set.tests.iter().enumerate() {
        println!("  tau_{k:<4} = {}", t.display(&table));
    }
    println!(
        "{} tests, total length {}, {:.2}% of {} transitions tested by length-1 tests",
        set.tests.len(),
        set.total_length(),
        set.percent_unit_tested(),
        set.num_transitions
    );
    let cycles = scanft_core::cycles::test_set_cycles(&set, table.num_state_vars());
    let base = scanft_core::cycles::clock_cycles(
        table.num_state_vars(),
        table.num_transitions(),
        table.num_transitions(),
    );
    println!(
        "test application: {cycles} clock cycles ({:.2}% of the {base}-cycle per-transition baseline)",
        scanft_core::cycles::percent_of(cycles, base)
    );
    Ok(())
}

fn cmd_simulate(rest: &[String]) -> Result<(), ScanftError> {
    let table = load_circuit(rest)?;
    let path = string_of(rest, "--tests")?
        .ok_or_else(|| ScanftError::usage("--tests FILE is required"))?;
    let text = read_file(&path)?;
    let set = scanft_core::io::parse_tests(&text, &table).map_err(|e| ScanftError::TestFormat {
        message: e.to_string(),
    })?;
    println!(
        "loaded {} tests (total length {}) for {}",
        set.tests.len(),
        set.total_length(),
        table.name()
    );
    let circuit = synthesize(&table, &SynthConfig::default());
    let scan_tests = set.to_scan_tests(&circuit);
    let supervised = [
        "--threads",
        "--deadline",
        "--journal",
        "--chaos-seed",
        "--kernel",
    ]
    .iter()
    .any(|f| flag(rest, f))
        || flag(rest, "--resume");
    if supervised {
        return simulate_supervised(rest, &table, &circuit, &scan_tests);
    }
    let optimized = if flag(rest, "--optimize") {
        let opt = scanft_opt::optimize(circuit.netlist());
        scanft_opt::checker::check(circuit.netlist(), &opt.netlist, &opt.certificate).map_err(
            |e| ScanftError::Synth {
                message: format!("optimizer self-check failed — {e}"),
            },
        )?;
        println!(
            "optimized: {} -> {} gates (certificate: {} steps, validated)",
            opt.stats.original_gates, opt.stats.reduced_gates, opt.stats.certificate_steps
        );
        Some(opt)
    } else {
        None
    };
    let bridges = scanft_sim::faults::enumerate_bridging(circuit.netlist(), 3000);
    if bridges.truncated() {
        println!(
            "note: bridging universe subsampled to {} of {} structural pairs ({} dropped)",
            bridges.faults.len() / 2,
            bridges.total_pairs,
            bridges.dropped_pairs()
        );
    }
    for (label, faults) in [
        (
            "stuck-at",
            scanft_sim::faults::as_fault_list(&scanft_sim::faults::enumerate_stuck(
                circuit.netlist(),
            )),
        ),
        (
            "bridging",
            scanft_sim::faults::bridges_as_fault_list(&bridges.faults),
        ),
        (
            "delay",
            scanft_sim::faults::delays_as_fault_list(&scanft_sim::faults::enumerate_delay(
                circuit.netlist(),
            )),
        ),
    ] {
        // Optimized runs report identical verdicts in the original fault
        // universe (bridging and delay faults fall back automatically).
        let report = match &optimized {
            Some(opt) => scanft_opt::campaign::run_optimized(
                circuit.netlist(),
                opt,
                &scan_tests,
                &scanft_sim::campaign::decreasing_length_order(&scan_tests),
                &faults,
                true,
            ),
            None => {
                scanft_sim::campaign::run_decreasing_length(circuit.netlist(), &scan_tests, &faults)
            }
        };
        println!(
            "  {label}: {}/{} detected ({:.2}%), {} effective tests",
            report.detected(),
            faults.len(),
            report.coverage_percent(),
            report.effective_tests().len()
        );
    }
    Ok(())
}

/// The resilient stuck-at campaign behind `simulate --threads/--deadline/
/// --journal/--resume/--chaos-seed`: panic-isolated batches under a budget,
/// with an append-only checkpoint journal and deterministic chaos injection
/// for drills.
fn simulate_supervised(
    rest: &[String],
    table: &StateTable,
    circuit: &scanft_synth::SynthesizedCircuit,
    scan_tests: &[scanft_sim::ScanTest],
) -> Result<(), ScanftError> {
    use scanft_sim::campaign::{self, Kernel, SupervisedConfig};

    let num_threads = value_of(rest, "--threads")?.unwrap_or(1);
    if num_threads == 0 {
        return Err(ScanftError::usage("--threads must be positive"));
    }
    let kernel = match string_of(rest, "--kernel")? {
        None => Kernel::Narrow,
        Some(value) => Kernel::from_flag(&value)
            .ok_or_else(|| ScanftError::usage("--kernel must be `narrow` or `wide`"))?,
    };
    let mut budget = Budget::unlimited();
    if let Some(secs) = value_of(rest, "--deadline")? {
        budget = budget.with_deadline(std::time::Duration::from_secs(secs as u64));
    }
    let journal_path = string_of(rest, "--journal")?;
    let resume = flag(rest, "--resume");
    if resume && journal_path.is_none() {
        return Err(ScanftError::usage("--resume requires --journal FILE"));
    }
    let chaos = value_of(rest, "--chaos-seed")?.map(|seed| {
        scanft_harness::silence_chaos_panics();
        FailurePlan::new(seed as u64)
    });

    let stuck = scanft_sim::faults::enumerate_stuck(circuit.netlist());
    let fault_list = scanft_sim::faults::as_fault_list(&stuck);
    let order = campaign::decreasing_length_order(scan_tests);
    let config = SupervisedConfig {
        num_threads,
        observe_scan_out: true,
        budget,
        label: table.name().to_owned(),
        kernel,
        arena: None,
    };

    let prior = match (&journal_path, resume) {
        (Some(path), true) => Some(scanft_harness::read_journal_file(path)?),
        _ => None,
    };
    let writer = match &journal_path {
        Some(path) => {
            let w = if resume {
                JournalWriter::append_to(path)?
            } else {
                JournalWriter::create(path)?
            };
            Some(match &chaos {
                Some(plan) => w.with_chaos(plan.clone()),
                None => w,
            })
        }
        None => None,
    };

    // `--optimize` preserves the journal and report contract bit-for-bit
    // (same units, same records, cross-resumable with unoptimized runs).
    let partial = if flag(rest, "--optimize") {
        let opt = scanft_opt::optimize(circuit.netlist());
        scanft_opt::checker::check(circuit.netlist(), &opt.netlist, &opt.certificate).map_err(
            |e| ScanftError::Synth {
                message: format!("optimizer self-check failed — {e}"),
            },
        )?;
        println!(
            "optimized: {} -> {} gates (certificate: {} steps, validated)",
            opt.stats.original_gates, opt.stats.reduced_gates, opt.stats.certificate_steps
        );
        scanft_opt::campaign::run_supervised_optimized(
            circuit.netlist(),
            &opt,
            scan_tests,
            &order,
            &fault_list,
            &config,
            writer.as_ref(),
            prior.as_ref(),
            chaos.as_ref(),
        )?
    } else {
        campaign::run_supervised(
            circuit.netlist(),
            scan_tests,
            &order,
            &fault_list,
            &config,
            writer.as_ref(),
            prior.as_ref(),
            chaos.as_ref(),
        )?
    };

    println!(
        "supervised stuck-at campaign for {} ({} faults in {} batches, {} thread{}):",
        table.name(),
        fault_list.len(),
        partial.num_units,
        num_threads,
        if num_threads == 1 { "" } else { "s" }
    );
    println!(
        "  completed: {}/{} batches ({} resumed from the journal)",
        partial.completed_units.len(),
        partial.num_units,
        partial.resumed_units.len()
    );
    for failure in &partial.quarantined {
        println!(
            "  quarantined: batch {} — {}",
            failure.unit, failure.message
        );
    }
    if let Some(reason) = partial.stopped {
        println!(
            "  stopped by {reason}: {} batch(es) remaining",
            partial.remaining_units.len()
        );
    }
    println!(
        "  stuck-at: {}/{} detected ({:.2}%{}), {} effective tests",
        partial.report.detected(),
        fault_list.len(),
        partial.coverage_lower_bound_percent(),
        if partial.is_complete() {
            ""
        } else {
            ", lower bound"
        },
        partial.report.effective_tests().len()
    );
    if let Some(path) = &journal_path {
        println!("  journal: {path}");
    }
    Ok(())
}

fn cmd_evaluate(rest: &[String]) -> Result<(), ScanftError> {
    let table = load_circuit(rest)?;
    let config = FlowConfig {
        gate_level: !flag(rest, "--functional-only"),
        top_up: flag(rest, "--top-up"),
        synth: SynthConfig {
            encoding: if flag(rest, "--gray") {
                Encoding::Gray
            } else {
                Encoding::Binary
            },
            ..SynthConfig::default()
        },
        ..FlowConfig::default()
    };
    let report = run_flow(&table, &config);
    println!("evaluation of {}:", report.name);
    println!(
        "  UIOs: {}/{} states (max length {}), {:.2}s",
        report.uio.num_with_uio,
        table.num_states(),
        report.uio.max_len,
        report.uio.secs
    );
    println!(
        "  tests: {} (total length {}, {:.2}% unit-tested), {:.2}s",
        report.tests.tests.len(),
        report.tests.total_length(),
        report.tests.percent_unit_tested(),
        report.tests.elapsed_secs
    );
    println!(
        "  cycles: {} functional vs {} per-transition ({:.2}%)",
        report.functional_cycles,
        report.baseline_cycles,
        report.functional_percent()
    );
    if let Some(gate) = &report.gate {
        println!("  netlist: {}", gate.netlist);
        for (label, m) in [("stuck-at", &gate.stuck), ("bridging", &gate.bridging)] {
            println!(
                "  {label}: {}/{} detected ({:.2}%), {} proven undetectable, {} unclassified, {} effective tests ({} cycles){}",
                m.detected,
                m.total_faults,
                m.coverage,
                m.proven_undetectable,
                m.unclassified,
                m.effective_tests,
                m.effective_cycles,
                if m.top_up_tests > 0 {
                    format!(", {} top-up tests", m.top_up_tests)
                } else {
                    String::new()
                }
            );
            println!(
                "    complete coverage of detectable faults: {}",
                if m.complete_detectable_coverage() {
                    "yes"
                } else {
                    "no"
                }
            );
        }
        if gate.bridge_truncated {
            println!(
                "  note: bridging universe subsampled to {} of {} structural pairs",
                gate.bridging.total_faults / 2,
                gate.bridge_pairs_total
            );
        }
    }
    println!("  total: {:.2}s", report.total_secs);
    Ok(())
}

/// `scanft optimize <circuit> [--cert FILE]`: run the certificate-emitting
/// static optimizer, re-validate the proof log with the independent
/// checker (always — an unjustified rewrite is a hard error), report the
/// reduction and the fault-universe classification, and optionally write
/// the certificate out.
fn cmd_optimize(rest: &[String]) -> Result<(), ScanftError> {
    let table = load_circuit(rest)?;
    let circuit = synthesize(&table, &SynthConfig::default());
    let n = circuit.netlist();
    let opt = scanft_opt::optimize(n);
    scanft_opt::checker::check(n, &opt.netlist, &opt.certificate).map_err(|e| {
        ScanftError::Synth {
            message: format!("optimizer self-check failed — {e}"),
        }
    })?;
    let s = &opt.stats;
    println!("optimized {}:", table.name());
    println!("  original: {}", n.stats());
    println!("  reduced:  {}", opt.netlist.stats());
    let removed_pct =
        100.0 * (s.original_gates - s.reduced_gates) as f64 / s.original_gates.max(1) as f64;
    println!(
        "  gates: {} -> {} ({removed_pct:.1}% removed): {} constants folded, {} merges, {} dead",
        s.original_gates, s.reduced_gates, s.constants_folded, s.merges, s.gates_removed
    );
    println!(
        "  facts: {} closure constants ({} visible to plain dataflow), {} unproven skipped",
        s.closure_constants,
        s.dataflow_constants,
        s.unproven_constants + s.unproven_equiv
    );
    println!(
        "  certificate: {} steps, {} lemmas, {} bytes — validated by the independent checker",
        s.certificate_steps, s.certificate_lemmas, s.certificate_bytes
    );
    let stuck = scanft_sim::faults::enumerate_stuck(n);
    let collapsed = scanft_sim::collapse::collapse_stuck(n, &stuck).representatives;
    let list = scanft_sim::faults::as_fault_list(&collapsed);
    let plan = scanft_opt::fault_map::FaultPlan::new(n, &opt, &list);
    let (untestable, fallback, exact) = plan.counts();
    println!(
        "  faults: {} collapsed stuck-at -> {untestable} provably untestable, \
         {exact} exact on the reduced netlist, {fallback} fall back to the original",
        list.len()
    );
    if let Some(path) = string_of(rest, "--cert")? {
        write_file(&path, opt.certificate.clone())?;
        println!("  certificate written to {path}");
    }
    Ok(())
}

fn cmd_atpg(rest: &[String]) -> Result<(), ScanftError> {
    let table = load_circuit(rest)?;
    let synth_config = SynthConfig {
        encoding: if flag(rest, "--gray") {
            Encoding::Gray
        } else {
            Encoding::Binary
        },
        ..SynthConfig::default()
    };
    let circuit = synthesize(&table, &synth_config);
    let functional = if flag(rest, "--no-functional") {
        Vec::new()
    } else {
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
        generate(&table, &uios, &GenConfig::default()).to_scan_tests(&circuit)
    };
    let config = scanft_core::top_up::TopUpConfig {
        decision_budget: value_of(rest, "--budget")?
            .map(|b| b as u64)
            .unwrap_or(scanft_core::top_up::TopUpConfig::default().decision_budget),
        budget: match value_of(rest, "--deadline")? {
            Some(secs) => {
                Budget::unlimited().with_deadline(std::time::Duration::from_secs(secs as u64))
            }
            None => Budget::unlimited(),
        },
        collapse: !flag(rest, "--uncollapsed"),
        use_implications: !flag(rest, "--no-implications"),
        heuristic: if flag(rest, "--level") {
            scanft_core::top_up::Heuristic::Level
        } else {
            scanft_core::top_up::Heuristic::Scoap
        },
        optimize: flag(rest, "--optimize"),
        ..scanft_core::top_up::TopUpConfig::default()
    };
    let outcome = scanft_core::top_up::top_up_scan(circuit.netlist(), &functional, &config);
    let report = &outcome.report;
    println!("coverage top-up for {}:", table.name());
    println!("  netlist: {}", circuit.netlist().stats());
    println!(
        "  faults: {} {} stuck-at targets",
        report.faults.len(),
        if config.collapse {
            "collapsed"
        } else {
            "uncollapsed"
        }
    );
    println!(
        "  functional: {} tests detect {} faults ({:.2}%)",
        outcome.num_functional,
        report.detected_functional(),
        100.0 * report.detected_functional() as f64 / report.faults.len().max(1) as f64
    );
    println!(
        "  atpg: {} patterns detect {} faults ({} dropped by another fault's pattern)",
        report.atpg_patterns,
        report.detected_atpg(),
        report.dropped_by_atpg_patterns
    );
    println!(
        "  untestable: {} statically pruned, {} proven redundant, aborted: {} (budget {})",
        report.statically_untestable(),
        report.proven_redundant(),
        report.aborted(),
        config.decision_budget
    );
    if let Some(reason) = report.stopped {
        println!(
            "  stopped by {reason}: remaining survivors reported as aborted (coverage is a lower bound)"
        );
    }
    println!(
        "  effort: {} decisions, {} backtracks, {} necessary assignments{}",
        report.decisions,
        report.backtracks,
        report.implications,
        if config.use_implications {
            ""
        } else {
            " (implication guidance off)"
        }
    );
    println!(
        "  coverage: {:.2}% of all faults, {:.2}% of non-redundant faults{}",
        report.coverage_percent(),
        report.effective_coverage_percent(),
        if report.is_complete() {
            " (complete)"
        } else {
            ""
        }
    );
    Ok(())
}

/// Lint levels assembled from repeated `--deny CODE`, `--warn CODE`,
/// `--allow CODE` overrides on top of the built-in defaults.
fn lint_levels(rest: &[String]) -> Result<scanft_analyze::LintLevels, ScanftError> {
    use scanft_analyze::{LintCode, Severity};
    let mut levels = scanft_analyze::LintLevels::default();
    let mut i = 0;
    while i < rest.len() {
        if let Some(severity) = Severity::parse(rest[i].trim_start_matches("--")) {
            let name = rest
                .get(i + 1)
                .ok_or_else(|| ScanftError::usage(format!("{} needs a lint name", rest[i])))?;
            let code = LintCode::parse(name).ok_or_else(|| {
                ScanftError::usage(format!(
                    "unknown lint `{name}` (known: {})",
                    scanft_analyze::ALL_LINTS
                        .iter()
                        .map(|c| c.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })?;
            levels.set(code, severity);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(levels)
}

/// Whether gate-level (netlist) lints fit the default time budget for this
/// machine — the same bound `scanft-bench` uses for fault-simulation work.
fn within_gate_budget(table: &StateTable) -> bool {
    table.num_inputs() + table.num_state_vars() <= 10 && table.num_transitions() <= 1024
}

fn cmd_lint(rest: &[String]) -> Result<ExitCode, ScanftError> {
    use scanft_analyze::{
        lint_import_error, lint_kiss_source, lint_netlist, lint_state_table, Analysis,
        FsmLintConfig, LintReport, NetlistLintConfig,
    };

    let json = flag(rest, "--json");
    let full = flag(rest, "--full");
    let levels = lint_levels(rest)?;
    let mut targets: Vec<String> = Vec::new();
    if flag(rest, "--all") {
        targets.extend(benchmarks::CIRCUITS.iter().map(|s| s.name.to_owned()));
    }
    // Positional operands; skip the value that follows a level override.
    let mut i = 0;
    while i < rest.len() {
        let arg = &rest[i];
        if matches!(
            arg.as_str(),
            "--deny" | "--warn" | "--allow" | "--max-fanin"
        ) {
            i += 2;
            continue;
        }
        if !arg.starts_with("--") {
            targets.push(arg.clone());
        }
        i += 1;
    }
    if targets.is_empty() {
        return Err(ScanftError::usage(
            "lint needs at least one circuit (or --all)",
        ));
    }

    let netlist_config = NetlistLintConfig {
        levels: levels.clone(),
        max_fanin: value_of(rest, "--max-fanin")?.unwrap_or(NetlistLintConfig::default().max_fanin),
    };
    let fsm_config = FsmLintConfig {
        levels: levels.clone(),
        uio_max_len: None,
    };

    let mut num_deny = 0usize;
    let mut num_warn = 0usize;
    let mut emit = |target: &str, report: &LintReport| {
        num_deny += report.num_deny();
        num_warn += report.num_warn();
        for d in &report.diagnostics {
            if json {
                // Same object shape as `Diagnostic::to_json`, with the
                // circuit spliced in as the first field.
                let body = d.to_json();
                println!(
                    "{{\"circuit\":\"{}\",{}",
                    scanft_obs::escape_json_string(target),
                    &body[1..]
                );
            } else {
                println!("{target}: {d}");
            }
        }
    };

    for target in &targets {
        let path = std::path::Path::new(target);
        if path.exists() && target.ends_with(".blif") {
            // BLIF netlist: structural lints only.
            let text = read_file(target)?;
            match scanft_netlist::blif::parse(&text) {
                Ok(netlist) => {
                    let analysis = Analysis::new(&netlist);
                    emit(target, &lint_netlist(&netlist, &analysis, &netlist_config));
                }
                Err(err) => emit(target, &lint_import_error(&err, &levels)),
            }
            continue;
        }
        // KISS2 path or benchmark name: FSM lints, then gate-level lints on
        // the synthesized netlist when the circuit fits the time budget.
        let table = if path.exists() {
            let text = read_file(target)?;
            let (table, source_report) = lint_kiss_source(&text, target, &levels);
            emit(target, &source_report);
            match table {
                Some(t) => t,
                None => continue,
            }
        } else {
            benchmarks::build(target).map_err(ScanftError::from)?
        };
        emit(target, &lint_state_table(&table, &fsm_config));
        if full || within_gate_budget(&table) {
            let circuit = synthesize(&table, &SynthConfig::default());
            emit(
                target,
                &lint_netlist(
                    circuit.netlist(),
                    &Analysis::new(circuit.netlist()),
                    &netlist_config,
                ),
            );
        } else if !json {
            println!(
                "{target}: netlist lints skipped (over the gate-level budget; pass --full to force)"
            );
        }
    }

    if !json {
        println!(
            "lint: {} circuit(s), {num_deny} deny, {num_warn} warn",
            targets.len()
        );
    }
    Ok(if num_deny > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_dot(rest: &[String]) -> Result<(), ScanftError> {
    let table = load_circuit(rest)?;
    print!("{}", scanft_fsm::dot::to_dot(&table));
    Ok(())
}

fn cmd_synth(rest: &[String]) -> Result<(), ScanftError> {
    let table = load_circuit(rest)?;
    let config = SynthConfig {
        encoding: if flag(rest, "--gray") {
            Encoding::Gray
        } else {
            Encoding::Binary
        },
        minimize: !flag(rest, "--flat"),
        ..SynthConfig::default()
    };
    let circuit = synthesize(&table, &config);
    if flag(rest, "--dot") {
        print!(
            "{}",
            scanft_netlist::to_dot(circuit.netlist(), table.name())
        );
    } else if flag(rest, "--blif") {
        print!(
            "{}",
            scanft_netlist::blif::write(circuit.netlist(), table.name())
        );
    } else {
        println!("{}: {}", table.name(), circuit.netlist().stats());
        scanft_synth::verify_against_table(&circuit, &table, None).map_err(|m| {
            ScanftError::Synth {
                message: format!("self-check found a mismatch: {m:?}"),
            }
        })?;
        println!("self-check: netlist behaviour matches the state table on all transitions");
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Serving: the `scanft serve` daemon and its client subcommands.
// ---------------------------------------------------------------------------

fn cmd_serve(rest: &[String]) -> Result<(), ScanftError> {
    use scanft_server::{Server, ServerConfig, TenantQuota};

    let mut config = ServerConfig::default();
    if let Some(addr) = string_of(rest, "--addr")? {
        config.addr = addr;
    }
    if let Some(workers) = value_of(rest, "--workers")? {
        if workers == 0 {
            return Err(ScanftError::usage("--workers must be positive"));
        }
        config.workers = workers;
    }
    if let Some(threads) = value_of(rest, "--threads")? {
        if threads == 0 {
            return Err(ScanftError::usage("--threads must be positive"));
        }
        config.campaign_threads = threads;
    }
    if let Some(kernel) = string_of(rest, "--kernel")? {
        config.kernel = scanft_sim::campaign::Kernel::from_flag(&kernel)
            .ok_or_else(|| ScanftError::usage("--kernel must be `narrow` or `wide`"))?;
    }
    if let Some(dir) = string_of(rest, "--journal-dir")? {
        config.journal_dir = dir;
    }
    if let Some(capacity) = value_of(rest, "--cache")? {
        config.cache_capacity = capacity;
    }
    let mut quota = TenantQuota::default();
    if let Some(max_active) = value_of(rest, "--max-active")? {
        quota.max_active = max_active;
    }
    if let Some(max_units) = value_of(rest, "--max-units")? {
        quota.max_units = Some(max_units as u64);
    }
    config.quota = quota;
    if let Some(limit) = value_of(rest, "--body-limit")? {
        config.max_body_bytes = limit;
    }
    if let Some(secs) = value_of(rest, "--timeout")? {
        config.read_timeout = std::time::Duration::from_secs(secs as u64);
    }
    if let Some(seed) = value_of(rest, "--chaos-seed")? {
        scanft_harness::silence_chaos_panics();
        config.chaos_seed = Some(seed as u64);
    }
    config.optimize = flag(rest, "--optimize");
    if let Some(dir) = string_of(rest, "--state-dir")? {
        config.state_dir = Some(dir);
    }
    if let Some(depth) = value_of(rest, "--queue-depth")? {
        config.max_queue_depth = depth;
    }
    if let Some(secs) = value_of(rest, "--retry-after")? {
        config.retry_after_secs = secs as u64;
    }
    let deadline = value_of(rest, "--deadline")?;

    let journal_dir = config.journal_dir.clone();
    let state_dir = config.state_dir.clone();
    let server = Server::start(config)?;
    println!("scanft serve: listening on {}", server.addr());
    println!("  journals: {journal_dir}");
    if let Some(dir) = &state_dir {
        let recovery = server.recovery();
        println!(
            "  state: {dir} (wal: {} records, {} torn; recovered: {} re-queued, {} terminal)",
            recovery.wal_records, recovery.wal_torn, recovery.jobs_requeued, recovery.jobs_terminal
        );
    }
    match deadline {
        Some(secs) => {
            scanft_race::thread::sleep(std::time::Duration::from_secs(secs as u64));
            println!("scanft serve: deadline reached, shutting down");
            server.shutdown();
        }
        None => {
            // Blocks until `POST /admin/drain` (or shutdown) is requested,
            // then finishes in-flight jobs and exits 0 — the graceful-drain
            // path a supervisor's SIGTERM handler would drive.
            server.wait_drain_requested();
            println!("scanft serve: drain requested, finishing in-flight jobs");
            server.drain_and_shutdown();
            println!("scanft serve: drained, exiting");
        }
    }
    Ok(())
}

fn server_client(rest: &[String]) -> Result<scanft_server::Client, ScanftError> {
    use std::net::ToSocketAddrs;
    let addr = string_of(rest, "--server")?
        .ok_or_else(|| ScanftError::usage("--server HOST:PORT is required"))?;
    let resolved = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .ok_or_else(|| ScanftError::usage(format!("cannot resolve server address `{addr}`")))?;
    let mut client = scanft_server::Client::new(resolved);
    if let Some(retries) = value_of(rest, "--retries")? {
        client = client.with_retry(scanft_server::RetryPolicy {
            max_retries: u32::try_from(retries).unwrap_or(u32::MAX),
            ..scanft_server::RetryPolicy::default()
        });
    }
    Ok(client)
}

/// Maps a client failure onto the CLI's exit discipline: transport and
/// protocol failures become [`ScanftError::Io`]; structured API refusals
/// are printed and exit with the taxonomy code the server sent, so an HTTP
/// `fsm` error and a local `scanft simulate` parse error exit identically.
fn api_exit(err: scanft_server::ClientError) -> Result<ExitCode, ScanftError> {
    use scanft_server::ClientError;
    match err {
        ClientError::Io(source) => Err(ScanftError::Io {
            path: "server connection".to_owned(),
            source,
        }),
        ClientError::Protocol(what) => Err(ScanftError::Io {
            path: "server response".to_owned(),
            source: std::io::Error::new(std::io::ErrorKind::InvalidData, what),
        }),
        ClientError::Api {
            status,
            code,
            class,
            message,
        } => {
            eprintln!("scanft: server refused ({status}): error[{class}]: {message}");
            Ok(ExitCode::from(u8::try_from(code).unwrap_or(1)))
        }
    }
}

fn print_job(view: &scanft_server::JobView) {
    println!("{}: {} ({})", view.id, view.status, view.circuit);
    println!("  key: {}", view.key);
    if let Some(cache) = &view.cache {
        println!("  artifacts: cache {cache}");
    }
    if let (Some(coverage), Some(detected), Some(faults)) =
        (view.coverage, view.detected, view.faults)
    {
        println!("  coverage: {coverage:.2}% ({detected}/{faults} faults)");
    }
    if let (Some(done), Some(total)) = (view.completed_units, view.units) {
        println!("  units: {done}/{total}");
    }
    if let Some(message) = &view.message {
        println!("  error: {message}");
    }
    if let Some(journal) = &view.journal {
        println!("  journal: {journal}");
    }
}

fn cmd_submit(rest: &[String]) -> Result<ExitCode, ScanftError> {
    let client = server_client(rest)?;
    let table = load_circuit(rest)?;
    let mut body = kiss::write(&table);
    if let Some(path) = string_of(rest, "--tests")? {
        body.push_str(".tests\n");
        body.push_str(&read_file(&path)?);
    }
    let kind = if flag(rest, "--atpg") {
        scanft_server::JobKind::Atpg
    } else {
        scanft_server::JobKind::Simulate
    };
    let tenant = string_of(rest, "--tenant")?.unwrap_or_else(|| "default".to_owned());
    let idem_key = string_of(rest, "--idempotency-key")?;
    let submitted =
        match client.submit_with_key(&body, table.name(), &tenant, kind, idem_key.as_deref()) {
            Ok(view) => view,
            Err(err) => return api_exit(err),
        };
    if flag(rest, "--wait") {
        let deadline =
            std::time::Duration::from_secs(value_of(rest, "--timeout")?.unwrap_or(600) as u64);
        match client.wait(&submitted.id, deadline) {
            Ok(view) => print_job(&view),
            Err(err) => return api_exit(err),
        }
    } else {
        print_job(&submitted);
    }
    Ok(ExitCode::SUCCESS)
}

/// The first positional argument, skipping flags and the values of flags
/// that take one (so `status --server HOST:PORT job-3` finds `job-3`).
fn job_id_of(rest: &[String]) -> Result<String, ScanftError> {
    let mut skip_value = false;
    for arg in rest {
        if skip_value {
            skip_value = false;
            continue;
        }
        if arg.starts_with("--") {
            skip_value = matches!(
                arg.as_str(),
                "--server"
                    | "--timeout"
                    | "--tenant"
                    | "--tests"
                    | "--retries"
                    | "--idempotency-key"
            );
            continue;
        }
        return Ok(arg.clone());
    }
    Err(ScanftError::usage("missing job id"))
}

fn cmd_status(rest: &[String]) -> Result<ExitCode, ScanftError> {
    let client = server_client(rest)?;
    match client.status(&job_id_of(rest)?) {
        Ok(view) => {
            print_job(&view);
            Ok(ExitCode::SUCCESS)
        }
        Err(err) => api_exit(err),
    }
}

fn cmd_cancel(rest: &[String]) -> Result<ExitCode, ScanftError> {
    let client = server_client(rest)?;
    let id = job_id_of(rest)?;
    match client.cancel(&id) {
        Ok(()) => {
            println!("{id}: cancellation requested");
            Ok(ExitCode::SUCCESS)
        }
        Err(err) => api_exit(err),
    }
}

fn cmd_drain(rest: &[String]) -> Result<ExitCode, ScanftError> {
    let client = server_client(rest)?;
    match client.drain() {
        Ok((queued, running)) => {
            println!("drain requested: {queued} queued, {running} running job(s) to finish");
            Ok(ExitCode::SUCCESS)
        }
        Err(err) => api_exit(err),
    }
}

fn cmd_events(rest: &[String]) -> Result<ExitCode, ScanftError> {
    let client = server_client(rest)?;
    match client.events(&job_id_of(rest)?) {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Err(err) => api_exit(err),
    }
}
