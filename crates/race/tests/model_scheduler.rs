//! Scheduler sanity: the model checker must find classic interleaving
//! bugs, prove small clean programs deadlock-free across their whole
//! schedule space, prune equivalent interleavings, and replay recorded
//! counterexamples deterministically.
//!
//! Run with `cargo test -p scanft-race --features model`.
#![cfg(feature = "model")]
#![allow(clippy::unwrap_used)]

use scanft_race::model::{self, ModelConfig};
use scanft_race::sync::{Arc, AtomicU64, Condvar, Mutex, Ordering};
use scanft_race::thread;

fn cfg() -> ModelConfig {
    ModelConfig::default()
}

#[test]
fn clean_counter_explores_multiple_schedules_without_failure() {
    let report = model::check_named("clean-counter", &cfg(), || {
        let n = Arc::new(AtomicU64::new(0));
        let a = {
            let n = Arc::clone(&n);
            thread::spawn(move || n.fetch_add(1, Ordering::SeqCst))
        };
        let b = {
            let n = Arc::clone(&n);
            thread::spawn(move || n.fetch_add(1, Ordering::SeqCst))
        };
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    report.assert_ok();
    assert!(
        report.schedules >= 2,
        "expected >= 2 schedules, got {}",
        report.schedules
    );
    assert!(report.complete, "small space should be fully explored");
}

#[test]
fn mutexed_increments_never_lose_updates() {
    let report = model::check_named("mutexed-increment", &cfg(), || {
        let n = Arc::new(Mutex::new(0_u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || *n.lock() += 1)
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock(), 2);
    });
    report.assert_ok();
    assert!(report.schedules >= 2);
    assert!(report.complete);
}

#[test]
fn finds_lost_update_through_unlocked_gap_and_replays_it() {
    // Read under one lock, write under another: the classic lost update.
    let body = || {
        let n = Arc::new(Mutex::new(0_u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let seen = *n.lock();
                    *n.lock() = seen + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock(), 2, "lost an update");
    };
    let report = model::check_named("lost-update", &cfg(), body);
    let failure = report.failure.expect("DFS must find the lost update");
    assert!(!failure.deadlock);
    assert!(failure.message.contains("lost an update"), "{failure}");

    // The recorded schedule reproduces the same failure, twice.
    for _ in 0..2 {
        let replayed = model::replay(&failure.trace, body)
            .failure
            .expect("replay must reproduce the failure");
        assert_eq!(replayed.message, failure.message);
        assert_eq!(replayed.trace, failure.trace);
    }
}

#[test]
fn detects_lock_order_inversion_as_deadlock() {
    let body = || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
        };
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        t.join().unwrap();
    };
    let report = model::check_named("lock-order", &cfg(), body);
    let failure = report.failure.expect("must find the AB/BA deadlock");
    assert!(failure.deadlock, "{failure}");
    assert!(failure.message.contains("deadlock"), "{failure}");

    let replayed = model::replay(&failure.trace, body)
        .failure
        .expect("deadlock replays");
    assert!(replayed.deadlock);
    assert_eq!(replayed.trace, failure.trace);
}

#[test]
fn condvar_handoff_is_clean_across_all_schedules() {
    let report = model::check_named("condvar-handoff", &cfg(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let setter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (m, cv) = &*pair;
                *m.lock() = true;
                cv.notify_one();
            })
        };
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        drop(ready);
        setter.join().unwrap();
    });
    report.assert_ok();
    assert!(report.schedules >= 2);
    assert!(report.complete);
}

#[test]
fn seeded_missed_wakeup_bug_is_found_and_replays_deterministically() {
    // Deliberately reintroduced missed-wakeup: the waiter checks the
    // flag, *releases the lock*, then re-locks and waits. If the setter
    // slips its flag-write and notify into that window, the
    // notification is lost and the waiter sleeps forever. This is the
    // bug class `JobRegistry::claim`'s recheck loop exists to prevent.
    let body = || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let setter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (m, cv) = &*pair;
                *m.lock() = true;
                cv.notify_one();
            })
        };
        let (m, cv) = &*pair;
        let ready = m.lock();
        if !*ready {
            drop(ready); // BUG: window between check and wait
            let relocked = m.lock();
            let _guard = cv.wait(relocked);
        } else {
            drop(ready);
        }
        setter.join().unwrap();
    };
    let report = model::check_named("seeded-missed-wakeup", &cfg(), body);
    let failure = report.failure.expect("must find the missed wakeup");
    assert!(
        failure.deadlock,
        "missed wakeup appears as deadlock: {failure}"
    );
    assert!(
        failure.message.contains("condvar"),
        "diagnosis names the condvar wait: {failure}"
    );

    for _ in 0..2 {
        let replayed = model::replay(&failure.trace, body)
            .failure
            .expect("replay must reproduce the missed wakeup");
        assert!(replayed.deadlock);
        assert_eq!(replayed.trace, failure.trace);
        assert_eq!(replayed.message, failure.message);
    }
}

#[test]
fn sleep_sets_prune_independent_interleavings() {
    let report = model::check_named("independent-mutexes", &cfg(), || {
        let a = Arc::new(Mutex::new(0_u64));
        let b = Arc::new(Mutex::new(0_u64));
        let ta = {
            let a = Arc::clone(&a);
            thread::spawn(move || *a.lock() += 1)
        };
        let tb = {
            let b = Arc::clone(&b);
            thread::spawn(move || *b.lock() += 1)
        };
        ta.join().unwrap();
        tb.join().unwrap();
    });
    report.assert_ok();
    assert!(report.complete);
    assert!(
        report.pruned > 0,
        "independent lock ops should trigger sleep-set pruning \
         (schedules={}, pruned={})",
        report.schedules,
        report.pruned
    );
}

#[test]
fn exploration_is_deterministic_across_invocations() {
    let run = || {
        model::check_named("determinism-probe", &cfg(), || {
            let n = Arc::new(Mutex::new(0_u64));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || *n.lock() += 1)
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.pruned, b.pruned);
    assert_eq!(a.complete, b.complete);
    assert!(a.failure.is_none() && b.failure.is_none());
}

#[test]
fn scoped_threads_are_modeled() {
    let report = model::check_named("scoped-threads", &cfg(), || {
        let n = Mutex::new(0_u64);
        thread::scope(|s| {
            s.spawn(|| *n.lock() += 1);
            s.spawn(|| *n.lock() += 1);
        });
        assert_eq!(*n.lock(), 2);
    });
    report.assert_ok();
    assert!(report.schedules >= 2);
}

#[test]
fn counterexample_trace_is_dumped_and_parseable() {
    let dir = std::env::temp_dir().join(format!("race-trace-{}", std::process::id()));
    std::env::set_var("SCANFT_RACE_TRACE_DIR", &dir);
    let report = model::check_named("dumped-trace", &cfg(), || {
        let n = Arc::new(Mutex::new(0_u64));
        let t = {
            let n = Arc::clone(&n);
            thread::spawn(move || *n.lock() += 1)
        };
        let seen = *n.lock();
        t.join().unwrap();
        assert_eq!(seen, 1, "raced ahead of the increment");
    });
    std::env::remove_var("SCANFT_RACE_TRACE_DIR");
    let failure = report.failure.expect("the race is real");
    let text = std::fs::read_to_string(dir.join("dumped-trace.trace")).unwrap();
    let parsed = scanft_race::trace::ScheduleTrace::parse(&text).unwrap();
    assert_eq!(parsed, failure.trace);
    let _ = std::fs::remove_dir_all(&dir);
}
