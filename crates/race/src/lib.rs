//! Deterministic concurrency analysis layer for the scanft workspace.
//!
//! The repo runs real concurrent infrastructure — a `Mutex`+`Condvar` job
//! registry with cancellation, a parallel campaign worker pool with panic
//! quarantine, lock-free observability counters, and a journal writer
//! raced by a tailer — and every correctness claim (bit-identical resume,
//! deterministic journals, sound partial coverage) rests on the
//! interleavings those primitives admit. This crate turns hand-reasoned
//! interleavings into machine-checked evidence, in the same spirit as the
//! optimizer's rewrite certificates: explored schedules are the proof,
//! and a bad schedule becomes a replayable counterexample.
//!
//! Three pieces:
//!
//! - [`sync`] and [`thread`] — a drop-in facade over `std::sync` /
//!   `std::thread`. In normal builds these are thin wrappers (with one
//!   deliberate behavioural change: mutexes and condvars **never
//!   poison** — a panicking holder unwinds, the next locker proceeds).
//!   Workspace code imports the facade instead of `std`; the source lint
//!   in `scanft-bench` (`race_lint`) enforces this.
//! - `model` (behind the `model` feature, so the links below only resolve
//!   in feature-enabled docs) — a loom-style deterministic scheduler.
//!   `model::check` runs a closure many times, serializing its threads so
//!   exactly one runs at a time and exploring the choice of which thread
//!   proceeds at every facade operation: bounded exhaustive DFS with
//!   sleep-set pruning, then SplitMix64-seeded random schedules.
//!   Deadlocks (including missed condvar wakeups) and panics (failed
//!   assertions) are reported with a [`trace::ScheduleTrace`] that
//!   `model::replay` reproduces deterministically.
//! - [`trace`] — the schedule trace format shared by the checker, the
//!   `SCANFT_RACE_TRACE_DIR` counterexample dump, and replay.
//!
//! The facade only models what the workspace actually uses: `Mutex`,
//! `Condvar` (un-timed waits), `AtomicBool`/`AtomicU64`/`AtomicUsize`,
//! `spawn`/`scope`/`yield_now`/`sleep`. Under the model scheduler all
//! atomics are treated as sequentially consistent — the *ordering policy*
//! (which orderings production code may use where) is enforced
//! separately, by the source lint, not by the model.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod sync;
pub mod thread;
pub mod trace;

#[cfg(feature = "model")]
pub mod model;
#[cfg(feature = "model")]
mod rng;
