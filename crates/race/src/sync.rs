//! Drop-in facade over `std::sync`.
//!
//! Workspace code imports synchronization primitives from here instead
//! of `std` (enforced by the `race_lint` source pass). In normal builds
//! every type is a thin wrapper around its std counterpart with **one**
//! behavioural change: [`Mutex`] and [`Condvar`] never poison. A thread
//! that panics while holding a lock unwinds, and the next locker simply
//! proceeds — for this workspace that is the correct policy, because
//! panic quarantine (`scanft-harness`) already guarantees that panicking
//! work units leave shared state consistent, and a poisoned registry
//! mutex would otherwise turn one quarantined panic into a dead daemon.
//!
//! With the `model` feature enabled *and* a `crate::model::check` run
//! active on the current thread, every operation becomes a scheduling
//! point of the deterministic scheduler. Outside a model run the `model`
//! feature costs one thread-local probe per operation and nothing else,
//! so workspace-wide feature unification (test builds enabling `model`
//! for everything) cannot change production behaviour.
//!
//! Atomics take explicit [`Ordering`] arguments exactly like std. The
//! *policy* for which orderings are allowed where (`Relaxed` only on
//! statistics counters) is enforced by `race_lint`, not at runtime; under
//! the model scheduler all atomics run sequentially consistent.

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::atomic::Ordering;
pub use std::sync::{Arc, Once, OnceLock, Weak};

#[cfg(feature = "model")]
use crate::model;

/// Effective ordering for a real atomic access: as requested normally,
/// `SeqCst` inside a model run (the model explores interleavings, not
/// weak memory).
fn eff(order: Ordering) -> Ordering {
    #[cfg(feature = "model")]
    if model::in_model() {
        return Ordering::SeqCst;
    }
    order
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock that recovers from poisoning: `lock()` returns
/// the guard directly, and a panic in a previous holder is absorbed
/// rather than propagated to every future locker.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "model")]
    id: u64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex holding `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "model")]
            id: model::new_object_id(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value (recovering
    /// from poisoning).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never panics
    /// on poisoning. Inside a model run this is a scheduling point and
    /// the acquisition order is scheduler-controlled.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "model")]
        {
            if model::in_model() {
                model::point(model::Op::Lock(self.id));
                // The model granted us the lock, so the real acquire
                // below cannot contend with another model thread.
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                return MutexGuard {
                    mutex: self,
                    modeled: true,
                    inner: Some(inner),
                };
            }
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            MutexGuard {
                mutex: self,
                modeled: false,
                inner: Some(inner),
            }
        }
        #[cfg(not(feature = "model"))]
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases on drop.
#[cfg(not(feature = "model"))]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases on drop. Under the
/// model scheduler the release is itself a scheduling point.
#[cfg(feature = "model")]
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    /// Whether the model scheduler granted this acquisition (and must be
    /// told about the release).
    modeled: bool,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        #[cfg(feature = "model")]
        {
            self.inner.as_deref().expect("mutex guard already released")
        }
        #[cfg(not(feature = "model"))]
        {
            &self.inner
        }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        #[cfg(feature = "model")]
        {
            self.inner
                .as_deref_mut()
                .expect("mutex guard already released")
        }
        #[cfg(not(feature = "model"))]
        {
            &mut self.inner
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(feature = "model")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before announcing the model release so
        // the next grantee finds it free.
        if self.inner.take().is_some() && self.modeled {
            model::unlock_point(self.mutex.id);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable paired with the facade [`Mutex`]. Waits never
/// report poisoning; under the model scheduler, waits park the thread
/// until a modeled notification arrives (spurious wakeups are not
/// modeled — callers must use recheck loops regardless).
pub struct Condvar {
    #[cfg(feature = "model")]
    id: u64,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub fn new() -> Self {
        Condvar {
            #[cfg(feature = "model")]
            id: model::new_object_id(),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard` and waits for a notification, then
    /// re-acquires the lock and returns the guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(feature = "model")]
        {
            let mut guard = guard;
            let real = guard.inner.take().expect("mutex guard already released");
            if guard.modeled && model::in_model() {
                // The model performs release-and-park atomically; mark
                // the guard unmodeled so an abort unwind does not
                // double-release at the model level.
                guard.modeled = false;
                drop(real);
                model::point(model::Op::CvWait {
                    cv: self.id,
                    mutex: guard.mutex.id,
                });
                let reacquired = guard
                    .mutex
                    .inner
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                guard.inner = Some(reacquired);
                guard.modeled = true;
                guard
            } else {
                let real = self
                    .inner
                    .wait(real)
                    .unwrap_or_else(PoisonError::into_inner);
                guard.inner = Some(real);
                guard
            }
        }
        #[cfg(not(feature = "model"))]
        {
            let MutexGuard { inner } = guard;
            MutexGuard {
                inner: self
                    .inner
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner),
            }
        }
    }

    /// Wakes one waiter (the lowest-numbered thread under the model, for
    /// determinism).
    pub fn notify_one(&self) {
        #[cfg(feature = "model")]
        if model::in_model() {
            model::point(model::Op::Notify {
                cv: self.id,
                all: false,
            });
        }
        self.inner.notify_one();
    }

    /// Wakes every current waiter.
    pub fn notify_all(&self) {
        #[cfg(feature = "model")]
        if model::in_model() {
            model::point(model::Op::Notify {
                cv: self.id,
                all: true,
            });
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! facade_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ty, $value:ty) => {
        $(#[$meta])*
        pub struct $name {
            #[cfg(feature = "model")]
            id: u64,
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic initialized to `value`.
            #[must_use]
            pub fn new(value: $value) -> Self {
                $name {
                    #[cfg(feature = "model")]
                    id: model::new_object_id(),
                    inner: <$std>::new(value),
                }
            }

            fn touch(&self, write: bool) {
                #[cfg(feature = "model")]
                model::atomic_point(self.id, write);
                let _ = write;
            }

            /// Loads the current value.
            pub fn load(&self, order: Ordering) -> $value {
                self.touch(false);
                self.inner.load(eff(order))
            }

            /// Stores `value`.
            pub fn store(&self, value: $value, order: Ordering) {
                self.touch(true);
                self.inner.store(value, eff(order));
            }

            /// Swaps in `value`, returning the previous value.
            pub fn swap(&self, value: $value, order: Ordering) -> $value {
                self.touch(true);
                self.inner.swap(value, eff(order))
            }

            /// Compare-and-exchange; `Ok(previous)` on success,
            /// `Err(actual)` on mismatch.
            pub fn compare_exchange(
                &self,
                current: $value,
                new: $value,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$value, $value> {
                self.touch(true);
                self.inner
                    .compare_exchange(current, new, eff(success), eff(failure))
            }

            /// Retrying read-modify-write via a closure; `Ok(previous)`
            /// once the closure's value is installed, `Err(previous)` if
            /// the closure returns `None`.
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                f: F,
            ) -> Result<$value, $value>
            where
                F: FnMut($value) -> Option<$value>,
            {
                self.touch(true);
                self.inner.fetch_update(eff(set_order), eff(fetch_order), f)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$value>::default())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.inner, f)
            }
        }
    };
}

macro_rules! facade_atomic_int {
    ($name:ident, $value:ty) => {
        impl $name {
            /// Adds `n`, wrapping; returns the previous value.
            pub fn fetch_add(&self, n: $value, order: Ordering) -> $value {
                self.touch(true);
                self.inner.fetch_add(n, eff(order))
            }

            /// Subtracts `n`, wrapping; returns the previous value.
            pub fn fetch_sub(&self, n: $value, order: Ordering) -> $value {
                self.touch(true);
                self.inner.fetch_sub(n, eff(order))
            }

            /// Stores the minimum of the current value and `n`; returns
            /// the previous value.
            pub fn fetch_min(&self, n: $value, order: Ordering) -> $value {
                self.touch(true);
                self.inner.fetch_min(n, eff(order))
            }

            /// Stores the maximum of the current value and `n`; returns
            /// the previous value.
            pub fn fetch_max(&self, n: $value, order: Ordering) -> $value {
                self.touch(true);
                self.inner.fetch_max(n, eff(order))
            }
        }
    };
}

facade_atomic!(
    /// Facade [`std::sync::atomic::AtomicBool`]; a scheduling point
    /// under the model.
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);
facade_atomic!(
    /// Facade [`std::sync::atomic::AtomicU64`]; a scheduling point under
    /// the model.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
facade_atomic!(
    /// Facade [`std::sync::atomic::AtomicUsize`]; a scheduling point
    /// under the model.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
facade_atomic_int!(AtomicU64, u64);
facade_atomic_int!(AtomicUsize, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0_u32));
        let m2 = Arc::clone(&m);
        let result = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("holder dies");
        });
        assert!(result.is_err());
        // A poisoning std mutex would panic here; the facade recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_round_trips_the_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let setter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        drop(ready);
        setter.join().unwrap();
    }

    #[test]
    fn atomics_expose_the_std_surface() {
        let n = AtomicU64::new(5);
        assert_eq!(n.fetch_add(3, Ordering::SeqCst), 5);
        assert_eq!(n.fetch_min(2, Ordering::SeqCst), 8);
        assert_eq!(n.swap(9, Ordering::SeqCst), 2);
        assert_eq!(
            n.compare_exchange(9, 1, Ordering::SeqCst, Ordering::SeqCst),
            Ok(9)
        );
        assert_eq!(
            n.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| Some(v + 1)),
            Ok(1)
        );
        assert_eq!(n.load(Ordering::SeqCst), 2);
        let b = AtomicBool::default();
        assert!(!b.swap(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));
    }
}
