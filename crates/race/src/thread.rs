//! Drop-in facade over `std::thread`.
//!
//! Mirrors the slice of `std::thread` the workspace uses — [`spawn`],
//! [`spawn_named`] (replacing `Builder::new().name(..).spawn(..)`),
//! [`scope`], [`yield_now`], [`sleep`] — and registers every spawned
//! thread with the deterministic scheduler when a model run is active.
//! Under the model, `sleep` is a plain scheduling point (yield): model
//! executions have no wall clock, so durations are meaningless there.
//!
//! Scoped threads spawned through the facade [`Scope`] are joined at
//! model level *before* `std::thread::scope`'s implicit join, so the
//! scheduler always knows who is waiting on whom and a blocked scope
//! shows up as a modeled deadlock instead of a hung test.

use std::time::Duration;

#[cfg(feature = "model")]
use crate::model;
#[cfg(feature = "model")]
use std::sync::{Arc, Mutex, PoisonError};

/// Handle for joining a thread spawned via [`spawn`] / [`spawn_named`].
pub struct JoinHandle<T> {
    #[cfg(not(feature = "model"))]
    inner: std::thread::JoinHandle<T>,
    #[cfg(feature = "model")]
    inner: std::thread::JoinHandle<Option<T>>,
    #[cfg(feature = "model")]
    target: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside a
    /// model run the join is a scheduling point, enabled only once the
    /// target thread has finished.
    pub fn join(self) -> std::thread::Result<T> {
        #[cfg(feature = "model")]
        {
            if let Some(tid) = self.target {
                if model::in_model() {
                    model::point(model::Op::Join(tid));
                }
            }
            match self.inner.join() {
                Ok(Some(value)) => Ok(value),
                // The child was torn down by an aborted model run;
                // unwind the joiner the same way.
                Ok(None) => model::abort_now(),
                Err(e) => Err(e),
            }
        }
        #[cfg(not(feature = "model"))]
        {
            self.inner.join()
        }
    }

    /// Whether the thread has finished running.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle")
    }
}

/// Spawns a thread, registering it with the model scheduler when a
/// model run is active on the calling thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    #[cfg(feature = "model")]
    {
        if model::in_model() {
            let (exec, tid) = model::register_child();
            let inner = std::thread::spawn(move || model::run_child(exec, tid, f));
            return JoinHandle {
                inner,
                target: Some(tid),
            };
        }
        JoinHandle {
            inner: std::thread::spawn(move || Some(f())),
            target: None,
        }
    }
    #[cfg(not(feature = "model"))]
    JoinHandle {
        inner: std::thread::spawn(f),
    }
}

/// Spawns a named thread (the facade's replacement for
/// `std::thread::Builder::new().name(..).spawn(..)`).
pub fn spawn_named<F, T>(name: impl Into<String>, f: F) -> std::io::Result<JoinHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let builder = std::thread::Builder::new().name(name.into());
    #[cfg(feature = "model")]
    {
        if model::in_model() {
            let (exec, tid) = model::register_child();
            let exec_rollback = exec.clone();
            return match builder.spawn(move || model::run_child(exec, tid, f)) {
                Ok(inner) => Ok(JoinHandle {
                    inner,
                    target: Some(tid),
                }),
                Err(e) => {
                    model::unregister_child(&exec_rollback, tid);
                    Err(e)
                }
            };
        }
        builder.spawn(move || Some(f())).map(|inner| JoinHandle {
            inner,
            target: None,
        })
    }
    #[cfg(not(feature = "model"))]
    builder.spawn(f).map(|inner| JoinHandle { inner })
}

/// Yields the processor; a pure scheduling point under the model.
pub fn yield_now() {
    #[cfg(feature = "model")]
    if model::in_model() {
        model::point(model::Op::Yield);
        return;
    }
    std::thread::yield_now();
}

/// Sleeps for `duration`; under the model this is a scheduling point
/// with no time semantics (model runs have no clock).
pub fn sleep(duration: Duration) {
    #[cfg(feature = "model")]
    if model::in_model() {
        model::point(model::Op::Yield);
        return;
    }
    std::thread::sleep(duration);
}

/// Facade scope: like [`std::thread::scope`], with model registration
/// of every spawned thread.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|inner| {
        let wrapper = Scope {
            inner,
            #[cfg(feature = "model")]
            pending: Arc::new(Mutex::new(Vec::new())),
        };
        let out = f(&wrapper);
        #[cfg(feature = "model")]
        wrapper.join_pending();
        out
    })
}

/// Scope handle passed to the closure of [`scope`].
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    /// Model thread ids spawned in this scope and not yet joined
    /// explicitly; joined at model level before the scope exits.
    #[cfg(feature = "model")]
    pending: Arc<Mutex<Vec<usize>>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; see [`std::thread::Scope::spawn`].
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        #[cfg(feature = "model")]
        {
            if model::in_model() {
                let (exec, tid) = model::register_child();
                let inner = self.inner.spawn(move || model::run_child(exec, tid, f));
                self.pending
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(tid);
                return ScopedJoinHandle {
                    inner,
                    target: Some(tid),
                    pending: Some(Arc::clone(&self.pending)),
                };
            }
            ScopedJoinHandle {
                inner: self.inner.spawn(move || Some(f())),
                target: None,
                pending: None,
            }
        }
        #[cfg(not(feature = "model"))]
        ScopedJoinHandle {
            inner: self.inner.spawn(f),
        }
    }

    /// Model-joins every still-pending scoped thread so the implicit
    /// std join at scope exit cannot block outside the scheduler.
    #[cfg(feature = "model")]
    fn join_pending(&self) {
        if !model::in_model() {
            return;
        }
        let tids: Vec<usize> = self
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for tid in tids {
            model::point(model::Op::Join(tid));
        }
    }
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Scope")
    }
}

/// Handle for joining a scoped thread spawned via [`Scope::spawn`].
pub struct ScopedJoinHandle<'scope, T> {
    #[cfg(not(feature = "model"))]
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    #[cfg(feature = "model")]
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    #[cfg(feature = "model")]
    target: Option<usize>,
    #[cfg(feature = "model")]
    pending: Option<Arc<Mutex<Vec<usize>>>>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the scoped thread to finish and returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        #[cfg(feature = "model")]
        {
            if let Some(tid) = self.target {
                if model::in_model() {
                    if let Some(pending) = &self.pending {
                        pending
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .retain(|&t| t != tid);
                    }
                    model::point(model::Op::Join(tid));
                }
            }
            match self.inner.join() {
                Ok(Some(value)) => Ok(value),
                Ok(None) => model::abort_now(),
                Err(e) => Err(e),
            }
        }
        #[cfg(not(feature = "model"))]
        {
            self.inner.join()
        }
    }

    /// Whether the scoped thread has finished running.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

impl<T> std::fmt::Debug for ScopedJoinHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ScopedJoinHandle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_join_round_trip() {
        let h = spawn(|| 21 * 2);
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn spawn_named_names_the_thread() {
        let h = spawn_named("race-test-worker", || {
            std::thread::current().name().map(str::to_owned)
        })
        .unwrap();
        assert_eq!(h.join().unwrap().as_deref(), Some("race-test-worker"));
    }

    #[test]
    fn scoped_spawn_borrows_locals() {
        let mut values = vec![1_u64, 2, 3];
        let total = scope(|s| {
            let h = s.spawn(|| values.iter().sum::<u64>());
            h.join().unwrap()
        });
        assert_eq!(total, 6);
        values.push(4);
        yield_now();
        sleep(Duration::from_millis(1));
    }
}
