//! A private SplitMix64 for seeded random schedule exploration.
//!
//! The workspace convention is SplitMix64 everywhere randomness is needed
//! (`scanft_fsm::rng` is the canonical copy); this crate carries its own
//! minimal clone because it is dependency-free by policy — pulling in
//! `scanft-fsm` just for a 10-line generator would put the whole FSM
//! layer underneath the sync facade.

/// SplitMix64: tiny, fast, and plenty for schedule shuffling.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub(crate) fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is irrelevant for scheduling.
        let wide = u128::from(self.next_u64()) * bound as u128;
        (wide >> 64) as usize
    }
}
