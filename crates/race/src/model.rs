//! The deterministic virtual scheduler (`model` feature).
//!
//! # How a model run works
//!
//! [`check`] executes the test closure repeatedly on **real OS threads**
//! that are serialized by a host lock: at every facade operation (lock,
//! unlock, condvar wait/notify, atomic access, spawn/join/yield) the
//! thread *announces* its pending operation and parks; a scheduler picks
//! which announced operation applies next. Because exactly one thread
//! runs between scheduling points, the interleaving is fully determined
//! by the sequence of choices — the [`ScheduleTrace`].
//!
//! Exploration is bounded-exhaustive DFS over those choices with
//! sleep-set (DPOR-lite) pruning, followed by SplitMix64-seeded random
//! schedules. Enabledness is modeled precisely: a `lock` is only
//! schedulable while the mutex is free, a condvar re-acquire only after a
//! notification, a `join` only after the target finished. If every
//! unfinished thread is blocked the run is a deadlock — which is exactly
//! what a missed condvar wakeup looks like — and the checker reports it
//! with the trace that got there. Panics inside the closure (failed
//! assertions, torn-read detections) are caught and reported the same
//! way. [`replay`] re-runs a single recorded trace, so counterexamples
//! reproduce deterministically.
//!
//! Atomics are modeled as sequentially consistent; the workspace's
//! ordering *policy* is enforced by the `race_lint` source pass, not
//! here. Spurious condvar wakeups are not modeled (workspace code must
//! tolerate them anyway via recheck loops, but the model only explores
//! notified wakeups). Both choices shrink the schedule space without
//! hiding the bug classes this crate exists to catch.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};

use crate::rng::SplitMix64;
use crate::trace::ScheduleTrace;

// ---------------------------------------------------------------------------
// Public configuration and results
// ---------------------------------------------------------------------------

/// Exploration bounds for [`check_named`].
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Maximum number of runs (explored + pruned) in the DFS phase.
    pub max_schedules: usize,
    /// Maximum scheduling decisions in a single run before the run is
    /// failed as a livelock.
    pub max_steps: usize,
    /// Number of seeded random schedules executed after the DFS phase
    /// (skipped when DFS already explored the full space or failed).
    pub random_runs: usize,
    /// Seed for the random phase.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            max_schedules: 2000,
            max_steps: 20_000,
            random_runs: 64,
            seed: 0x5eed_5eed_5eed_5eed,
        }
    }
}

/// Outcome of a [`check_named`] exploration.
#[derive(Debug)]
pub struct Report {
    /// Completed (non-pruned) schedules executed across both phases.
    pub schedules: usize,
    /// Runs cut short by sleep-set pruning (their interleaving class was
    /// already covered by an explored schedule).
    pub pruned: usize,
    /// Whether the DFS phase exhausted the entire schedule space within
    /// `max_schedules`.
    pub complete: bool,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics with the failure message if any schedule failed. Handy in
    /// tests that expect a clean exploration.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!("model check failed: {f}");
        }
    }
}

/// A failing schedule: what went wrong and the trace to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Human-readable description (deadlock report or panic message).
    pub message: String,
    /// The schedule that produced the failure; feed to [`replay`].
    pub trace: ScheduleTrace,
    /// Whether the failure is a deadlock (all unfinished threads
    /// blocked) as opposed to a panic.
    pub deadlock: bool,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [schedule: {}]", self.message, self.trace)
    }
}

// ---------------------------------------------------------------------------
// Thread-local execution context
// ---------------------------------------------------------------------------

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct Ctx {
    exec: Arc<Execution>,
    tid: usize,
}

/// Whether the current thread is executing inside a model run. The
/// facade probes this on every operation to decide between the scheduler
/// path and the plain std path.
#[must_use]
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Clears the context on drop so a panicking run cannot leak model state
/// into later code on the host thread.
struct CtxGuard;

impl CtxGuard {
    fn set(exec: Arc<Execution>, tid: usize) -> CtxGuard {
        CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec, tid }));
        CtxGuard
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = None);
    }
}

/// Fresh id for a facade object (mutex, condvar, atomic). Ids are
/// process-global so objects created outside a run keep a stable
/// identity across runs (e.g. the global metrics registry).
pub(crate) fn new_object_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Panic payload used to unwind model threads when a run is torn down.
/// Swallowed by the panic hook and the run driver; never user-visible.
pub(crate) struct ModelAbort;

fn abort_panic() -> ! {
    std::panic::panic_any(ModelAbort)
}

/// Unwinds the current thread out of an aborted run. Used by facade
/// paths that discover mid-operation that the run is over.
pub(crate) fn abort_now() -> ! {
    abort_panic()
}

fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Panics on model threads are part of exploration (aborts,
            // seeded assertion failures explored thousands of times);
            // recording happens via catch_unwind, so stay quiet.
            if in_model() {
                return;
            }
            previous(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// Operations and their footprints
// ---------------------------------------------------------------------------

/// A synchronization operation announced at a scheduling point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Op {
    /// First schedulable moment of a spawned thread.
    Start,
    /// Voluntary reschedule (`yield_now`, modeled `sleep`).
    Yield,
    /// Acquire a mutex; enabled only while it is free.
    Lock(u64),
    /// Release a mutex; always enabled.
    Unlock(u64),
    /// Atomically release the mutex and park on the condvar. Applying
    /// this leaves the thread parked with a pending [`Op::CvWake`].
    CvWait {
        /// Condvar being waited on.
        cv: u64,
        /// Mutex released for the duration of the wait.
        mutex: u64,
    },
    /// Wake from a condvar wait; enabled once notified and the mutex is
    /// free (the re-acquire is folded in, mirroring std semantics).
    CvWake {
        /// Condvar waited on.
        cv: u64,
        /// Mutex re-acquired on wake.
        mutex: u64,
    },
    /// `notify_one` / `notify_all`.
    Notify {
        /// Condvar notified.
        cv: u64,
        /// Whether every current waiter is notified (`notify_all`).
        all: bool,
    },
    /// An atomic access; `write` covers stores and RMWs.
    Atomic {
        /// Object id of the atomic.
        id: u64,
        /// Whether the access can change the value.
        write: bool,
    },
    /// Wait for a thread to finish; enabled once it has.
    Join(usize),
    /// Thread termination.
    Finish,
}

/// Object touched by an op, for the independence relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Obj {
    Sync(u64),
    Thread(usize),
}

fn footprint(op: &Op, owner: usize, out: &mut Vec<(Obj, bool)>) {
    out.clear();
    match op {
        Op::Start | Op::Yield => {}
        Op::Lock(m) | Op::Unlock(m) => out.push((Obj::Sync(*m), true)),
        Op::CvWait { cv, mutex } | Op::CvWake { cv, mutex } => {
            out.push((Obj::Sync(*cv), true));
            out.push((Obj::Sync(*mutex), true));
        }
        Op::Notify { cv, .. } => out.push((Obj::Sync(*cv), true)),
        Op::Atomic { id, write } => out.push((Obj::Sync(*id), *write)),
        Op::Join(t) => out.push((Obj::Thread(*t), false)),
        Op::Finish => out.push((Obj::Thread(owner), true)),
    }
}

/// Two ops conflict (are dependent) if they touch a common object and at
/// least one access is a write. Conservative: anything unclear counts as
/// a conflict, which only costs pruning power, never soundness.
fn conflicts(a: &Op, a_owner: usize, b: &Op, b_owner: usize) -> bool {
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    footprint(a, a_owner, &mut fa);
    footprint(b, b_owner, &mut fb);
    for (oa, wa) in &fa {
        for (ob, wb) in &fb {
            if oa == ob && (*wa || *wb) {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ThreadRec {
    pending: Option<Op>,
    finished: bool,
}

#[derive(Debug, Default)]
struct CvState {
    /// Parked waiters not yet notified, in park order.
    waiters: Vec<usize>,
    /// Notified waiters allowed to wake (once their mutex frees up).
    notified: BTreeSet<usize>,
}

/// One DFS decision point, persisted across runs.
#[derive(Debug)]
struct Decision {
    /// Enabled threads at this point, ascending tid order.
    candidates: Vec<usize>,
    /// Sleep set: entry sleepers plus already-explored siblings.
    sleep: BTreeSet<usize>,
    /// Currently explored choice.
    chosen: usize,
    /// The op `chosen` performed here (refreshed on each replay; used
    /// for sleep-set propagation into child nodes).
    chosen_op: Option<Op>,
}

enum Mode {
    Dfs,
    Random,
    Replay(Vec<usize>),
}

struct ExecState {
    threads: Vec<ThreadRec>,
    /// The thread allowed to run user code right now; `None` during a
    /// scheduling decision.
    current: Option<usize>,
    mode: Mode,
    /// Persistent DFS stack (survives across runs; prefix is replayed).
    path: Vec<Decision>,
    rng: SplitMix64,
    trace: Vec<usize>,
    steps: usize,
    max_steps: usize,
    mutexes: HashMap<u64, Option<usize>>,
    condvars: HashMap<u64, CvState>,
    /// Per-run display names for objects: global id -> index in order of
    /// first announcement, so diagnostics are stable across replays.
    names: HashMap<u64, usize>,
    /// Child OS threads not yet exited (run teardown waits for zero).
    live_os: usize,
    aborted: bool,
    pruned_run: bool,
    run_done: bool,
    failure: Option<String>,
    deadlock: bool,
}

enum Applied {
    /// Thread keeps running user code.
    Continue,
    /// Thread parked itself (condvar wait); wait to be chosen again.
    Rewait,
    /// Thread finished; leave the scheduler.
    Finished,
}

enum RunOutcome {
    Ok,
    Pruned,
    Failed(Failure),
}

struct Execution {
    state: Mutex<ExecState>,
    cond: Condvar,
}

fn lock_state(m: &Mutex<ExecState>) -> MutexGuard<'_, ExecState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Execution {
    fn new(cfg: &ModelConfig) -> Arc<Execution> {
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                current: None,
                mode: Mode::Dfs,
                path: Vec::new(),
                rng: SplitMix64::new(cfg.seed),
                trace: Vec::new(),
                steps: 0,
                max_steps: cfg.max_steps,
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                names: HashMap::new(),
                live_os: 0,
                aborted: false,
                pruned_run: false,
                run_done: false,
                failure: None,
                deadlock: false,
            }),
            cond: Condvar::new(),
        })
    }

    fn reset_for_run(&self, mode: Mode) {
        let mut st = lock_state(&self.state);
        debug_assert_eq!(st.live_os, 0, "previous run left live threads");
        st.threads.clear();
        st.threads.push(ThreadRec {
            pending: None,
            finished: false,
        });
        st.current = Some(0);
        st.mode = mode;
        st.trace.clear();
        st.steps = 0;
        st.mutexes.clear();
        st.condvars.clear();
        st.names.clear();
        st.aborted = false;
        st.pruned_run = false;
        st.run_done = false;
        st.failure = None;
        st.deadlock = false;
    }

    fn feasible(st: &ExecState, tid: usize) -> bool {
        match &st.threads[tid].pending {
            None => false,
            Some(op) => match op {
                Op::Start
                | Op::Yield
                | Op::Unlock(_)
                | Op::CvWait { .. }
                | Op::Notify { .. }
                | Op::Atomic { .. }
                | Op::Finish => true,
                Op::Lock(m) => st.mutexes.get(m).copied().flatten().is_none(),
                Op::CvWake { cv, mutex } => {
                    let notified = st
                        .condvars
                        .get(cv)
                        .is_some_and(|c| c.notified.contains(&tid));
                    notified && st.mutexes.get(mutex).copied().flatten().is_none()
                }
                Op::Join(t) => st.threads[*t].finished,
            },
        }
    }

    fn describe_blocked(st: &ExecState) -> String {
        let name = |id: &u64| st.names.get(id).copied().unwrap_or(usize::MAX);
        let mut parts = Vec::new();
        for (tid, rec) in st.threads.iter().enumerate() {
            if rec.finished {
                continue;
            }
            let what = match &rec.pending {
                Some(Op::Lock(m)) => format!("blocked locking mutex#{}", name(m)),
                Some(Op::CvWake { cv, .. }) => format!(
                    "waiting on condvar#{} with no pending notification",
                    name(cv)
                ),
                Some(Op::Join(t)) => format!("joining thread {t}"),
                Some(op) => format!("blocked at {op:?}"),
                None => "running".to_owned(),
            };
            parts.push(format!("thread {tid} {what}"));
        }
        parts.join("; ")
    }

    /// Assigns per-run display indices to the objects an op touches, in
    /// first-announcement order (deterministic for a given schedule).
    fn name_objects(st: &mut ExecState, op: &Op, owner: usize) {
        let mut fp = Vec::new();
        footprint(op, owner, &mut fp);
        for (obj, _) in fp {
            if let Obj::Sync(id) = obj {
                if !st.names.contains_key(&id) {
                    let next = st.names.len();
                    st.names.insert(id, next);
                }
            }
        }
    }

    fn fail(&self, st: &mut ExecState, message: String, deadlock: bool) {
        if st.failure.is_none() {
            st.failure = Some(message);
            st.deadlock = deadlock;
        }
        st.aborted = true;
        self.cond.notify_all();
    }

    /// Picks the next thread to run. Called with `current == None` by
    /// the thread that just announced or parked.
    fn schedule(&self, st: &mut ExecState) {
        if st.aborted || st.run_done {
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let msg = format!("exceeded max_steps ({}): possible livelock", st.max_steps);
            self.fail(st, msg, false);
            return;
        }
        if st.threads.iter().all(|t| t.finished) {
            st.run_done = true;
            self.cond.notify_all();
            return;
        }
        let candidates: Vec<usize> = (0..st.threads.len())
            .filter(|&t| !st.threads[t].finished && Self::feasible(st, t))
            .collect();
        if candidates.is_empty() {
            let msg = format!("deadlock: {}", Self::describe_blocked(st));
            self.fail(st, msg, true);
            return;
        }
        let depth = st.trace.len();
        // Take `mode` out so its borrow does not pin the whole state
        // while we read/write other fields.
        let mut mode = std::mem::replace(&mut st.mode, Mode::Dfs);
        let chosen = match &mut mode {
            Mode::Replay(choices) => {
                if depth < choices.len() {
                    let c = choices[depth];
                    if candidates.contains(&c) {
                        Some(c)
                    } else {
                        let msg = format!(
                            "replay diverged at step {depth}: thread {c} not \
                             schedulable (candidates {candidates:?})"
                        );
                        self.fail(st, msg, false);
                        None
                    }
                } else {
                    Some(candidates[0])
                }
            }
            Mode::Random => {
                let i = st.rng.next_below(candidates.len());
                Some(candidates[i])
            }
            Mode::Dfs => {
                if depth < st.path.len() {
                    let c = st.path[depth].chosen;
                    if candidates.contains(&c) {
                        let op = st.threads[c].pending.clone();
                        st.path[depth].chosen_op = op;
                        Some(c)
                    } else {
                        let msg = format!(
                            "nondeterministic execution: DFS prefix chose thread \
                             {c} at step {depth} but candidates are {candidates:?}"
                        );
                        self.fail(st, msg, false);
                        None
                    }
                } else {
                    let sleep = Self::entry_sleep(st, depth);
                    match candidates.iter().copied().find(|t| !sleep.contains(t)) {
                        None => {
                            // Every enabled thread is asleep: this run's
                            // continuation is equivalent to one already
                            // explored. Tear the run down as "pruned".
                            st.pruned_run = true;
                            st.aborted = true;
                            self.cond.notify_all();
                            None
                        }
                        Some(c) => {
                            let chosen_op = st.threads[c].pending.clone();
                            st.path.push(Decision {
                                candidates: candidates.clone(),
                                sleep,
                                chosen: c,
                                chosen_op,
                            });
                            Some(c)
                        }
                    }
                }
            }
        };
        st.mode = mode;
        let Some(chosen) = chosen else { return };
        st.trace.push(chosen);
        st.current = Some(chosen);
        self.cond.notify_all();
    }

    /// Sleep set for a fresh decision node: the parent's sleepers whose
    /// pending ops are independent of what the parent's chosen thread
    /// just did (classic sleep-set propagation).
    fn entry_sleep(st: &ExecState, depth: usize) -> BTreeSet<usize> {
        let mut sleep = BTreeSet::new();
        if depth == 0 {
            return sleep;
        }
        let parent = &st.path[depth - 1];
        let Some(parent_op) = &parent.chosen_op else {
            return sleep;
        };
        for &s in &parent.sleep {
            if s == parent.chosen || s >= st.threads.len() || st.threads[s].finished {
                continue;
            }
            if let Some(op) = &st.threads[s].pending {
                if !conflicts(op, s, parent_op, parent.chosen) {
                    sleep.insert(s);
                }
            }
        }
        sleep
    }

    /// Applies a granted op's effect on the model state.
    fn apply(&self, st: &mut ExecState, tid: usize, op: Op) -> Applied {
        match op {
            Op::Start | Op::Yield | Op::Join(_) | Op::Atomic { .. } => Applied::Continue,
            Op::Lock(m) => {
                let slot = st.mutexes.entry(m).or_insert(None);
                debug_assert!(slot.is_none(), "lock granted while held");
                *slot = Some(tid);
                Applied::Continue
            }
            Op::Unlock(m) => {
                st.mutexes.insert(m, None);
                Applied::Continue
            }
            Op::CvWait { cv, mutex } => {
                st.condvars.entry(cv).or_default().waiters.push(tid);
                st.mutexes.insert(mutex, None);
                st.threads[tid].pending = Some(Op::CvWake { cv, mutex });
                Applied::Rewait
            }
            Op::CvWake { cv, mutex } => {
                st.condvars.entry(cv).or_default().notified.remove(&tid);
                st.mutexes.insert(mutex, Some(tid));
                Applied::Continue
            }
            Op::Notify { cv, all } => {
                let state = st.condvars.entry(cv).or_default();
                if all {
                    for w in state.waiters.drain(..) {
                        state.notified.insert(w);
                    }
                } else if let Some((i, _)) =
                    state.waiters.iter().enumerate().min_by_key(|(_, &w)| w)
                {
                    let w = state.waiters.remove(i);
                    state.notified.insert(w);
                }
                Applied::Continue
            }
            Op::Finish => {
                st.threads[tid].finished = true;
                Applied::Finished
            }
        }
    }

    /// Announce `op`, wait to be chosen, apply. The heart of the
    /// scheduler protocol; every facade operation funnels through here.
    fn point(&self, tid: usize, op: Op) {
        let mut st = lock_state(&self.state);
        if st.aborted {
            drop(st);
            abort_panic();
        }
        Self::name_objects(&mut st, &op, tid);
        st.threads[tid].pending = Some(op);
        if st.current == Some(tid) {
            st.current = None;
            self.schedule(&mut st);
        }
        self.wait_and_apply(st, tid);
    }

    /// Entry point for freshly spawned threads whose `Start` op was
    /// announced by the parent at registration time.
    fn start_point(&self, tid: usize) {
        let st = lock_state(&self.state);
        self.wait_and_apply(st, tid);
    }

    fn wait_and_apply(&self, mut st: MutexGuard<'_, ExecState>, tid: usize) {
        loop {
            while st.current != Some(tid) && !st.aborted {
                st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            if st.aborted {
                drop(st);
                abort_panic();
            }
            let op = st.threads[tid]
                .pending
                .take()
                .expect("scheduled thread has no pending op");
            match self.apply(&mut st, tid, op) {
                Applied::Continue => return,
                Applied::Rewait => {
                    st.current = None;
                    self.schedule(&mut st);
                    if st.aborted {
                        drop(st);
                        abort_panic();
                    }
                }
                Applied::Finished => {
                    st.current = None;
                    self.schedule(&mut st);
                    return;
                }
            }
        }
    }

    /// Releases a model mutex during unwind without a scheduling point
    /// (the run is being torn down, or the holder is panicking).
    fn force_unlock(&self, id: u64) {
        let mut st = lock_state(&self.state);
        st.mutexes.insert(id, None);
    }

    /// Registers a child thread; the parent is the running thread, so no
    /// scheduling can happen concurrently.
    fn register_child(&self) -> usize {
        let mut st = lock_state(&self.state);
        if st.aborted {
            drop(st);
            abort_panic();
        }
        let tid = st.threads.len();
        st.threads.push(ThreadRec {
            pending: Some(Op::Start),
            finished: false,
        });
        st.live_os += 1;
        tid
    }

    /// Rolls back a registration whose OS spawn failed.
    fn unregister_child(&self, tid: usize) {
        let mut st = lock_state(&self.state);
        st.threads[tid].pending = None;
        st.threads[tid].finished = true;
        st.live_os -= 1;
        self.cond.notify_all();
    }

    fn child_exited(&self) {
        let mut st = lock_state(&self.state);
        st.live_os -= 1;
        self.cond.notify_all();
    }

    /// Records a (non-abort) panic from thread `tid` as the failure.
    fn fail_from_panic(&self, tid: usize, payload: &(dyn std::any::Any + Send)) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_owned());
        let mut st = lock_state(&self.state);
        st.threads[tid].pending = None;
        st.threads[tid].finished = true;
        self.fail(&mut st, format!("panic in thread {tid}: {msg}"), false);
    }

    /// Host-side: wait for the run to finish scheduling and for every
    /// child OS thread to exit, then harvest the outcome.
    fn finish_run(&self) -> RunOutcome {
        let mut st = lock_state(&self.state);
        while !(st.run_done || st.aborted) {
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        while st.live_os > 0 {
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(message) = st.failure.take() {
            RunOutcome::Failed(Failure {
                message,
                trace: ScheduleTrace::new(st.trace.clone()),
                deadlock: st.deadlock,
            })
        } else if st.pruned_run {
            RunOutcome::Pruned
        } else {
            RunOutcome::Ok
        }
    }

    /// Advances the DFS stack to the next unexplored branch. Returns
    /// false when the whole space has been explored.
    fn backtrack(&self) -> bool {
        let mut st = lock_state(&self.state);
        loop {
            let Some(last) = st.path.last_mut() else {
                return false;
            };
            let prev = last.chosen;
            last.sleep.insert(prev);
            let next = last
                .candidates
                .iter()
                .copied()
                .find(|c| !last.sleep.contains(c));
            match next {
                Some(c) => {
                    last.chosen = c;
                    last.chosen_op = None;
                    return true;
                }
                None => {
                    st.path.pop();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Facade entry points (crate-internal)
// ---------------------------------------------------------------------------

/// Scheduling point for the current model thread; no-op outside a run.
pub(crate) fn point(op: Op) {
    if let Some(ctx) = current_ctx() {
        ctx.exec.point(ctx.tid, op);
    }
}

/// Atomic access scheduling point; no-op outside a run.
pub(crate) fn atomic_point(id: u64, write: bool) {
    if let Some(ctx) = current_ctx() {
        ctx.exec.point(ctx.tid, Op::Atomic { id, write });
    }
}

/// Mutex release from a guard `Drop`. Uses a full scheduling point on
/// the normal path, but during a panic unwind (quarantined chaos panics,
/// run teardown) it must not panic again, so it force-releases instead.
pub(crate) fn unlock_point(id: u64) {
    let Some(ctx) = current_ctx() else { return };
    if std::thread::panicking() {
        ctx.exec.force_unlock(id);
        return;
    }
    {
        let st = lock_state(&ctx.exec.state);
        if st.aborted {
            ctx.exec.force_unlock(id);
            return;
        }
    }
    ctx.exec.point(ctx.tid, Op::Unlock(id));
}

/// Registers a child thread with the active execution (the facade then
/// performs the real OS spawn). Returns the handle pieces the facade
/// needs: the execution and the child's thread id.
pub(crate) fn register_child() -> (Execution2, usize) {
    let ctx = current_ctx().expect("register_child outside a model run");
    let tid = ctx.exec.register_child();
    (Execution2(Arc::clone(&ctx.exec)), tid)
}

/// Opaque execution handle passed back into [`run_child`] by the facade.
pub(crate) struct Execution2(Arc<Execution>);

impl Clone for Execution2 {
    fn clone(&self) -> Self {
        Execution2(Arc::clone(&self.0))
    }
}

impl fmt::Debug for Execution2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Execution")
    }
}

/// Rolls back [`register_child`] when the OS-level spawn failed.
pub(crate) fn unregister_child(exec: &Execution2, tid: usize) {
    exec.0.unregister_child(tid);
}

/// Body of a model-managed child thread: installs the context, waits for
/// its `Start` to be scheduled, runs the closure, and reports panics to
/// the scheduler. Returns `None` when the run was aborted under it.
pub(crate) fn run_child<F, T>(exec: Execution2, tid: usize, f: F) -> Option<T>
where
    F: FnOnce() -> T,
{
    let _ctx = CtxGuard::set(Arc::clone(&exec.0), tid);
    let result = catch_unwind(AssertUnwindSafe(|| {
        exec.0.start_point(tid);
        let value = f();
        exec.0.point(tid, Op::Finish);
        value
    }));
    let out = match result {
        Ok(value) => Some(value),
        Err(payload) => {
            if !payload.is::<ModelAbort>() {
                exec.0.fail_from_panic(tid, payload.as_ref());
            }
            None
        }
    };
    exec.0.child_exited();
    out
}

// ---------------------------------------------------------------------------
// Check / replay drivers
// ---------------------------------------------------------------------------

fn run_once<F: Fn()>(exec: &Arc<Execution>, mode: Mode, body: &F) -> RunOutcome {
    exec.reset_for_run(mode);
    {
        let _ctx = CtxGuard::set(Arc::clone(exec), 0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            body();
            exec.point(0, Op::Finish);
        }));
        if let Err(payload) = result {
            if !payload.is::<ModelAbort>() {
                exec.fail_from_panic(0, payload.as_ref());
            }
        }
    }
    exec.finish_run()
}

/// Explores the schedules of `body` with default bounds. See
/// [`check_named`].
pub fn check<F: Fn()>(body: F) -> Report {
    check_named("model", &ModelConfig::default(), body)
}

/// Explores the schedules of `body`: bounded-exhaustive DFS with
/// sleep-set pruning, then `random_runs` seeded random schedules.
/// Stops at the first failing schedule. When `SCANFT_RACE_TRACE_DIR` is
/// set, the counterexample trace is written to
/// `<dir>/<name>.trace` for post-mortems and replay.
///
/// `body` runs many times and must be deterministic apart from
/// scheduling: derive all randomness from fixed seeds and keep wall
/// clocks out of control flow.
pub fn check_named<F: Fn()>(name: &str, cfg: &ModelConfig, body: F) -> Report {
    install_quiet_panic_hook();
    let exec = Execution::new(cfg);
    let mut report = Report {
        schedules: 0,
        pruned: 0,
        complete: false,
        failure: None,
    };
    while report.schedules + report.pruned < cfg.max_schedules {
        match run_once(&exec, Mode::Dfs, &body) {
            RunOutcome::Ok => report.schedules += 1,
            RunOutcome::Pruned => report.pruned += 1,
            RunOutcome::Failed(f) => {
                report.schedules += 1;
                report.failure = Some(f);
                break;
            }
        }
        if !exec.backtrack() {
            report.complete = true;
            break;
        }
    }
    if report.failure.is_none() && !report.complete {
        for _ in 0..cfg.random_runs {
            match run_once(&exec, Mode::Random, &body) {
                RunOutcome::Ok | RunOutcome::Pruned => report.schedules += 1,
                RunOutcome::Failed(f) => {
                    report.schedules += 1;
                    report.failure = Some(f);
                    break;
                }
            }
        }
    }
    if let Some(f) = &report.failure {
        dump_trace(name, f);
    }
    report
}

/// Re-executes a single recorded schedule. The returned report has
/// `schedules == 1` and carries the reproduced failure, if any. Choices
/// beyond the end of the trace fall back to the lowest schedulable
/// thread, so a prefix is enough to steer execution to the bug.
pub fn replay<F: Fn()>(trace: &ScheduleTrace, body: F) -> Report {
    install_quiet_panic_hook();
    let cfg = ModelConfig::default();
    let exec = Execution::new(&cfg);
    let outcome = run_once(&exec, Mode::Replay(trace.choices.clone()), &body);
    Report {
        schedules: 1,
        pruned: 0,
        complete: false,
        failure: match outcome {
            RunOutcome::Failed(f) => Some(f),
            RunOutcome::Ok | RunOutcome::Pruned => None,
        },
    }
}

fn dump_trace(name: &str, failure: &Failure) {
    let Ok(dir) = std::env::var("SCANFT_RACE_TRACE_DIR") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let slug: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let _ = std::fs::create_dir_all(&dir);
    let mut text = format!("# scanft-race counterexample: {name}\n");
    for line in failure.message.lines() {
        text.push_str("# ");
        text.push_str(line);
        text.push('\n');
    }
    text.push_str(&failure.trace.to_string());
    text.push('\n');
    let _ = std::fs::write(format!("{dir}/{slug}.trace"), text);
}
