//! Replayable schedule traces.
//!
//! A trace is the complete record of one explored schedule: the thread id
//! chosen at every scheduling decision, in order. Feeding the same trace
//! back through `crate::model::replay` (with the same test body)
//! re-executes exactly the same interleaving, so a counterexample found
//! once reproduces forever — the trace is to a schedule what the
//! optimizer's certificate is to a rewrite.
//!
//! The on-disk format (written to `SCANFT_RACE_TRACE_DIR` on failure) is
//! line-oriented: `#`-prefixed comment lines carrying the test name and
//! failure message, then one line of whitespace-separated thread ids.
//! [`ScheduleTrace::parse`] ignores comments, so a dumped file round-trips
//! through parse unchanged.

use std::fmt;

/// The sequence of scheduling choices (thread ids) of one execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleTrace {
    /// Thread id chosen at each scheduling decision, in order. Thread 0
    /// is always the closure passed to `check` itself; spawned threads
    /// are numbered in spawn order.
    pub choices: Vec<usize>,
}

impl ScheduleTrace {
    /// Wraps an explicit choice sequence.
    #[must_use]
    pub fn new(choices: Vec<usize>) -> Self {
        ScheduleTrace { choices }
    }

    /// Parses the textual format: whitespace-separated thread ids, with
    /// `#`-prefixed lines ignored. Returns `None` on any non-numeric
    /// token so a corrupted artifact fails loudly rather than replaying
    /// a different schedule.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let mut choices = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            for token in line.split_whitespace() {
                choices.push(token.parse().ok()?);
            }
        }
        Some(ScheduleTrace { choices })
    }

    /// Number of scheduling decisions recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the trace is empty (a run with no scheduling decisions).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

impl fmt::Display for ScheduleTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_then_parse_round_trips() {
        let t = ScheduleTrace::new(vec![0, 1, 0, 2, 1]);
        let parsed = ScheduleTrace::parse(&t.to_string()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let text = "# scanft-race counterexample: demo\n# deadlock\n\n0 1 1\n0\n";
        let parsed = ScheduleTrace::parse(text).unwrap();
        assert_eq!(parsed.choices, vec![0, 1, 1, 0]);
        assert_eq!(parsed.len(), 4);
        assert!(!parsed.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ScheduleTrace::parse("0 one 2").is_none());
    }
}
