//! Graphviz DOT export of the state graph.

use std::fmt::Write as _;

use crate::{InputId, StateTable};

/// Renders the state-transition graph as a DOT digraph. Edges are labelled
/// `input/output`; parallel transitions between the same pair of states are
/// merged into one multi-label edge to keep the diagram readable.
///
/// # Examples
///
/// ```
/// let lion = scanft_fsm::benchmarks::lion();
/// let dot = scanft_fsm::dot::to_dot(&lion);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("00/0")); // the 0 --00/0--> 0 self loop
/// ```
#[must_use]
pub fn to_dot(table: &StateTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", table.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for s in 0..table.num_states() as u32 {
        let _ = writeln!(out, "  s{s} [label=\"{}\"];", table.state_name(s));
    }
    for from in 0..table.num_states() as u32 {
        // Group labels by destination.
        let mut labels: Vec<(u32, Vec<String>)> = Vec::new();
        for input in 0..table.num_input_combos() as InputId {
            let (to, z) = table.step(from, input);
            let label = format!(
                "{}/{}",
                crate::format_input(input, table.num_inputs()),
                crate::format_output(z, table.num_outputs())
            );
            match labels.iter_mut().find(|(t, _)| *t == to) {
                Some((_, list)) => list.push(label),
                None => labels.push((to, vec![label])),
            }
        }
        for (to, list) in labels {
            let _ = writeln!(out, "  s{from} -> s{to} [label=\"{}\"];", list.join("\\n"));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lion_dot_structure() {
        let lion = crate::benchmarks::lion();
        let dot = to_dot(&lion);
        assert!(dot.contains("s0 [label=\"0\"]"));
        // 0 goes to 0 under 00, 10, 11 (merged) and to 1 under 01.
        assert!(dot.contains("s0 -> s1 [label=\"01/1\"]"));
        assert!(dot.contains("00/0\\n10/0\\n11/0"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn every_state_and_edge_group_present() {
        let t = crate::benchmarks::build("bbtas").unwrap();
        let dot = to_dot(&t);
        for s in 0..t.num_states() {
            assert!(dot.contains(&format!("s{s} [label=")));
        }
        // Edge lines = sum over states of distinct destinations.
        let edges = dot.matches(" -> ").count();
        let expected: usize = (0..t.num_states() as u32)
            .map(|s| {
                let mut dests: Vec<u32> = (0..t.num_input_combos() as u32)
                    .map(|i| t.next_state(s, i))
                    .collect();
                dests.sort_unstable();
                dests.dedup();
                dests.len()
            })
            .sum();
        assert_eq!(edges, expected);
    }
}
