//! Bounded-length transfer sequences.
//!
//! A *transfer sequence* takes the machine from its current state to some
//! state satisfying a goal predicate (in the paper: "a state that still has
//! untested state-transitions"). The test generation procedure uses transfer
//! sequences, bounded to `transfer_max_len` input combinations (1 in the
//! paper's main experiments), to extend a test instead of ending it with a
//! scan-out.

use std::collections::VecDeque;

use crate::{InputId, StateId, StateTable};

/// A transfer sequence and the goal state it reaches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferSeq {
    /// Input combinations to apply, in order. Never empty.
    pub inputs: Vec<InputId>,
    /// The state reached, which satisfies the goal predicate.
    pub target: StateId,
}

/// Finds the shortest transfer sequence of length `1..=max_len` from `from`
/// to any state satisfying `goal`, or `None` when no such sequence exists.
///
/// The search is breadth-first with inputs explored in ascending order, so
/// among all shortest solutions the lexicographically-first input sequence
/// is returned — the determinism rule that pins down the paper's `lion`
/// walkthrough (the transfer from state 0 to state 1 is `(01)`).
///
/// Note that `from` itself is *not* a candidate target even if it satisfies
/// `goal`: the procedure only asks for a transfer when the current state has
/// no untested transitions left.
///
/// # Examples
///
/// ```
/// use scanft_fsm::transfer::find_transfer;
///
/// let lion = scanft_fsm::benchmarks::lion();
/// let t = find_transfer(&lion, 0, 1, |s| s == 1).expect("transfer exists");
/// assert_eq!(t.inputs, vec![0b01]);
/// assert_eq!(t.target, 1);
/// assert!(find_transfer(&lion, 0, 1, |s| s == 2).is_none()); // needs 3 steps
/// ```
pub fn find_transfer<F>(
    table: &StateTable,
    from: StateId,
    max_len: usize,
    goal: F,
) -> Option<TransferSeq>
where
    F: Fn(StateId) -> bool,
{
    if max_len == 0 {
        return None;
    }
    // BFS over (state, depth) with predecessor reconstruction.
    let mut pred: Vec<Option<(StateId, InputId)>> = vec![None; table.num_states()];
    let mut seen = vec![false; table.num_states()];
    seen[from as usize] = true;
    let mut queue: VecDeque<(StateId, usize)> = VecDeque::new();
    queue.push_back((from, 0));
    while let Some((s, depth)) = queue.pop_front() {
        if depth >= max_len {
            continue;
        }
        for a in 0..table.num_input_combos() as InputId {
            let n = table.next_state(s, a);
            if seen[n as usize] {
                continue;
            }
            seen[n as usize] = true;
            pred[n as usize] = Some((s, a));
            if goal(n) {
                let mut inputs = Vec::with_capacity(depth + 1);
                let mut cur = n;
                while cur != from {
                    let (p, input) = pred[cur as usize].expect("predecessor chain");
                    inputs.push(input);
                    cur = p;
                }
                inputs.reverse();
                return Some(TransferSeq { inputs, target: n });
            }
            queue.push_back((n, depth + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateTableBuilder;

    #[test]
    fn lion_transfer_from_paper_walkthrough() {
        // In the construction of tau_1 the paper transfers from state 0 to
        // state 1 with the input combination 01.
        let lion = crate::benchmarks::lion();
        let t = find_transfer(&lion, 0, 1, |s| s == 1).unwrap();
        assert_eq!(t.inputs, vec![0b01]);
        assert_eq!(t.target, 1);
    }

    #[test]
    fn zero_max_len_finds_nothing() {
        let lion = crate::benchmarks::lion();
        assert!(find_transfer(&lion, 0, 0, |_| true).is_none());
    }

    #[test]
    fn source_state_is_not_a_target() {
        // The BFS never revisits a state, so a goal satisfied only by the
        // source is unreachable — matching the procedure, which only asks
        // for a transfer when the source has no untested transitions.
        let lion = crate::benchmarks::lion();
        assert!(find_transfer(&lion, 0, 3, |s| s == 0).is_none());
    }

    #[test]
    fn respects_length_bound() {
        let lion = crate::benchmarks::lion();
        // state 2 is 3 steps from state 0 (0 -> 1 -> 3 -> 2).
        assert!(find_transfer(&lion, 0, 2, |s| s == 2).is_none());
        let t = find_transfer(&lion, 0, 3, |s| s == 2).unwrap();
        assert_eq!(t.inputs.len(), 3);
        assert_eq!(lion.run_state(0, &t.inputs), 2);
    }

    #[test]
    fn lexicographic_tie_break() {
        // Two length-1 ways to the goal set; the smaller input must win.
        let mut b = StateTableBuilder::new("tie", 1, 1, 3).unwrap();
        b.set(0, 0, 1, 0).unwrap();
        b.set(0, 1, 2, 0).unwrap();
        b.set(1, 0, 1, 0).unwrap();
        b.set(1, 1, 1, 0).unwrap();
        b.set(2, 0, 2, 0).unwrap();
        b.set(2, 1, 2, 0).unwrap();
        let t = b.build().unwrap();
        let tr = find_transfer(&t, 0, 1, |s| s == 1 || s == 2).unwrap();
        assert_eq!(tr.inputs, vec![0]);
        assert_eq!(tr.target, 1);
    }
}
