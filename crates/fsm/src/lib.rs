//! State-table finite-state machine substrate for `scanft`.
//!
//! This crate provides everything the functional test generation procedure of
//! Pomeranz & Reddy (DATE 2000) consumes at the functional level:
//!
//! - [`StateTable`]: a completely-specified Mealy machine over binary input
//!   combinations, the circuit description used throughout the paper;
//! - [`kiss`]: the KISS2 interchange format used by the MCNC FSM benchmarks;
//! - [`benchmarks`]: the paper's 31-circuit benchmark suite (`lion` embedded
//!   exactly from Table 1 of the paper, the others as deterministic synthetic
//!   machines with the published parameters);
//! - [`uio`]: unique input-output sequence derivation (Table 2);
//! - [`transfer`]: bounded-length transfer sequences between states;
//! - [`minimize`]: Mealy state-equivalence analysis (partition refinement);
//! - [`graph`]: reachability and structural queries on the state graph.
//!
//! # Example
//!
//! ```
//! use scanft_fsm::{benchmarks, uio};
//!
//! let lion = benchmarks::lion();
//! // Reproduce Table 2 of the paper: state 0 has the UIO (00), state 1 none.
//! let uios = uio::derive_uios(&lion, lion.num_state_vars());
//! assert_eq!(uios.sequence(0).map(|u| u.inputs.as_slice()), Some(&[0u32][..]));
//! assert!(uios.sequence(1).is_none());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod error;
mod seq;
mod table;

pub mod ads;
pub mod benchmarks;
pub mod checking;
pub mod dot;
pub mod graph;
pub mod kiss;
pub mod minimize;
pub mod rng;
pub mod sta;
pub mod transfer;
pub mod uio;
pub mod wset;

pub use error::FsmError;
pub use seq::{format_input, format_input_seq, format_output, parse_bits, InputSeq};
pub use table::{
    StateTable, StateTableBuilder, Transition, TransitionIter, MAX_INPUTS, MAX_OUTPUTS,
    MAX_STATE_VARS,
};

/// Index of a state in a [`StateTable`] (row index, also the binary code
/// assigned by the default state encoding).
pub type StateId = u32;

/// Index of a primary-input combination: the integer whose binary expansion
/// (bit `k` = input `x_{k+1}`, most-significant bit first in display) is the
/// applied input vector.
pub type InputId = u32;

/// A packed primary-output combination (bit `k` = output `z_{k+1}`).
pub type OutputWord = u64;
