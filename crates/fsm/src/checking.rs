//! Checking sequences: single-sequence functional testing without scan.
//!
//! A *checking sequence* is one input sequence, applied from a known
//! initial state with only the primary outputs observed, that verifies the
//! machine's full transition structure. It is the classical alternative
//! (Hennie, 1964) to the paper's scan-based tests and needs a
//! distinguishing sequence to exist.
//!
//! The construction here is the standard two-phase recipe over the
//! [adaptive distinguishing sequence](crate::ads) traces:
//!
//! 1. **state recognition** — visit every state and apply its ADS trace;
//! 2. **transition verification** — for every transition `(s, a)`: transfer
//!    to `s`, apply `a`, then apply the ADS trace of the fault-free next
//!    state.
//!
//! This simplified construction does not implement Hennie's full
//! overlapping/locating machinery, so its guarantee is validated
//! *empirically* rather than claimed from theory: the crate's tests check
//! that the sequence detects every single transition fault that makes the
//! machine inequivalent from the initial state (see
//! [`detects_all_inequivalent_faults`]).

use crate::ads::{derive_ads, Ads};
use crate::transfer::find_transfer;
use crate::{graph, sta, InputId, StateId, StateTable};

/// A checking sequence and its bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckingSequence {
    /// The input sequence, applied from the initial state.
    pub inputs: Vec<InputId>,
    /// The initial state it must be applied from.
    pub initial_state: StateId,
    /// The expected fault-free output responses.
    pub outputs: Vec<u64>,
}

impl CheckingSequence {
    /// Length of the sequence in clock cycles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the sequence is empty (single-state machines only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Why a checking sequence could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckingError {
    /// The machine has no adaptive distinguishing sequence.
    NoDistinguishingSequence,
    /// Some state is unreachable from the initial state.
    NotReachable {
        /// An unreachable state.
        state: StateId,
    },
    /// The machine is not strongly connected, so the construction cannot
    /// transfer between arbitrary states.
    NotStronglyConnected,
}

impl std::fmt::Display for CheckingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckingError::NoDistinguishingSequence => {
                write!(f, "machine has no adaptive distinguishing sequence")
            }
            CheckingError::NotReachable { state } => {
                write!(f, "state {state} is unreachable from the initial state")
            }
            CheckingError::NotStronglyConnected => {
                write!(f, "machine is not strongly connected")
            }
        }
    }
}

impl std::error::Error for CheckingError {}

/// Builds a checking sequence for `table` from `initial_state`.
///
/// # Errors
///
/// Returns [`CheckingError::NoDistinguishingSequence`] when no ADS exists,
/// [`CheckingError::NotReachable`] when the machine is not fully reachable
/// from `initial_state`, or [`CheckingError::NotStronglyConnected`] when
/// transfers between arbitrary states are impossible.
///
/// # Examples
///
/// ```
/// use scanft_fsm::checking::build_checking_sequence;
///
/// let sr = scanft_fsm::benchmarks::shiftreg();
/// let cs = build_checking_sequence(&sr, 0).expect("shiftreg is checkable");
/// assert!(!cs.is_empty());
/// assert_eq!(cs.initial_state, 0);
/// ```
pub fn build_checking_sequence(
    table: &StateTable,
    initial_state: StateId,
) -> Result<CheckingSequence, CheckingError> {
    let ads: Ads = derive_ads(table).ok_or(CheckingError::NoDistinguishingSequence)?;
    let reachable = graph::reachable_from(table, initial_state);
    if let Some(state) = reachable.iter().position(|&r| !r) {
        return Err(CheckingError::NotReachable {
            state: state as StateId,
        });
    }
    if !graph::is_strongly_connected(table) {
        return Err(CheckingError::NotStronglyConnected);
    }

    let mut inputs: Vec<InputId> = Vec::new();
    let mut current = initial_state;
    let num_states = table.num_states();
    let go_to = |target: StateId, current: &mut StateId, inputs: &mut Vec<InputId>| {
        if *current != target {
            let tr = find_transfer(table, *current, num_states, |s| s == target)
                .expect("full reachability was checked");
            inputs.extend_from_slice(&tr.inputs);
            *current = target;
        }
    };

    // Phase 1: state recognition.
    for s in 0..num_states as StateId {
        go_to(s, &mut current, &mut inputs);
        inputs.extend_from_slice(ads.trace(s));
        current = table.run_state(s, ads.trace(s));
    }
    // Phase 2: transition verification.
    for t in table.transitions() {
        go_to(t.from, &mut current, &mut inputs);
        inputs.push(t.input);
        let next = t.to;
        inputs.extend_from_slice(ads.trace(next));
        current = table.run_state(next, ads.trace(next));
    }

    let (_, outputs) = table.run(initial_state, &inputs);
    Ok(CheckingSequence {
        inputs,
        initial_state,
        outputs,
    })
}

/// Empirical guarantee check: does the sequence detect (by outputs alone)
/// every single transition fault whose faulted machine is inequivalent to
/// `table` from `initial_state`? Returns the undetected-but-inequivalent
/// faults (empty = full guarantee holds for this universe).
#[must_use]
pub fn detects_all_inequivalent_faults(
    table: &StateTable,
    cs: &CheckingSequence,
    universe: sta::StaUniverse,
) -> Vec<sta::TransitionFault> {
    let mut missed = Vec::new();
    for fault in sta::enumerate(table, universe) {
        let detected = sta::detects_observing(table, &fault, cs.initial_state, &cs.inputs, false);
        if detected {
            continue;
        }
        if !faulted_equivalent_from(table, &fault, cs.initial_state) {
            missed.push(fault);
        }
    }
    missed
}

/// Whether the machine with `fault` injected behaves identically to the
/// fault-free machine from `start` (product-automaton BFS).
fn faulted_equivalent_from(
    table: &StateTable,
    fault: &sta::TransitionFault,
    start: StateId,
) -> bool {
    let n = table.num_states();
    let mut seen = vec![false; n * n];
    let mut queue = std::collections::VecDeque::from([(start, start)]);
    seen[start as usize * n + start as usize] = true;
    while let Some((good, bad)) = queue.pop_front() {
        for input in 0..table.num_input_combos() as InputId {
            let (gn, go) = table.step(good, input);
            let (bn, bo) = if bad == fault.from && input == fault.input {
                (fault.faulty_next, fault.faulty_output)
            } else {
                table.step(bad, input)
            };
            if go != bo {
                return false;
            }
            let key = gn as usize * n + bn as usize;
            if !seen[key] {
                seen[key] = true;
                queue.push_back((gn, bn));
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn shiftreg_checking_sequence_has_full_guarantee() {
        let sr = benchmarks::shiftreg();
        let cs = build_checking_sequence(&sr, 0).expect("checkable");
        // Replay consistency.
        let (_, outs) = sr.run(0, &cs.inputs);
        assert_eq!(outs, cs.outputs);
        // Full guarantee on the complete transition-fault universe.
        let missed = detects_all_inequivalent_faults(&sr, &cs, sta::StaUniverse::Full);
        assert!(missed.is_empty(), "missed {missed:?}");
    }

    #[test]
    fn lion_is_not_checkable() {
        assert_eq!(
            build_checking_sequence(&benchmarks::lion(), 0),
            Err(CheckingError::NoDistinguishingSequence)
        );
    }

    #[test]
    fn unreachable_machine_is_rejected() {
        let mut b = crate::StateTableBuilder::new("island", 1, 1, 3).unwrap();
        b.set(0, 0, 0, 0).unwrap();
        b.set(0, 1, 1, 1).unwrap();
        b.set(1, 0, 0, 1).unwrap();
        b.set(1, 1, 1, 0).unwrap();
        b.set(2, 0, 2, 1).unwrap();
        b.set(2, 1, 0, 0).unwrap();
        let t = b.build().unwrap();
        // state 2 unreachable from 0; whether the error is NoDS or
        // NotReachable depends on ADS existence — accept either.
        assert!(build_checking_sequence(&t, 0).is_err());
    }

    #[test]
    fn checkable_benchmarks_keep_the_guarantee() {
        for name in ["shiftreg", "bbtas", "ex5", "mc"] {
            let t = benchmarks::build(name).unwrap();
            let Ok(cs) = build_checking_sequence(&t, 0) else {
                continue;
            };
            let universe = if t.num_transitions() <= 64 {
                sta::StaUniverse::Full
            } else {
                sta::StaUniverse::Sampled(11)
            };
            let missed = detects_all_inequivalent_faults(&t, &cs, universe);
            assert!(
                missed.is_empty(),
                "{name}: {} inequivalent faults missed",
                missed.len()
            );
        }
    }

    #[test]
    fn equivalence_oracle_is_sound() {
        let sr = benchmarks::shiftreg();
        // A fault that changes visible behaviour is inequivalent.
        let fault = sta::TransitionFault {
            from: 0,
            input: 1,
            faulty_next: 0,
            faulty_output: 0,
        };
        assert!(!faulted_equivalent_from(&sr, &fault, 0));
        // An improper "fault" equal to the real entry is equivalent.
        let (next, out) = sr.step(0, 1);
        let noop = sta::TransitionFault {
            from: 0,
            input: 1,
            faulty_next: next,
            faulty_output: out,
        };
        assert!(faulted_equivalent_from(&sr, &noop, 0));
    }
}
