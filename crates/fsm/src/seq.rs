use crate::{InputId, OutputWord};

/// A sequence of primary-input combinations, applied one per clock cycle.
///
/// This is the payload of a functional test between its scan-in and scan-out
/// operations, and the representation of UIO and transfer sequences.
pub type InputSeq = Vec<InputId>;

/// Formats a packed input combination as a binary string of `bits` digits,
/// most-significant input first (the paper writes `x1 x2` left to right, with
/// `x1` as the most significant digit).
///
/// # Examples
///
/// ```
/// assert_eq!(scanft_fsm::format_input(0b01, 2), "01");
/// assert_eq!(scanft_fsm::format_input(5, 4), "0101");
/// ```
#[must_use]
pub fn format_input(input: InputId, bits: usize) -> String {
    format_bits(u64::from(input), bits)
}

/// Formats a packed output combination as a binary string of `bits` digits,
/// most-significant output first.
///
/// # Examples
///
/// ```
/// assert_eq!(scanft_fsm::format_output(1, 1), "1");
/// assert_eq!(scanft_fsm::format_output(0b10, 3), "010");
/// ```
#[must_use]
pub fn format_output(output: OutputWord, bits: usize) -> String {
    format_bits(output, bits)
}

fn format_bits(word: u64, bits: usize) -> String {
    debug_assert!(bits <= 64);
    (0..bits)
        .rev()
        .map(|k| if word >> k & 1 == 1 { '1' } else { '0' })
        .collect()
}

/// Formats an input sequence as space-separated binary combinations, the way
/// the paper prints test sequences, e.g. `(00,00,01)` prints as `00 00 01`.
#[must_use]
pub fn format_input_seq(seq: &[InputId], bits: usize) -> String {
    seq.iter()
        .map(|&i| format_input(i, bits))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses a binary combination string (e.g. `"01"`) into a packed word,
/// most-significant digit first. Returns `None` on a non-binary digit or on
/// more than 64 digits.
#[must_use]
pub fn parse_bits(text: &str) -> Option<u64> {
    if text.len() > 64 || text.is_empty() {
        return None;
    }
    let mut word = 0u64;
    for ch in text.chars() {
        word = (word << 1)
            | match ch {
                '0' => 0,
                '1' => 1,
                _ => return None,
            };
    }
    Some(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_and_parse_round_trip() {
        for bits in 1..=8usize {
            for value in 0..(1u64 << bits) {
                let text = format_bits(value, bits);
                assert_eq!(text.len(), bits);
                assert_eq!(parse_bits(&text), Some(value));
            }
        }
    }

    #[test]
    fn format_input_seq_matches_paper_style() {
        assert_eq!(format_input_seq(&[0b10, 0b00, 0b11], 2), "10 00 11");
        assert_eq!(format_input_seq(&[], 2), "");
    }

    #[test]
    fn parse_bits_rejects_garbage() {
        assert_eq!(parse_bits(""), None);
        assert_eq!(parse_bits("01x"), None);
        assert_eq!(parse_bits(&"1".repeat(65)), None);
    }
}
