use std::error::Error;
use std::fmt;

/// Error produced when constructing, parsing, or querying a state table.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsmError {
    /// A dimension (inputs, outputs, state variables, states) is out of the
    /// supported range.
    InvalidDimension {
        /// Which dimension was rejected.
        what: &'static str,
        /// The offending value.
        value: usize,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A state index is outside the table.
    StateOutOfRange {
        /// The offending state index.
        state: u32,
        /// Number of states in the table.
        num_states: usize,
    },
    /// An input-combination index is outside the table.
    InputOutOfRange {
        /// The offending input-combination index.
        input: u32,
        /// Number of input combinations in the table.
        num_inputs: usize,
    },
    /// The table has at least one unspecified (state, input) entry and the
    /// requested operation needs a completely-specified machine.
    IncompletelySpecified {
        /// A state with an unspecified entry.
        state: u32,
        /// The name of that state (defaults to its index when unnamed).
        state_name: String,
        /// An input combination with an unspecified entry for `state`.
        input: u32,
    },
    /// A KISS2 source could not be parsed.
    ParseKiss {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The named benchmark circuit is not in the registry.
    UnknownCircuit {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::InvalidDimension {
                what,
                value,
                constraint,
            } => write!(f, "invalid {what} {value}: {constraint}"),
            FsmError::StateOutOfRange { state, num_states } => {
                write!(f, "state {state} out of range for table with {num_states} states")
            }
            FsmError::InputOutOfRange { input, num_inputs } => write!(
                f,
                "input combination {input} out of range for table with {num_inputs} input combinations"
            ),
            FsmError::IncompletelySpecified {
                state,
                state_name,
                input,
            } => write!(
                f,
                "state table is incompletely specified (state {state} \"{state_name}\", input {input})"
            ),
            FsmError::ParseKiss { line, message } => {
                write!(f, "KISS2 parse error at line {line}: {message}")
            }
            FsmError::UnknownCircuit { name } => {
                write!(f, "unknown benchmark circuit \"{name}\"")
            }
        }
    }
}

impl Error for FsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            FsmError::InvalidDimension {
                what: "inputs",
                value: 99,
                constraint: "must be at most 16",
            },
            FsmError::StateOutOfRange {
                state: 7,
                num_states: 4,
            },
            FsmError::InputOutOfRange {
                input: 9,
                num_inputs: 4,
            },
            FsmError::IncompletelySpecified {
                state: 1,
                state_name: "idle".into(),
                input: 2,
            },
            FsmError::ParseKiss {
                line: 3,
                message: "bad cube".into(),
            },
            FsmError::UnknownCircuit {
                name: "nope".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("KISS2"));
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FsmError>();
    }
}
