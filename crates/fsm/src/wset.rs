//! Characterizing sets (the *W-set* of the W-method).
//!
//! A characterizing set is a set `W` of input sequences such that every
//! pair of distinct states is separated by at least one sequence of `W`
//! (their output responses differ). Unlike a UIO (which may not exist for
//! a state) or an ADS (which may not exist at all), a characterizing set
//! exists for **every reduced machine** — at the price of applying several
//! sequences per state verification. It completes the classic toolbox of
//! state-verification methods this crate provides alongside [`crate::uio`]
//! and [`crate::ads`].

use std::collections::VecDeque;

use crate::{InputId, StateId, StateTable};

/// A characterizing set plus derivation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WSet {
    /// The separating sequences.
    pub sequences: Vec<Vec<InputId>>,
}

impl WSet {
    /// Whether `w` separates states `a` and `b` of `table` for some member
    /// sequence.
    #[must_use]
    pub fn separates(&self, table: &StateTable, a: StateId, b: StateId) -> bool {
        self.sequences
            .iter()
            .any(|seq| table.run(a, seq).1 != table.run(b, seq).1)
    }

    /// Total length of all member sequences.
    #[must_use]
    pub fn total_length(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }
}

/// Derives a characterizing set for `table` greedily: walk all state pairs;
/// whenever the current set fails to separate a pair, add that pair's
/// shortest separating sequence (ties: lexicographically first).
///
/// Returns `None` when the machine is not reduced (an inseparable pair
/// exists) — use [`crate::minimize::quotient`] first.
///
/// # Examples
///
/// ```
/// let lion = scanft_fsm::benchmarks::lion();
/// let w = scanft_fsm::wset::characterizing_set(&lion).expect("lion is reduced");
/// for a in 0..4 {
///     for b in (a + 1)..4 {
///         assert!(w.separates(&lion, a, b));
///     }
/// }
/// // At most n-1 sequences are ever needed.
/// assert!(w.sequences.len() <= 3);
/// ```
#[must_use]
pub fn characterizing_set(table: &StateTable) -> Option<WSet> {
    let n = table.num_states() as StateId;
    let mut w = WSet {
        sequences: Vec::new(),
    };
    for a in 0..n {
        for b in (a + 1)..n {
            if w.separates(table, a, b) {
                continue;
            }
            let seq = separating_sequence(table, a, b)?;
            w.sequences.push(seq);
        }
    }
    Some(w)
}

/// Shortest input sequence whose output responses differ between `a` and
/// `b` (lexicographically first among shortest), or `None` when the states
/// are equivalent.
///
/// # Examples
///
/// ```
/// let lion = scanft_fsm::benchmarks::lion();
/// // States 0 and 1 differ immediately under input 00 (outputs 0 vs 1).
/// assert_eq!(scanft_fsm::wset::separating_sequence(&lion, 0, 1), Some(vec![0b00]));
/// ```
#[must_use]
pub fn separating_sequence(table: &StateTable, a: StateId, b: StateId) -> Option<Vec<InputId>> {
    if a == b {
        return None;
    }
    let n = table.num_states();
    let npic = table.num_input_combos() as InputId;
    // BFS over unordered pairs.
    let key = |u: StateId, v: StateId| -> usize {
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        lo as usize * n + hi as usize
    };
    let mut pred: Vec<Option<(StateId, StateId, InputId)>> = vec![None; n * n];
    let mut seen = vec![false; n * n];
    seen[key(a, b)] = true;
    let mut queue = VecDeque::from([(a, b)]);
    while let Some((u, v)) = queue.pop_front() {
        for input in 0..npic {
            let (nu, ou) = table.step(u, input);
            let (nv, ov) = table.step(v, input);
            if ou != ov {
                // Reconstruct: path to (u, v), then `input`.
                let mut seq = vec![input];
                let mut cur = (u, v);
                while cur != (a, b) && cur != (b, a) {
                    let (pu, pv, pi) = pred[key(cur.0, cur.1)].expect("predecessor chain");
                    seq.push(pi);
                    cur = (pu, pv);
                }
                seq.reverse();
                return Some(seq);
            }
            if nu == nv {
                continue; // merged: this branch can never separate
            }
            let k = key(nu, nv);
            if !seen[k] {
                seen[k] = true;
                pred[k] = Some((u, v, input));
                queue.push_back((nu, nv));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn lion_wset_separates_all_pairs() {
        let lion = benchmarks::lion();
        let w = characterizing_set(&lion).expect("reduced");
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert!(w.separates(&lion, a, b), "({a},{b})");
            }
        }
        assert!(!w.sequences.is_empty());
        assert!(w.total_length() >= w.sequences.len());
    }

    #[test]
    fn separating_sequences_are_minimal_on_lion() {
        let lion = benchmarks::lion();
        // 1 vs 2: under 00 both output 1 and go to 1 / 2; under 11 outputs
        // 0 vs 1 — so the length-1 separator (11) exists.
        let seq = separating_sequence(&lion, 1, 2).expect("separable");
        assert_eq!(seq.len(), 1);
        let (_, o1) = lion.run(1, &seq);
        let (_, o2) = lion.run(2, &seq);
        assert_ne!(o1, o2);
    }

    #[test]
    fn equivalent_states_have_no_separator() {
        let mut b = crate::StateTableBuilder::new("dup", 1, 1, 2).unwrap();
        b.set(0, 0, 1, 0).unwrap();
        b.set(0, 1, 0, 1).unwrap();
        b.set(1, 0, 0, 0).unwrap();
        b.set(1, 1, 1, 1).unwrap();
        let t = b.build().unwrap();
        if crate::minimize::equivalence_classes(&t).num_classes() == 1 {
            assert_eq!(separating_sequence(&t, 0, 1), None);
            assert_eq!(characterizing_set(&t), None);
        }
    }

    #[test]
    fn identical_states_rejected() {
        let lion = benchmarks::lion();
        assert_eq!(separating_sequence(&lion, 2, 2), None);
    }

    #[test]
    fn wset_on_benchmarks_matches_reduced_status() {
        for name in ["lion", "shiftreg", "bbtas", "dk27", "beecount", "mc"] {
            let t = benchmarks::build(name).unwrap();
            let reduced = crate::minimize::is_reduced(&t);
            let w = characterizing_set(&t);
            assert_eq!(w.is_some(), reduced, "{name}");
            if let Some(w) = w {
                for a in 0..t.num_states() as StateId {
                    for b in (a + 1)..t.num_states() as StateId {
                        assert!(w.separates(&t, a, b), "{name}: ({a},{b})");
                    }
                }
                // Classic bound: at most n - 1 sequences.
                assert!(w.sequences.len() < t.num_states(), "{name}");
            }
        }
    }
}
