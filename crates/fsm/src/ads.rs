//! Adaptive distinguishing sequences (splitting-tree construction).
//!
//! A machine has an *adaptive distinguishing sequence* (ADS) when a single
//! adaptive experiment — inputs chosen based on observed outputs —
//! identifies the initial state, whatever it was. The classic construction
//! (Lee & Yannakakis, 1994) refines a partition of the state set using
//! *valid* inputs: an input is valid for a block when no two states of the
//! block that agree on the output merge into the same next state (merging
//! destroys distinguishability forever).
//!
//! This module implements the partition-refinement existence check and
//! derives the per-state *verification traces*: the fixed input sequence
//! the adaptive experiment applies when started in state `s`. Every such
//! trace is a unique input-output sequence for `s` (any other state must
//! produce a different output somewhere along it — the crate's tests check
//! this against [`crate::uio::is_uio`]), so an ADS supplies UIO-style state
//! verification for *every* state at once. Conversely, a machine with a
//! UIO-less state (like `lion`, Table 2 of the paper) cannot have an ADS.

use std::collections::HashMap;

use crate::{InputId, StateId, StateTable};

/// The per-state verification traces extracted from an adaptive
/// distinguishing sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ads {
    /// `traces[s]` = the inputs the adaptive experiment applies when the
    /// machine starts in state `s` (the fault-free path through the
    /// decision tree).
    traces: Vec<Vec<InputId>>,
}

impl Ads {
    /// The verification trace for `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn trace(&self, state: StateId) -> &[InputId] {
        &self.traces[state as usize]
    }

    /// The number of states covered (all of them, by definition).
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.traces.len()
    }

    /// Length of the longest trace.
    #[must_use]
    pub fn max_trace_len(&self) -> usize {
        self.traces.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// How a block of the refinement partition was split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SplitKind {
    /// States of the block produce different outputs under the input.
    Output,
    /// Outputs agree; successors fall into different partition blocks.
    Successor,
}

/// Derives an adaptive distinguishing sequence for `table`, or `None` when
/// none exists.
///
/// The search is the standard partition refinement: starting from the
/// single all-states block, repeatedly split any block for which a valid
/// input either separates by output or maps states into different existing
/// blocks. The machine has an ADS iff the refinement reaches singletons.
///
/// # Examples
///
/// ```
/// use scanft_fsm::{ads, benchmarks, uio};
///
/// // A shift register reveals its contents: apply three zeros and the
/// // three output bits spell out the state.
/// let sr = benchmarks::shiftreg();
/// let a = ads::derive_ads(&sr).expect("shiftreg has an ADS");
/// assert_eq!(a.max_trace_len(), 3);
/// for s in 0..8 {
///     assert!(uio::is_uio(&sr, s, a.trace(s)));
/// }
///
/// // lion has UIO-less states, so it cannot have an ADS.
/// assert!(ads::derive_ads(&benchmarks::lion()).is_none());
/// ```
#[must_use]
pub fn derive_ads(table: &StateTable) -> Option<Ads> {
    let n = table.num_states();
    if n == 1 {
        return Some(Ads {
            traces: vec![Vec::new()],
        });
    }
    let npic = table.num_input_combos() as InputId;

    // Partition refinement: block_of[s] = current block id.
    let mut block_of: Vec<u32> = vec![0; n];
    let mut num_blocks = 1usize;
    // For trace extraction we remember, per split, the input used — the
    // tree below re-derives the rest.
    loop {
        let mut blocks: HashMap<u32, Vec<StateId>> = HashMap::new();
        for (s, &b) in block_of.iter().enumerate() {
            blocks.entry(b).or_default().push(s as StateId);
        }
        let mut progressed = false;
        for (_, members) in blocks {
            if members.len() < 2 {
                continue;
            }
            if let Some((input, kind)) = find_split(table, &members, &block_of, npic) {
                // Apply the split: assign fresh block ids per group.
                let groups = group_members(table, &members, &block_of, input, kind);
                for group in groups.into_iter().skip(1) {
                    let fresh = num_blocks as u32;
                    num_blocks += 1;
                    for s in group {
                        block_of[s as usize] = fresh;
                    }
                }
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    if num_blocks != n {
        return None; // some block cannot be split: no ADS
    }

    // Trace extraction: walk the decision recursion with origin tracking.
    // Each node is a set of (origin, current) pairs; choose the smallest
    // valid splitting input (they exist: the refinement above certifies
    // full distinguishability, and validity never destroys it).
    let mut traces: Vec<Vec<InputId>> = vec![Vec::new(); n];
    let root: Vec<(StateId, StateId)> = (0..n as StateId).map(|s| (s, s)).collect();
    // Depth bound: a crude safety net far above the O(n^2) theory bound.
    let depth_bound = n * n + npic as usize + 4;
    if extract(table, &root, &mut traces, npic, depth_bound).is_some() {
        return Some(Ads { traces });
    }
    // The greedy walk rarely fails to converge even though the refinement
    // proved distinguishability; fall back to independent UIO searches
    // (refinement success implies every state has one).
    let config = crate::uio::UioConfig::with_max_len(n * n);
    let mut traces: Vec<Vec<InputId>> = Vec::with_capacity(n);
    for s in 0..n as StateId {
        match crate::uio::find_uio(table, s, &config) {
            crate::uio::UioOutcome::Found(u) => traces.push(u.inputs),
            _ => return None,
        }
    }
    Some(Ads { traces })
}

/// Finds the smallest valid input splitting `members`, preferring output
/// splits.
fn find_split(
    table: &StateTable,
    members: &[StateId],
    block_of: &[u32],
    npic: InputId,
) -> Option<(InputId, SplitKind)> {
    let mut successor_split: Option<InputId> = None;
    for a in 0..npic {
        if !input_is_valid(table, members, a) {
            continue;
        }
        let first_out = table.output(members[0], a);
        if members.iter().any(|&s| table.output(s, a) != first_out) {
            return Some((a, SplitKind::Output));
        }
        if successor_split.is_none() {
            let first_block = block_of[table.next_state(members[0], a) as usize];
            if members
                .iter()
                .any(|&s| block_of[table.next_state(s, a) as usize] != first_block)
            {
                successor_split = Some(a);
            }
        }
    }
    successor_split.map(|a| (a, SplitKind::Successor))
}

/// Whether `a` is valid for the block: states agreeing on the output never
/// merge into the same next state.
fn input_is_valid(table: &StateTable, members: &[StateId], a: InputId) -> bool {
    let mut seen: HashMap<(u64, StateId), ()> = HashMap::with_capacity(members.len());
    for &s in members {
        let key = (table.output(s, a), table.next_state(s, a));
        if seen.insert(key, ()).is_some() {
            return false;
        }
    }
    true
}

/// Partitions the block according to the split, in deterministic order.
fn group_members(
    table: &StateTable,
    members: &[StateId],
    block_of: &[u32],
    input: InputId,
    kind: SplitKind,
) -> Vec<Vec<StateId>> {
    let mut order: Vec<u64> = Vec::new();
    let mut groups: HashMap<u64, Vec<StateId>> = HashMap::new();
    for &s in members {
        let key = match kind {
            SplitKind::Output => table.output(s, input),
            SplitKind::Successor => u64::from(block_of[table.next_state(s, input) as usize]),
        };
        if !groups.contains_key(&key) {
            order.push(key);
        }
        groups.entry(key).or_default().push(s);
    }
    order
        .into_iter()
        .map(|k| groups.remove(&k).expect("key recorded"))
        .collect()
}

/// Recursively extends the traces of all origins in `pairs` until each is
/// isolated. Returns `None` only if the depth bound is hit (which the
/// refinement check should make impossible).
fn extract(
    table: &StateTable,
    pairs: &[(StateId, StateId)],
    traces: &mut [Vec<InputId>],
    npic: InputId,
    depth_left: usize,
) -> Option<()> {
    if pairs.len() <= 1 {
        return Some(());
    }
    if depth_left == 0 {
        return None;
    }
    let currents: Vec<StateId> = pairs.iter().map(|&(_, c)| c).collect();
    // Valid input preferring output splits; otherwise the smallest valid
    // input that at least *moves* the current set (a same-output input
    // whose successors are the identical set makes no progress and would
    // loop forever).
    let mut chosen: Option<InputId> = None;
    for a in 0..npic {
        if !input_is_valid(table, &currents, a) {
            continue;
        }
        let first_out = table.output(currents[0], a);
        if currents.iter().any(|&s| table.output(s, a) != first_out) {
            chosen = Some(a);
            break;
        }
        if chosen.is_none() {
            let mut successors: Vec<StateId> =
                currents.iter().map(|&s| table.next_state(s, a)).collect();
            successors.sort_unstable();
            let mut sorted_currents = currents.clone();
            sorted_currents.sort_unstable();
            if successors != sorted_currents {
                chosen = Some(a);
            }
        }
    }
    let a = chosen?;
    // Apply `a` to every origin's trace and advance the pairs.
    for &(origin, _) in pairs {
        traces[origin as usize].push(a);
    }
    // Partition by output, advance currents, recurse.
    let mut order: Vec<u64> = Vec::new();
    let mut children: HashMap<u64, Vec<(StateId, StateId)>> = HashMap::new();
    for &(origin, current) in pairs {
        let out = table.output(current, a);
        if !children.contains_key(&out) {
            order.push(out);
        }
        children
            .entry(out)
            .or_default()
            .push((origin, table.next_state(current, a)));
    }
    for key in order {
        let child = children.remove(&key).expect("key recorded");
        extract(table, &child, traces, npic, depth_left - 1)?;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{benchmarks, uio};

    #[test]
    fn shiftreg_ads_reads_the_register_out() {
        let sr = benchmarks::shiftreg();
        let ads = derive_ads(&sr).expect("shiftreg has an ADS");
        assert_eq!(ads.num_states(), 8);
        assert_eq!(ads.max_trace_len(), 3);
        for s in 0..8 {
            // Every trace is a UIO for its state.
            assert!(uio::is_uio(&sr, s, ads.trace(s)), "state {s}");
        }
    }

    #[test]
    fn lion_has_no_ads() {
        assert!(derive_ads(&benchmarks::lion()).is_none());
    }

    #[test]
    fn single_state_machine_is_trivially_identified() {
        let mut b = crate::StateTableBuilder::new("one", 1, 1, 1).unwrap();
        b.set(0, 0, 0, 0).unwrap();
        b.set(0, 1, 0, 1).unwrap();
        let t = b.build().unwrap();
        let ads = derive_ads(&t).expect("trivial ADS");
        assert!(ads.trace(0).is_empty());
    }

    #[test]
    fn machine_with_equivalent_states_has_no_ads() {
        // Two equivalent states can never be distinguished.
        let mut b = crate::StateTableBuilder::new("dup", 1, 1, 2).unwrap();
        b.set(0, 0, 1, 0).unwrap();
        b.set(0, 1, 0, 1).unwrap();
        b.set(1, 0, 0, 0).unwrap();
        b.set(1, 1, 1, 1).unwrap();
        let t = b.build().unwrap();
        // 0 and 1 produce identical outputs under every sequence (check via
        // the minimizer), so no ADS.
        if crate::minimize::equivalence_classes(&t).num_classes() < 2 {
            assert!(derive_ads(&t).is_none());
        }
    }

    #[test]
    fn merging_input_is_rejected() {
        // Distinguishable machine whose only output-split input merges the
        // other pair of states — the validity condition must handle it.
        let mut b = crate::StateTableBuilder::new("merge", 1, 1, 4).unwrap();
        // input 0: output identifies {0,1} vs {2,3}; successors keep
        // injectivity within each output group.
        b.set(0, 0, 1, 0).unwrap();
        b.set(1, 0, 0, 0).unwrap();
        b.set(2, 0, 3, 1).unwrap();
        b.set(3, 0, 2, 1).unwrap();
        // input 1: splits 0 vs 1 and 2 vs 3 by output.
        b.set(0, 1, 0, 0).unwrap();
        b.set(1, 1, 1, 1).unwrap();
        b.set(2, 1, 2, 0).unwrap();
        b.set(3, 1, 3, 1).unwrap();
        let t = b.build().unwrap();
        let ads = derive_ads(&t).expect("ADS exists");
        for s in 0..4 {
            assert!(uio::is_uio(&t, s, ads.trace(s)), "state {s}");
        }
    }

    #[test]
    fn ads_existence_implies_all_uios_exist() {
        for name in ["shiftreg", "bbtas", "beecount", "ex5", "mc", "tav"] {
            let t = benchmarks::build(name).unwrap();
            if let Some(ads) = derive_ads(&t) {
                for s in 0..t.num_states() as StateId {
                    assert!(
                        uio::is_uio(&t, s, ads.trace(s)),
                        "{name}: trace of state {s} is not a UIO"
                    );
                }
            }
        }
    }
}
