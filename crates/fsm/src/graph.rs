//! Structural queries on the state graph of a [`StateTable`].

use std::collections::VecDeque;

use crate::{InputId, StateId, StateTable};

/// Set of states reachable from `start` (including `start` itself) by
/// applying any input sequence.
///
/// Full-scan circuits can be loaded into *any* state, so reachability is not
/// a constraint on test generation; this query is still useful for
/// validating benchmark machines and for non-scan comparisons.
///
/// # Examples
///
/// ```
/// let lion = scanft_fsm::benchmarks::lion();
/// // Every state of lion is reachable from state 0 (0 -> 1 -> 3 -> 2).
/// assert!(scanft_fsm::graph::reachable_from(&lion, 0).iter().all(|&r| r));
/// ```
#[must_use]
pub fn reachable_from(table: &StateTable, start: StateId) -> Vec<bool> {
    let mut seen = vec![false; table.num_states()];
    let mut queue = VecDeque::new();
    seen[start as usize] = true;
    queue.push_back(start);
    while let Some(s) = queue.pop_front() {
        for i in 0..table.num_input_combos() as InputId {
            let n = table.next_state(s, i);
            if !seen[n as usize] {
                seen[n as usize] = true;
                queue.push_back(n);
            }
        }
    }
    seen
}

/// Shortest input sequence taking the machine from `from` to `to`, or `None`
/// if `to` is unreachable. Ties are broken toward the lexicographically
/// smallest sequence (inputs explored in ascending order).
///
/// # Examples
///
/// ```
/// let lion = scanft_fsm::benchmarks::lion();
/// // 0 --01--> 1 is the shortest path from state 0 to state 1.
/// assert_eq!(scanft_fsm::graph::shortest_path(&lion, 0, 1), Some(vec![0b01]));
/// assert_eq!(scanft_fsm::graph::shortest_path(&lion, 0, 0), Some(vec![]));
/// // Reaching state 2 from state 0 takes three steps: 0 -> 1 -> 3 -> 2.
/// assert_eq!(scanft_fsm::graph::shortest_path(&lion, 0, 2).map(|p| p.len()), Some(3));
/// ```
#[must_use]
pub fn shortest_path(table: &StateTable, from: StateId, to: StateId) -> Option<Vec<InputId>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut pred: Vec<Option<(StateId, InputId)>> = vec![None; table.num_states()];
    let mut seen = vec![false; table.num_states()];
    seen[from as usize] = true;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(s) = queue.pop_front() {
        for i in 0..table.num_input_combos() as InputId {
            let n = table.next_state(s, i);
            if seen[n as usize] {
                continue;
            }
            seen[n as usize] = true;
            pred[n as usize] = Some((s, i));
            if n == to {
                let mut seq = Vec::new();
                let mut cur = to;
                while cur != from {
                    let (p, input) = pred[cur as usize].expect("predecessor chain");
                    seq.push(input);
                    cur = p;
                }
                seq.reverse();
                return Some(seq);
            }
            queue.push_back(n);
        }
    }
    None
}

/// In-degree of every state (number of transitions entering it, counting one
/// per `(state, input)` pair).
#[must_use]
pub fn in_degrees(table: &StateTable) -> Vec<usize> {
    let mut deg = vec![0usize; table.num_states()];
    for t in table.transitions() {
        deg[t.to as usize] += 1;
    }
    deg
}

/// Whether the state graph is strongly connected (every state reachable from
/// every other).
#[must_use]
pub fn is_strongly_connected(table: &StateTable) -> bool {
    // Forward reachability from 0 plus backward reachability from 0 over the
    // reversed graph.
    if !reachable_from(table, 0).iter().all(|&r| r) {
        return false;
    }
    let n = table.num_states();
    let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for t in table.transitions() {
        rev[t.to as usize].push(t.from);
    }
    let mut seen = vec![false; n];
    seen[0] = true;
    let mut queue = VecDeque::from([0 as StateId]);
    while let Some(s) = queue.pop_front() {
        for &p in &rev[s as usize] {
            if !seen[p as usize] {
                seen[p as usize] = true;
                queue.push_back(p);
            }
        }
    }
    seen.into_iter().all(|r| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateTableBuilder;

    fn chain3() -> StateTable {
        // 0 -> 1 -> 2 -> 2 on input 1; self loops on 0.
        let mut b = StateTableBuilder::new("chain", 1, 1, 3).unwrap();
        b.set(0, 0, 0, 0).unwrap();
        b.set(0, 1, 1, 0).unwrap();
        b.set(1, 0, 1, 0).unwrap();
        b.set(1, 1, 2, 0).unwrap();
        b.set(2, 0, 2, 1).unwrap();
        b.set(2, 1, 2, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn reachability_on_chain() {
        let t = chain3();
        assert_eq!(reachable_from(&t, 0), vec![true, true, true]);
        assert_eq!(reachable_from(&t, 2), vec![false, false, true]);
    }

    #[test]
    fn shortest_path_prefers_short_then_lex() {
        let t = chain3();
        assert_eq!(shortest_path(&t, 0, 2), Some(vec![1, 1]));
        assert_eq!(shortest_path(&t, 2, 0), None);
        let lion = crate::benchmarks::lion();
        // From 2 to 1: 2 --10--> 3 --00--> 1 (input 00 out of 2 self-loops,
        // 01 self-loops; 10 is the smallest input leaving state 2).
        let path = shortest_path(&lion, 2, 1).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(lion.run_state(2, &path), 1);
    }

    #[test]
    fn path_endpoints_verified_by_run() {
        let lion = crate::benchmarks::lion();
        for from in 0..4 {
            for to in 0..4 {
                if let Some(p) = shortest_path(&lion, from, to) {
                    assert_eq!(lion.run_state(from, &p), to);
                }
            }
        }
    }

    #[test]
    fn in_degree_sums_to_transitions() {
        let t = chain3();
        assert_eq!(in_degrees(&t).iter().sum::<usize>(), t.num_transitions());
    }

    #[test]
    fn strong_connectivity() {
        assert!(!is_strongly_connected(&chain3()));
        // lion is strongly connected: 0 -> 1 -> 3 -> 2 and back via 1 --11--> 0.
        assert!(is_strongly_connected(&crate::benchmarks::lion()));
        let mut b = StateTableBuilder::new("ring", 1, 1, 2).unwrap();
        b.set(0, 0, 1, 0).unwrap();
        b.set(0, 1, 1, 0).unwrap();
        b.set(1, 0, 0, 0).unwrap();
        b.set(1, 1, 0, 0).unwrap();
        assert!(is_strongly_connected(&b.build().unwrap()));
    }
}
