//! A tiny deterministic pseudo-random number generator.
//!
//! The synthetic benchmark suite must be bit-for-bit reproducible across
//! platforms and dependency upgrades, so instead of an external RNG we use
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) — a 64-bit mixer with a
//! fixed, published specification.

/// SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use scanft_fsm::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Creates a generator seeded from a string (FNV-1a hash of the bytes),
    /// used to derive per-circuit seeds from benchmark names.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SplitMix64::new(hash)
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniformly-distributed value in `0..bound`.
    ///
    /// Uses rejection sampling, so there is no modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style threshold rejection.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = mul_wide(r, bound);
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_below(den) < num
    }
}

fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vector() {
        // Reference values for seed 1234567 from the published SplitMix64
        // test vectors (Vigna's splitmix64.c).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn next_below_in_range_and_hits_all_values() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.next_below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn from_name_is_stable_and_distinct() {
        let a = SplitMix64::from_name("lion").next_u64();
        let b = SplitMix64::from_name("lion").next_u64();
        let c = SplitMix64::from_name("lion9").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
