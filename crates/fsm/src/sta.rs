//! The single state-transition fault model, simulated at the functional
//! level.
//!
//! Under this model (the paper's target, after \[1\]–\[3\]), any single
//! state transition may produce a faulty next state and/or a faulty output
//! combination. The paper's procedure guarantees every transition is
//! *exercised with its next state verified*, but explicitly does **not**
//! claim every such fault is detected: a fault can corrupt the UIO or
//! transfer segments of a test and mask itself ("this is expected to affect
//! the coverage of single state-transition faults only rarely", Section 2).
//! This module makes that claim measurable: it enumerates transition
//! faults, simulates tests on the faulted machine, and reports coverage.
//!
//! Detection model (matching scan-based application): a test
//! `(initial state, input sequence)` detects a fault iff the faulted
//! machine produces a different primary-output combination at any cycle or
//! ends in a different final state (observed by the scan-out). Scan
//! operations themselves are assumed fault-free, as in the paper.

use crate::{InputId, OutputWord, StateId, StateTable};

/// One single state-transition fault: the entry of `(from, input)` is
/// replaced by `(faulty_next, faulty_output)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransitionFault {
    /// Source state of the faulted transition.
    pub from: StateId,
    /// Input combination of the faulted transition.
    pub input: InputId,
    /// Next state under the fault.
    pub faulty_next: StateId,
    /// Output combination under the fault.
    pub faulty_output: OutputWord,
}

impl TransitionFault {
    /// Whether the fault actually changes the machine (the faulty entry
    /// differs from the fault-free one).
    #[must_use]
    pub fn is_proper(&self, table: &StateTable) -> bool {
        table.step(self.from, self.input) != (self.faulty_next, self.faulty_output)
    }
}

/// Which transition faults to enumerate.
///
/// The full universe has `trans * (N_ST * 2^no - 1)` faults, which is
/// enormous for wide-output machines; the restricted policies keep ablation
/// runs tractable while spanning both failure directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaUniverse {
    /// Every faulty `(next state, output)` pair for every transition.
    Full,
    /// Only faulty next states (output unchanged): `N_ST - 1` per
    /// transition.
    NextStates,
    /// Only faulty outputs (next state unchanged): `2^no - 1` per
    /// transition.
    Outputs,
    /// Deterministic sample: for every transition, one faulty next state
    /// and one faulty output drawn from a [`crate::rng::SplitMix64`] stream
    /// seeded with the given value.
    Sampled(u64),
}

/// Enumerates the transition-fault universe of `table` under `policy`.
///
/// All returned faults are proper (they change the machine).
///
/// # Examples
///
/// ```
/// use scanft_fsm::sta::{enumerate, StaUniverse};
///
/// let lion = scanft_fsm::benchmarks::lion();
/// // 16 transitions, 4 states, 1 output: 16 * (4*2 - 1) = 112 faults.
/// assert_eq!(enumerate(&lion, StaUniverse::Full).len(), 112);
/// assert_eq!(enumerate(&lion, StaUniverse::NextStates).len(), 48);
/// assert_eq!(enumerate(&lion, StaUniverse::Outputs).len(), 16);
/// ```
#[must_use]
pub fn enumerate(table: &StateTable, policy: StaUniverse) -> Vec<TransitionFault> {
    let mut faults = Vec::new();
    let num_states = table.num_states() as StateId;
    let out_space: u64 = if table.num_outputs() >= 63 {
        u64::MAX
    } else {
        1u64 << table.num_outputs()
    };
    let mut rng = match policy {
        StaUniverse::Sampled(seed) => Some(crate::rng::SplitMix64::new(seed)),
        _ => None,
    };
    for t in table.transitions() {
        match policy {
            StaUniverse::Full => {
                for ns in 0..num_states {
                    for out in 0..out_space {
                        if (ns, out) != (t.to, t.output) {
                            faults.push(TransitionFault {
                                from: t.from,
                                input: t.input,
                                faulty_next: ns,
                                faulty_output: out,
                            });
                        }
                    }
                }
            }
            StaUniverse::NextStates => {
                for ns in 0..num_states {
                    if ns != t.to {
                        faults.push(TransitionFault {
                            from: t.from,
                            input: t.input,
                            faulty_next: ns,
                            faulty_output: t.output,
                        });
                    }
                }
            }
            StaUniverse::Outputs => {
                for out in 0..out_space {
                    if out != t.output {
                        faults.push(TransitionFault {
                            from: t.from,
                            input: t.input,
                            faulty_next: t.to,
                            faulty_output: out,
                        });
                    }
                }
            }
            StaUniverse::Sampled(_) => {
                let rng = rng.as_mut().expect("sampled policy has an rng");
                if num_states > 1 {
                    let mut ns = rng.next_below(u64::from(num_states) - 1) as StateId;
                    if ns >= t.to {
                        ns += 1;
                    }
                    faults.push(TransitionFault {
                        from: t.from,
                        input: t.input,
                        faulty_next: ns,
                        faulty_output: t.output,
                    });
                }
                if out_space > 1 {
                    let mut out = rng.next_below(out_space - 1);
                    if out >= t.output {
                        out += 1;
                    }
                    faults.push(TransitionFault {
                        from: t.from,
                        input: t.input,
                        faulty_next: t.to,
                        faulty_output: out,
                    });
                }
            }
        }
    }
    faults
}

/// Runs `inputs` from `start` on the machine with `fault` injected,
/// returning the produced outputs and the final state.
#[must_use]
pub fn run_faulted(
    table: &StateTable,
    fault: &TransitionFault,
    start: StateId,
    inputs: &[InputId],
) -> (StateId, Vec<OutputWord>) {
    let mut state = start;
    let mut outputs = Vec::with_capacity(inputs.len());
    for &input in inputs {
        let (next, out) = if state == fault.from && input == fault.input {
            (fault.faulty_next, fault.faulty_output)
        } else {
            table.step(state, input)
        };
        outputs.push(out);
        state = next;
    }
    (state, outputs)
}

/// Whether the scan-based test `(start, inputs)` detects `fault`: any
/// primary-output difference at any cycle, or a different scanned-out final
/// state.
#[must_use]
pub fn detects(
    table: &StateTable,
    fault: &TransitionFault,
    start: StateId,
    inputs: &[InputId],
) -> bool {
    detects_observing(table, fault, start, inputs, true)
}

/// Like [`detects`], with the scan-out observation made optional:
/// `observe_final_state = false` models non-scan application, where only
/// primary outputs are visible.
#[must_use]
pub fn detects_observing(
    table: &StateTable,
    fault: &TransitionFault,
    start: StateId,
    inputs: &[InputId],
    observe_final_state: bool,
) -> bool {
    let mut good = start;
    let mut bad = start;
    for &input in inputs {
        let (good_next, good_out) = table.step(good, input);
        let (bad_next, bad_out) = if bad == fault.from && input == fault.input {
            (fault.faulty_next, fault.faulty_output)
        } else {
            table.step(bad, input)
        };
        if good_out != bad_out {
            return true;
        }
        good = good_next;
        bad = bad_next;
    }
    observe_final_state && good != bad
}

/// Coverage of a test set under the transition-fault model.
#[derive(Debug, Clone)]
pub struct StaReport {
    /// For each fault, the index of the first detecting test, or `None`.
    pub detecting_test: Vec<Option<usize>>,
    /// Number of faults.
    pub num_faults: usize,
}

impl StaReport {
    /// Number of detected faults.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.detecting_test.iter().filter(|d| d.is_some()).count()
    }

    /// Coverage percentage.
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.num_faults == 0 {
            return 100.0;
        }
        100.0 * self.detected() as f64 / self.num_faults as f64
    }

    /// Indices of undetected faults.
    #[must_use]
    pub fn undetected(&self) -> Vec<usize> {
        self.detecting_test
            .iter()
            .enumerate()
            .filter_map(|(k, d)| d.is_none().then_some(k))
            .collect()
    }
}

/// Simulates `tests` (pairs of start state and input sequence) against
/// `faults` with fault dropping.
#[must_use]
pub fn coverage(
    table: &StateTable,
    tests: &[(StateId, Vec<InputId>)],
    faults: &[TransitionFault],
) -> StaReport {
    coverage_observing(table, tests, faults, true)
}

/// Like [`coverage`], with the scan-out observation made optional.
#[must_use]
pub fn coverage_observing(
    table: &StateTable,
    tests: &[(StateId, Vec<InputId>)],
    faults: &[TransitionFault],
    observe_final_state: bool,
) -> StaReport {
    let detecting_test = faults
        .iter()
        .map(|fault| {
            tests.iter().position(|(start, inputs)| {
                detects_observing(table, fault, *start, inputs, observe_final_state)
            })
        })
        .collect();
    StaReport {
        detecting_test,
        num_faults: faults.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn enumerate_counts_and_properness() {
        let lion = benchmarks::lion();
        for policy in [
            StaUniverse::Full,
            StaUniverse::NextStates,
            StaUniverse::Outputs,
            StaUniverse::Sampled(7),
        ] {
            let faults = enumerate(&lion, policy);
            assert!(!faults.is_empty());
            for f in &faults {
                assert!(f.is_proper(&lion), "{policy:?}: {f:?}");
            }
        }
        assert_eq!(enumerate(&lion, StaUniverse::Sampled(7)).len(), 32);
    }

    #[test]
    fn run_faulted_diverges_only_through_the_fault() {
        let lion = benchmarks::lion();
        let fault = TransitionFault {
            from: 0,
            input: 0b01,
            faulty_next: 3,
            faulty_output: 1,
        };
        // A sequence avoiding (0,01) behaves fault-free.
        let (fin, outs) = run_faulted(&lion, &fault, 0, &[0b00, 0b10]);
        let (gfin, gouts) = lion.run(0, &[0b00, 0b10]);
        assert_eq!((fin, &outs), (gfin, &gouts));
        // Taking the faulted transition diverges in state (output is the
        // same here: both 1).
        let (fin, _) = run_faulted(&lion, &fault, 0, &[0b01]);
        assert_eq!(fin, 3);
        assert_eq!(lion.run(0, &[0b01]).0, 1);
    }

    #[test]
    fn per_transition_tests_detect_every_fault() {
        // The length-1 baseline observes output and next state of every
        // transition directly, so it detects the full universe.
        let lion = benchmarks::lion();
        let tests: Vec<(StateId, Vec<InputId>)> = lion
            .transitions()
            .map(|t| (t.from, vec![t.input]))
            .collect();
        let faults = enumerate(&lion, StaUniverse::Full);
        let report = coverage(&lion, &tests, &faults);
        assert_eq!(report.detected(), faults.len());
        assert!((report.coverage_percent() - 100.0).abs() < f64::EPSILON);
        assert!(report.undetected().is_empty());
    }

    #[test]
    fn detects_via_final_state_only() {
        let lion = benchmarks::lion();
        // Fault flips next state of (0,01) from 1 to 0; output unchanged.
        let fault = TransitionFault {
            from: 0,
            input: 0b01,
            faulty_next: 0,
            faulty_output: 1,
        };
        // Length-1 test: outputs agree, final state differs -> detected by
        // scan-out.
        assert!(detects(&lion, &fault, 0, &[0b01]));
    }

    #[test]
    fn undetected_when_fault_site_never_exercised() {
        let lion = benchmarks::lion();
        let fault = TransitionFault {
            from: 2,
            input: 0b00,
            faulty_next: 0,
            faulty_output: 0,
        };
        // Tests that never reach state 2 cannot detect it.
        assert!(!detects(&lion, &fault, 0, &[0b00, 0b01, 0b11]));
    }

    #[test]
    fn sampled_universe_is_deterministic() {
        let lion = benchmarks::lion();
        assert_eq!(
            enumerate(&lion, StaUniverse::Sampled(9)),
            enumerate(&lion, StaUniverse::Sampled(9))
        );
        assert_ne!(
            enumerate(&lion, StaUniverse::Sampled(9)),
            enumerate(&lion, StaUniverse::Sampled(10))
        );
    }
}
