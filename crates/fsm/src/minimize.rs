//! Mealy state-equivalence analysis by partition refinement.
//!
//! Two states are *equivalent* when no input sequence distinguishes them by
//! outputs. Equivalence interacts directly with UIO existence: a state that
//! is equivalent to another state can never have a unique input-output
//! sequence, because the equivalent state produces identical output
//! responses to every sequence.

use std::collections::HashMap;

use crate::{InputId, StateId, StateTable};

/// Result of partition refinement over the states of a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Equivalence {
    /// `class_of[s]` is the equivalence-class index of state `s`.
    class_of: Vec<u32>,
    /// Number of distinct classes.
    num_classes: usize,
}

impl Equivalence {
    /// Equivalence-class index of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn class_of(&self, state: StateId) -> u32 {
        self.class_of[state as usize]
    }

    /// Number of equivalence classes (the size of the minimized machine).
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Whether two states are equivalent.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    #[must_use]
    pub fn equivalent(&self, a: StateId, b: StateId) -> bool {
        self.class_of[a as usize] == self.class_of[b as usize]
    }

    /// Whether `state` has no equivalent partner (a necessary condition for
    /// a UIO sequence to exist for it).
    #[must_use]
    pub fn is_distinguishable(&self, state: StateId) -> bool {
        let c = self.class_of[state as usize];
        self.class_of
            .iter()
            .enumerate()
            .all(|(s, &cs)| s == state as usize || cs != c)
    }
}

/// Computes state equivalence classes by Moore-style partition refinement.
///
/// Runs in `O(num_states * num_input_combos * rounds)` with `rounds` bounded
/// by `num_states`.
///
/// # Examples
///
/// ```
/// let lion = scanft_fsm::benchmarks::lion();
/// let eq = scanft_fsm::minimize::equivalence_classes(&lion);
/// // lion is reduced: all 4 states are pairwise distinguishable.
/// assert_eq!(eq.num_classes(), 4);
/// ```
#[must_use]
pub fn equivalence_classes(table: &StateTable) -> Equivalence {
    let n = table.num_states();
    let npic = table.num_input_combos();

    // Initial partition: by output row.
    let mut class_of: Vec<u32> = vec![0; n];
    {
        let mut index: HashMap<Vec<u64>, u32> = HashMap::new();
        for (s, class) in class_of.iter_mut().enumerate() {
            let row: Vec<u64> = (0..npic as InputId)
                .map(|i| table.output(s as StateId, i))
                .collect();
            let next = index.len() as u32;
            *class = *index.entry(row).or_insert(next);
        }
    }

    // Refine: signature = (own class, classes of successors).
    loop {
        let mut index: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut new_class: Vec<u32> = vec![0; n];
        for s in 0..n {
            let sig: Vec<u32> = (0..npic as InputId)
                .map(|i| class_of[table.next_state(s as StateId, i) as usize])
                .collect();
            let key = (class_of[s], sig);
            let next = index.len() as u32;
            new_class[s] = *index.entry(key).or_insert(next);
        }
        let stable = index.len() == class_count(&class_of);
        class_of = new_class;
        if stable {
            break;
        }
    }

    let num_classes = class_count(&class_of);
    Equivalence {
        class_of,
        num_classes,
    }
}

/// Whether the machine is reduced (no two states are equivalent).
#[must_use]
pub fn is_reduced(table: &StateTable) -> bool {
    equivalence_classes(table).num_classes() == table.num_states()
}

/// Builds the reduced (quotient) machine: one state per equivalence class,
/// behaviourally identical to `table` from corresponding states.
///
/// The class containing state 0 becomes state 0 of the quotient (so reset
/// behaviour is preserved); the remaining classes are numbered by their
/// smallest member. State names are taken from that smallest member.
///
/// # Errors
///
/// Propagates [`crate::FsmError`] from table construction (cannot happen
/// for valid inputs, but the builder API is fallible).
///
/// # Examples
///
/// ```
/// let lion = scanft_fsm::benchmarks::lion();
/// let q = scanft_fsm::minimize::quotient(&lion)?;
/// // lion is already reduced: the quotient has the same size.
/// assert_eq!(q.num_states(), 4);
/// # Ok::<(), scanft_fsm::FsmError>(())
/// ```
pub fn quotient(table: &StateTable) -> Result<StateTable, crate::FsmError> {
    let eq = equivalence_classes(table);
    // Representative (smallest member) per class, ordered with state 0's
    // class first, the rest by representative.
    let mut reps: Vec<StateId> = Vec::with_capacity(eq.num_classes());
    let mut class_to_new: HashMap<u32, StateId> = HashMap::new();
    let mut push_class = |class: u32, rep: StateId, reps: &mut Vec<StateId>| {
        if let std::collections::hash_map::Entry::Vacant(e) = class_to_new.entry(class) {
            e.insert(reps.len() as StateId);
            reps.push(rep);
        }
    };
    push_class(eq.class_of(0), 0, &mut reps);
    for s in 0..table.num_states() as StateId {
        push_class(eq.class_of(s), s, &mut reps);
    }

    let mut b = crate::StateTableBuilder::new(
        table.name(),
        table.num_inputs(),
        table.num_outputs(),
        reps.len(),
    )?;
    for (new_id, &rep) in reps.iter().enumerate() {
        b.name_state(new_id as StateId, table.state_name(rep))?;
        for i in 0..table.num_input_combos() as InputId {
            let (next, out) = table.step(rep, i);
            let new_next = class_to_new[&eq.class_of(next)];
            b.set(new_id as StateId, i, new_next, out)?;
        }
    }
    b.build()
}

fn class_count(class_of: &[u32]) -> usize {
    let mut seen = vec![false; class_of.len()];
    let mut count = 0;
    for &c in class_of {
        if !seen[c as usize] {
            seen[c as usize] = true;
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateTableBuilder;

    #[test]
    fn lion_is_reduced() {
        assert!(is_reduced(&crate::benchmarks::lion()));
    }

    #[test]
    fn duplicate_states_are_merged() {
        // States 1 and 2 behave identically.
        let mut b = StateTableBuilder::new("dup", 1, 1, 3).unwrap();
        b.set(0, 0, 1, 0).unwrap();
        b.set(0, 1, 2, 1).unwrap();
        b.set(1, 0, 0, 1).unwrap();
        b.set(1, 1, 1, 0).unwrap();
        b.set(2, 0, 0, 1).unwrap();
        b.set(2, 1, 2, 0).unwrap();
        let t = b.build().unwrap();
        let eq = equivalence_classes(&t);
        assert_eq!(eq.num_classes(), 2);
        assert!(eq.equivalent(1, 2));
        assert!(!eq.equivalent(0, 1));
        assert!(eq.is_distinguishable(0));
        assert!(!eq.is_distinguishable(1));
    }

    #[test]
    fn refinement_propagates_through_successors() {
        // Same outputs everywhere, but state 2 loops while 0/1 swap; with
        // identical output rows everything is equivalent regardless of
        // structure (outputs never differ).
        let mut b = StateTableBuilder::new("quiet", 1, 1, 3).unwrap();
        for s in 0..3 {
            b.set(s, 0, (s + 1) % 3, 0).unwrap();
            b.set(s, 1, s, 0).unwrap();
        }
        let t = b.build().unwrap();
        assert_eq!(equivalence_classes(&t).num_classes(), 1);
    }

    #[test]
    fn quotient_of_reduced_machine_is_isomorphic_in_size() {
        let lion = crate::benchmarks::lion();
        let q = quotient(&lion).unwrap();
        assert_eq!(q.num_states(), 4);
        // Identical behaviour from state 0 on some sequences.
        for seq in [[0u32, 1, 2].as_slice(), &[3, 3, 0, 1], &[2, 2, 1]] {
            assert_eq!(lion.run(0, seq).1, q.run(0, seq).1);
        }
    }

    #[test]
    fn quotient_merges_duplicates_and_preserves_behaviour() {
        let mut b = StateTableBuilder::new("dup", 1, 1, 3).unwrap();
        b.set(0, 0, 1, 0).unwrap();
        b.set(0, 1, 2, 1).unwrap();
        b.set(1, 0, 0, 1).unwrap();
        b.set(1, 1, 1, 0).unwrap();
        b.set(2, 0, 0, 1).unwrap();
        b.set(2, 1, 2, 0).unwrap();
        let t = b.build().unwrap();
        let q = quotient(&t).unwrap();
        assert_eq!(q.num_states(), 2);
        assert!(is_reduced(&q));
        // Behaviour from every original state matches the quotient started
        // at the representative's class.
        let eq = equivalence_classes(&t);
        for s in 0..3u32 {
            // Locate the quotient state whose name matches a member class.
            let class_of_zero = eq.class_of(0);
            let q_state = if eq.class_of(s) == class_of_zero {
                0
            } else {
                1
            };
            for seq in [[0u32, 1, 0].as_slice(), &[1, 1, 0, 0]] {
                assert_eq!(t.run(s, seq).1, q.run(q_state, seq).1, "state {s}");
            }
        }
    }

    #[test]
    fn two_round_refinement_needed() {
        // 0 and 1 share output rows but their successors differ in output.
        let mut b = StateTableBuilder::new("deep", 1, 1, 4).unwrap();
        b.set(0, 0, 2, 0).unwrap();
        b.set(0, 1, 0, 0).unwrap();
        b.set(1, 0, 3, 0).unwrap();
        b.set(1, 1, 1, 0).unwrap();
        b.set(2, 0, 2, 0).unwrap();
        b.set(2, 1, 2, 0).unwrap();
        b.set(3, 0, 3, 1).unwrap();
        b.set(3, 1, 3, 1).unwrap();
        let t = b.build().unwrap();
        let eq = equivalence_classes(&t);
        // State 1 reaches the always-1 state 3, state 0 never does, so the
        // second refinement round splits them apart...
        assert!(!eq.equivalent(0, 1));
        // ...while 0 and 2 both produce all-zero outputs forever and merge.
        assert!(eq.equivalent(0, 2));
        assert_eq!(eq.num_classes(), 3);
    }
}
