//! Unique input-output (UIO) sequence derivation.
//!
//! A sequence `D_s` is a *unique input-output sequence* for state `s` when
//! the output response identifies the state: `B(D_s, s) != B(D_s, s')` for
//! every state `s' != s`, where `B(A, q)` is the output sequence produced
//! from starting state `q` under input sequence `A` (Sabnani & Dahbura's
//! definition, as used in the paper).
//!
//! The derivation below finds, for every state, the **lexicographically
//! first shortest** UIO of length at most `L`, matching the paper's policy
//! of deriving at most one UIO per state and using it throughout test
//! generation. The length bound `L` is the paper's knob trading at-speed
//! sequence length against scan time (Sections 2 and 3, Table 9).
//!
//! # Search
//!
//! The search walks a product automaton breadth-first. A node is the pair
//! `(c, S)` where `c` is the current state of the `s`-track and `S` is the
//! set of current states of the *survivor* tracks — states not yet
//! distinguished from `s` by the input prefix. Applying input `a` keeps a
//! survivor `t` only if `output(t, a) == output(c, a)`, moving it to
//! `next(t, a)`. Two prunings keep the search tractable:
//!
//! 1. **merge pruning** — if a survivor's next state coincides with the
//!    `s`-track's next state, no extension can ever distinguish it, so the
//!    whole branch is abandoned;
//! 2. **visited-set deduplication** — `(c, S)` nodes already expanded are
//!    skipped (survivor identity is irrelevant, only current states matter).
//!
//! Because the queue is FIFO and inputs are expanded in ascending order, the
//! first success is the lexicographically-first shortest UIO. The search is
//! budgeted ([`UioConfig::node_budget`]); exceeding the budget is recorded
//! per state so a truncated search is never silently reported as "no UIO".

use std::collections::HashSet;

use crate::{InputId, StateId, StateTable};

/// A unique input-output sequence for one state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Uio {
    /// The input sequence `D_s`.
    pub inputs: Vec<InputId>,
    /// The expected (fault-free) output response `B(D_s, s)`.
    pub outputs: Vec<crate::OutputWord>,
    /// Final state reached from `s` under `inputs` (the `f.stat` column of
    /// Table 2 in the paper).
    pub final_state: StateId,
}

impl Uio {
    /// Length of the sequence in clock cycles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the sequence is empty (never true for a derived UIO).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Outcome of the UIO search for one state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UioOutcome {
    /// A UIO was found.
    Found(Uio),
    /// No UIO of length `<= max_len` exists (search exhausted).
    None,
    /// The node budget was exhausted before the search completed; a UIO
    /// longer than the deepest completed level may still exist.
    BudgetExceeded {
        /// Number of nodes expanded before giving up.
        nodes: usize,
    },
}

/// Configuration for UIO derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UioConfig {
    /// Maximum sequence length `L`. The paper's default is `L = N_SV` (the
    /// number of state variables) so a UIO costs at most as many cycles as
    /// a scan operation.
    pub max_len: usize,
    /// Maximum number of product-automaton nodes expanded per state before
    /// the search gives up. Prevents pathological blowup on machines with
    /// huge input alphabets (the paper spent 4.3 CPU-days on `nucpwr`).
    pub node_budget: usize,
}

impl UioConfig {
    /// Configuration with the given length bound and the default node
    /// budget.
    #[must_use]
    pub fn with_max_len(max_len: usize) -> Self {
        UioConfig {
            max_len,
            node_budget: 2_000_000,
        }
    }
}

/// The per-state UIO sequences of a machine, plus derivation statistics
/// (the data behind Tables 2 and 4 of the paper).
#[derive(Debug, Clone)]
pub struct UioSet {
    outcomes: Vec<UioOutcome>,
    max_len: usize,
    elapsed_secs: f64,
}

impl UioSet {
    /// The UIO for `state`, if one was found.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn sequence(&self, state: StateId) -> Option<&Uio> {
        match &self.outcomes[state as usize] {
            UioOutcome::Found(u) => Some(u),
            _ => None,
        }
    }

    /// The UIO for `state` only if its length is at most `limit`.
    ///
    /// Because derived UIOs are shortest, restricting the length bound after
    /// the fact is equivalent to deriving with the smaller bound (used for
    /// the Table 9 sweep).
    #[must_use]
    pub fn sequence_capped(&self, state: StateId, limit: usize) -> Option<&Uio> {
        self.sequence(state).filter(|u| u.len() <= limit)
    }

    /// Full outcome (found / none / budget-exceeded) for `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn outcome(&self, state: StateId) -> &UioOutcome {
        &self.outcomes[state as usize]
    }

    /// Number of states with a UIO (the `unique` column of Table 4).
    #[must_use]
    pub fn num_with_uio(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, UioOutcome::Found(_)))
            .count()
    }

    /// Number of states with a UIO of length at most `limit`.
    #[must_use]
    pub fn num_with_uio_capped(&self, limit: usize) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, UioOutcome::Found(u) if u.len() <= limit))
            .count()
    }

    /// Longest derived UIO (the `m.len` column of Table 4), or 0 when no
    /// state has one.
    #[must_use]
    pub fn max_found_len(&self) -> usize {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                UioOutcome::Found(u) => Some(u.len()),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The length bound `L` the set was derived with.
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Wall-clock derivation time in seconds (the `time` column of Table 4).
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_secs
    }

    /// Whether any state's search ran out of budget (results for those
    /// states are lower bounds, not proofs of nonexistence).
    #[must_use]
    pub fn any_budget_exceeded(&self) -> bool {
        self.outcomes
            .iter()
            .any(|o| matches!(o, UioOutcome::BudgetExceeded { .. }))
    }

    /// Number of states the set was derived for (one outcome per state of
    /// the source machine).
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.outcomes.len()
    }
}

/// Derives the UIO (if any) for a single state, bounded by `config`.
///
/// # Examples
///
/// ```
/// use scanft_fsm::uio::{find_uio, UioConfig, UioOutcome};
///
/// let lion = scanft_fsm::benchmarks::lion();
/// // Table 2: state 2 has the UIO (00, 11) ending in state 3.
/// match find_uio(&lion, 2, &UioConfig::with_max_len(2)) {
///     UioOutcome::Found(u) => {
///         assert_eq!(u.inputs, vec![0b00, 0b11]);
///         assert_eq!(u.final_state, 3);
///     }
///     other => panic!("expected a UIO, got {other:?}"),
/// }
/// ```
#[must_use]
pub fn find_uio(table: &StateTable, state: StateId, config: &UioConfig) -> UioOutcome {
    let (outcome, nodes) = find_uio_inner(table, state, config);
    let obs = scanft_obs::global();
    obs.counter("fsm.uio.states_searched").inc();
    obs.counter("fsm.uio.nodes_expanded").add(nodes as u64);
    match &outcome {
        UioOutcome::Found(u) => {
            obs.counter("fsm.uio.found").inc();
            obs.counter(&format!("fsm.uio.found.len{}", u.len())).inc();
        }
        UioOutcome::None => obs.counter("fsm.uio.none").inc(),
        UioOutcome::BudgetExceeded { .. } => obs.counter("fsm.uio.budget_exceeded").inc(),
    }
    outcome
}

fn find_uio_inner(table: &StateTable, state: StateId, config: &UioConfig) -> (UioOutcome, usize) {
    let npic = table.num_input_combos() as InputId;
    let num_states = table.num_states();

    // BFS node: (current s-track state, sorted survivor states, path).
    // Survivors are stored as a sorted Vec<StateId> for hashing.
    struct Node {
        cur: StateId,
        survivors: Vec<StateId>,
        path: Vec<InputId>,
    }

    let initial_survivors: Vec<StateId> =
        (0..num_states as StateId).filter(|&t| t != state).collect();
    if initial_survivors.is_empty() {
        // A one-state machine: the empty sequence vacuously identifies it,
        // but the paper's UIOs are applied sequences; report none.
        return (UioOutcome::None, 0);
    }

    let mut queue = std::collections::VecDeque::new();
    let mut visited: HashSet<(StateId, Vec<StateId>)> = HashSet::new();
    visited.insert((state, initial_survivors.clone()));
    queue.push_back(Node {
        cur: state,
        survivors: initial_survivors,
        path: Vec::new(),
    });

    while let Some(node) = queue.pop_front() {
        if node.path.len() >= config.max_len {
            continue;
        }
        'inputs: for a in 0..npic {
            let (next_cur, out_cur) = table.step(node.cur, a);
            let mut next_survivors: Vec<StateId> = Vec::with_capacity(node.survivors.len());
            for &t in &node.survivors {
                let (nt, ot) = table.step(t, a);
                if ot != out_cur {
                    continue; // distinguished by this input
                }
                if nt == next_cur {
                    // Survivor merged with the s-track: this branch can
                    // never distinguish it. Abandon the input.
                    continue 'inputs;
                }
                next_survivors.push(nt);
            }
            if next_survivors.is_empty() {
                let mut inputs = node.path.clone();
                inputs.push(a);
                let (final_state, outputs) = table.run(state, &inputs);
                return (
                    UioOutcome::Found(Uio {
                        inputs,
                        outputs,
                        final_state,
                    }),
                    visited.len(),
                );
            }
            next_survivors.sort_unstable();
            next_survivors.dedup();
            let key = (next_cur, next_survivors);
            if visited.contains(&key) {
                continue;
            }
            let (next_cur, next_survivors) = key;
            visited.insert((next_cur, next_survivors.clone()));
            // Budget is charged on enqueue so that both time and memory stay
            // bounded even with very large input alphabets.
            if visited.len() > config.node_budget {
                let nodes = visited.len();
                return (UioOutcome::BudgetExceeded { nodes }, nodes);
            }
            let mut path = node.path.clone();
            path.push(a);
            queue.push_back(Node {
                cur: next_cur,
                survivors: next_survivors,
                path,
            });
        }
    }
    (UioOutcome::None, visited.len())
}

/// Derives UIO sequences for every state with the default node budget and
/// length bound `max_len` (the paper uses `max_len = N_SV`).
///
/// # Examples
///
/// ```
/// let lion = scanft_fsm::benchmarks::lion();
/// let uios = scanft_fsm::uio::derive_uios(&lion, 2);
/// assert_eq!(uios.num_with_uio(), 2); // Table 4: lion has 2 states with UIOs
/// assert_eq!(uios.max_found_len(), 2); // Table 4: m.len = 2
/// ```
#[must_use]
pub fn derive_uios(table: &StateTable, max_len: usize) -> UioSet {
    derive_uios_with(table, &UioConfig::with_max_len(max_len))
}

/// Derives UIO sequences for every state with an explicit configuration.
#[must_use]
pub fn derive_uios_with(table: &StateTable, config: &UioConfig) -> UioSet {
    let span = scanft_obs::global().timer("fsm.uio.derive").start();
    let outcomes: Vec<UioOutcome> = (0..table.num_states() as StateId)
        .map(|s| find_uio(table, s, config))
        .collect();
    scanft_obs::global().counter("fsm.uio.machines").inc();
    UioSet {
        outcomes,
        max_len: config.max_len,
        elapsed_secs: span.stop_secs(),
    }
}

/// Checks the defining UIO property directly: the response of `state` to
/// `inputs` differs from the response of every other state.
///
/// Used by tests and available for downstream validation of hand-written
/// sequences.
#[must_use]
pub fn is_uio(table: &StateTable, state: StateId, inputs: &[InputId]) -> bool {
    if inputs.is_empty() {
        return table.num_states() == 1;
    }
    let (_, reference) = table.run(state, inputs);
    (0..table.num_states() as StateId)
        .filter(|&t| t != state)
        .all(|t| table.run(t, inputs).1 != reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::lion;
    use crate::StateTableBuilder;

    fn cfg(l: usize) -> UioConfig {
        UioConfig::with_max_len(l)
    }

    /// Table 2 of the paper, verbatim.
    #[test]
    fn lion_table2_exact() {
        let t = lion();
        match find_uio(&t, 0, &cfg(2)) {
            UioOutcome::Found(u) => {
                assert_eq!(u.inputs, vec![0b00]);
                assert_eq!(u.final_state, 0);
                assert_eq!(u.outputs, vec![0]);
            }
            o => panic!("state 0: {o:?}"),
        }
        assert_eq!(find_uio(&t, 1, &cfg(2)), UioOutcome::None);
        match find_uio(&t, 2, &cfg(2)) {
            UioOutcome::Found(u) => {
                assert_eq!(u.inputs, vec![0b00, 0b11]);
                assert_eq!(u.final_state, 3);
            }
            o => panic!("state 2: {o:?}"),
        }
        assert_eq!(find_uio(&t, 3, &cfg(2)), UioOutcome::None);
    }

    /// The paper's argument that state 1 of lion has no UIO of any length:
    /// every first input leaves an indistinguishable partner.
    #[test]
    fn lion_state1_has_no_uio_even_longer() {
        let t = lion();
        assert_eq!(find_uio(&t, 1, &cfg(10)), UioOutcome::None);
        assert_eq!(find_uio(&t, 3, &cfg(10)), UioOutcome::None);
    }

    #[test]
    fn derive_uios_matches_per_state_search() {
        let t = lion();
        let set = derive_uios(&t, 2);
        assert_eq!(set.num_with_uio(), 2);
        assert_eq!(set.max_found_len(), 2);
        assert_eq!(set.max_len(), 2);
        assert!(!set.any_budget_exceeded());
        assert!(set.sequence(0).is_some());
        assert!(set.sequence(1).is_none());
        assert_eq!(set.sequence_capped(2, 1), None);
        assert!(set.sequence_capped(2, 2).is_some());
    }

    #[test]
    fn found_uios_satisfy_definition() {
        let t = lion();
        let set = derive_uios(&t, 3);
        for s in 0..t.num_states() as StateId {
            if let Some(u) = set.sequence(s) {
                assert!(is_uio(&t, s, &u.inputs), "state {s}");
                let (fin, outs) = t.run(s, &u.inputs);
                assert_eq!(fin, u.final_state);
                assert_eq!(outs, u.outputs);
            }
        }
    }

    #[test]
    fn shortest_and_lexicographically_first() {
        // Machine where state 0 has both (1) and (0,1) as identifying
        // prefixes — must return the length-1 one.
        let mut b = StateTableBuilder::new("m", 1, 1, 2).unwrap();
        b.set(0, 0, 0, 0).unwrap();
        b.set(0, 1, 1, 1).unwrap();
        b.set(1, 0, 1, 0).unwrap();
        b.set(1, 1, 0, 0).unwrap();
        let t = b.build().unwrap();
        match find_uio(&t, 0, &cfg(4)) {
            UioOutcome::Found(u) => assert_eq!(u.inputs, vec![1]),
            o => panic!("{o:?}"),
        }
        match find_uio(&t, 1, &cfg(4)) {
            UioOutcome::Found(u) => assert_eq!(u.inputs, vec![1]),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let t = crate::benchmarks::build("bbsse").unwrap();
        let config = UioConfig {
            max_len: 4,
            node_budget: 1,
        };
        let mut saw_budget = false;
        for s in 0..t.num_states() as StateId {
            if matches!(find_uio(&t, s, &config), UioOutcome::BudgetExceeded { .. }) {
                saw_budget = true;
            }
        }
        // With a budget of one node, any state lacking a length-1 UIO must
        // report budget exhaustion rather than "no UIO".
        let full = derive_uios(&t, 4);
        if full.num_with_uio() > full.num_with_uio_capped(1) {
            assert!(saw_budget);
        }
    }

    #[test]
    fn single_state_machine_has_no_uio() {
        let mut b = StateTableBuilder::new("one", 1, 1, 1).unwrap();
        b.set(0, 0, 0, 0).unwrap();
        b.set(0, 1, 0, 1).unwrap();
        let t = b.build().unwrap();
        assert_eq!(find_uio(&t, 0, &cfg(3)), UioOutcome::None);
        assert!(is_uio(&t, 0, &[]));
    }

    #[test]
    fn equivalent_states_never_have_uios() {
        // Cross-check with the minimizer on a machine with duplicate states.
        let mut b = StateTableBuilder::new("dup", 1, 1, 4).unwrap();
        b.set(0, 0, 1, 0).unwrap();
        b.set(0, 1, 2, 1).unwrap();
        b.set(1, 0, 0, 1).unwrap();
        b.set(1, 1, 1, 0).unwrap();
        b.set(2, 0, 0, 1).unwrap();
        b.set(2, 1, 2, 0).unwrap();
        b.set(3, 0, 3, 1).unwrap();
        b.set(3, 1, 0, 1).unwrap();
        let t = b.build().unwrap();
        let eq = crate::minimize::equivalence_classes(&t);
        let set = derive_uios(&t, 6);
        for s in 0..4 {
            if !eq.is_distinguishable(s) {
                assert!(set.sequence(s).is_none(), "state {s}");
            }
        }
    }

    #[test]
    fn capped_counts_are_monotone() {
        let t = crate::benchmarks::build("beecount").unwrap();
        let set = derive_uios(&t, t.num_state_vars());
        let mut prev = 0;
        for l in 1..=t.num_state_vars() {
            let c = set.num_with_uio_capped(l);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(prev, set.num_with_uio());
    }
}
