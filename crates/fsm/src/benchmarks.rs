//! The paper's 31-circuit benchmark suite.
//!
//! The paper evaluates on MCNC finite-state machine benchmarks. Those files
//! are not redistributable here, so this module provides:
//!
//! - [`lion`]: embedded **exactly** as printed in Table 1 of the paper;
//! - [`shiftreg`]: reconstructed structurally (a 3-bit shift register is
//!   fully determined by its name and parameters);
//! - the remaining circuits as **deterministic synthetic machines** with the
//!   published parameters (`pi`, number of states, `sv`) from Table 4, so
//!   that every structural quantity of the paper's tables — transition
//!   counts, scan-cycle baselines — matches exactly, while table *contents*
//!   are seeded pseudo-random (see `DESIGN.md` for the substitution
//!   rationale).
//!
//! All machines are completely specified over all `2^sv` states, matching
//! the paper's setting (full scan can load any state, and the `trans`
//! columns of Tables 5 and 7 equal `2^sv * 2^pi` for every circuit).

use crate::rng::SplitMix64;
use crate::table::{StateTable, StateTableBuilder};
use crate::{FsmError, InputId, OutputWord, StateId};

/// Static parameters of one benchmark circuit (the `pi`, `states`, `sv`
/// columns of Table 4 of the paper, plus our chosen output width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Circuit name as it appears in the paper's tables.
    pub name: &'static str,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs (not listed in the paper; chosen to match
    /// the well-known MCNC values where applicable, plausible otherwise).
    pub num_outputs: usize,
    /// Number of states (`2^sv`).
    pub num_states: usize,
    /// Number of state variables.
    pub num_state_vars: usize,
}

impl CircuitSpec {
    /// Number of state transitions `2^sv * 2^pi`.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.num_states << self.num_inputs
    }
}

/// All 31 circuits of Table 4, in the paper's order.
pub const CIRCUITS: &[CircuitSpec] = &[
    spec("bbara", 4, 2, 16, 4),
    spec("bbsse", 7, 7, 16, 4),
    spec("bbtas", 2, 2, 8, 3),
    spec("beecount", 3, 4, 8, 3),
    spec("cse", 7, 7, 16, 4),
    spec("dk14", 3, 5, 8, 3),
    spec("dk15", 3, 5, 4, 2),
    spec("dk16", 2, 3, 32, 5),
    spec("dk17", 2, 3, 8, 3),
    spec("dk27", 1, 1, 8, 3),
    spec("dk512", 1, 3, 16, 4),
    spec("dvram", 8, 6, 64, 6),
    spec("ex2", 2, 2, 32, 5),
    spec("ex3", 2, 2, 16, 4),
    spec("ex4", 5, 9, 16, 4),
    spec("ex5", 2, 2, 8, 3),
    spec("ex6", 5, 8, 8, 3),
    spec("ex7", 2, 2, 16, 4),
    spec("fetch", 9, 6, 32, 5),
    spec("keyb", 7, 2, 32, 5),
    spec("lion", 2, 1, 4, 2),
    spec("lion9", 2, 1, 8, 3),
    spec("log", 9, 6, 32, 5),
    spec("mark1", 4, 16, 16, 4),
    spec("mc", 3, 5, 4, 2),
    spec("nucpwr", 13, 7, 32, 5),
    spec("opus", 5, 6, 16, 4),
    spec("rie", 9, 6, 32, 5),
    spec("shiftreg", 1, 1, 8, 3),
    spec("tav", 4, 4, 4, 2),
    spec("train11", 2, 1, 16, 4),
];

const fn spec(
    name: &'static str,
    num_inputs: usize,
    num_outputs: usize,
    num_states: usize,
    num_state_vars: usize,
) -> CircuitSpec {
    CircuitSpec {
        name,
        num_inputs,
        num_outputs,
        num_states,
        num_state_vars,
    }
}

/// Looks up the parameters of a named circuit.
#[must_use]
pub fn find_spec(name: &str) -> Option<&'static CircuitSpec> {
    CIRCUITS.iter().find(|s| s.name == name)
}

/// Builds a benchmark circuit by name.
///
/// # Errors
///
/// Returns [`FsmError::UnknownCircuit`] when `name` is not one of the 31
/// circuits of Table 4.
///
/// # Examples
///
/// ```
/// let t = scanft_fsm::benchmarks::build("dk512")?;
/// assert_eq!(t.num_transitions(), 32); // the `trans` column of Table 5
/// # Ok::<(), scanft_fsm::FsmError>(())
/// ```
pub fn build(name: &str) -> Result<StateTable, FsmError> {
    match name {
        "lion" => Ok(lion()),
        "shiftreg" => Ok(shiftreg()),
        _ => {
            let spec = find_spec(name).ok_or_else(|| FsmError::UnknownCircuit {
                name: name.to_owned(),
            })?;
            Ok(synthetic(spec))
        }
    }
}

/// Builds every benchmark circuit, in the paper's order.
#[must_use]
pub fn build_all() -> Vec<StateTable> {
    CIRCUITS
        .iter()
        .map(|s| build(s.name).expect("registry names are valid"))
        .collect()
}

/// The MCNC benchmark `lion`, embedded exactly from Table 1 of the paper:
/// four states, two inputs, one output.
///
/// # Examples
///
/// ```
/// let lion = scanft_fsm::benchmarks::lion();
/// // Row 1 of Table 1: state 1 under input 10 goes to state 3, output 1.
/// assert_eq!(lion.step(1, 0b10), (3, 1));
/// ```
#[must_use]
pub fn lion() -> StateTable {
    // Table 1 rows: (next state, output) for x1x2 = 00, 01, 10, 11.
    const ROWS: [[(StateId, OutputWord); 4]; 4] = [
        [(0, 0), (1, 1), (0, 0), (0, 0)],
        [(1, 1), (1, 1), (3, 1), (0, 0)],
        [(2, 1), (2, 1), (3, 1), (3, 1)],
        [(1, 1), (2, 1), (3, 1), (3, 1)],
    ];
    let mut b = StateTableBuilder::new("lion", 2, 1, 4).expect("static dimensions are valid");
    for (s, row) in ROWS.iter().enumerate() {
        for (i, &(ns, z)) in row.iter().enumerate() {
            b.set(s as StateId, i as InputId, ns, z)
                .expect("static entries are valid");
        }
    }
    b.build().expect("table is completely specified")
}

/// The MCNC benchmark `shiftreg`, reconstructed structurally: a 3-bit shift
/// register whose next state shifts in the input bit and whose output is the
/// bit shifted out.
#[must_use]
pub fn shiftreg() -> StateTable {
    let mut b = StateTableBuilder::new("shiftreg", 1, 1, 8).expect("static dimensions are valid");
    for s in 0..8u32 {
        for x in 0..2u32 {
            let next = ((s << 1) | x) & 0b111;
            let out = OutputWord::from(s >> 2 & 1);
            b.set(s, x, next, out).expect("static entries are valid");
        }
    }
    b.build().expect("table is completely specified")
}

/// Builds a deterministic synthetic machine for the given parameters.
///
/// The machine is seeded from the circuit name, so repeated builds are
/// bit-identical. Uniformly random tables would give nearly every state a
/// length-1 UIO (nothing like the MCNC machines), so the generator mimics
/// the low-entropy structure of real controllers:
///
/// - outputs come from a small per-circuit palette and depend only on a few
///   input bits, through per-*class* output rows;
/// - a fraction of states are near-copies of a class representative (same
///   output row, mostly the same successors), so distinguishing them takes
///   multi-step divergence — or is impossible, exactly like the paper's
///   UIO-less states;
/// - successor rows also depend on few input bits, with sparse per-entry
///   random deviations providing the divergence that longer UIOs exploit.
#[must_use]
pub fn synthetic(spec: &CircuitSpec) -> StateTable {
    let mut rng = SplitMix64::from_name(spec.name);
    let npic = 1usize << spec.num_inputs;
    let states = spec.num_states;

    // Output palette: 2-4 distinct words.
    let max_words: u64 = if spec.num_outputs >= 63 {
        u64::MAX
    } else {
        1u64 << spec.num_outputs
    };
    let palette_len = (2 + rng.next_below(3)).min(max_words);
    let mut palette: Vec<OutputWord> = Vec::with_capacity(palette_len as usize);
    while palette.len() < palette_len as usize {
        let w = rng.next_below(max_words);
        if !palette.contains(&w) {
            palette.push(w);
        }
    }

    // Some states are near-copies of earlier ones (shared class rows).
    let copies = rng.next_below(states as u64 / 2 + 1) as usize;
    let classes = states - copies;

    // Output and successor rows depend on 1-2 low input bits each.
    let out_cols = (1usize << (rng.next_below(2) as usize + 1)).min(npic);
    let succ_cols = (1usize << (rng.next_below(2) as usize + 1)).min(npic);
    let out_rows: Vec<Vec<OutputWord>> = (0..classes)
        .map(|_| {
            (0..out_cols)
                .map(|_| palette[rng.next_below(palette_len) as usize])
                .collect()
        })
        .collect();
    let succ_rows: Vec<Vec<StateId>> = (0..classes)
        .map(|_| {
            (0..succ_cols)
                .map(|_| rng.next_below(states as u64) as StateId)
                .collect()
        })
        .collect();
    // One entry in `deviate_q` leaves the class successor row.
    let deviate_q = 4 + rng.next_below(9);

    let mut b = StateTableBuilder::new(
        spec.name,
        spec.num_inputs,
        spec.num_outputs,
        spec.num_states,
    )
    .expect("registry dimensions are valid");
    for s in 0..states as StateId {
        let class = s as usize % classes;
        for i in 0..npic as InputId {
            let next = if rng.next_below(deviate_q) == 0 {
                rng.next_below(states as u64) as StateId
            } else {
                succ_rows[class][i as usize % succ_cols]
            };
            let out = out_rows[class][i as usize % out_cols];
            b.set(s, i, next, out).expect("generated entries are valid");
        }
    }
    b.build().expect("generator specifies every entry")
}

/// Builds a uniformly random completely-specified machine from an explicit
/// seed — the workhorse of the cross-crate property tests and randomized
/// workloads.
///
/// Unlike [`synthetic`], outputs are drawn uniformly (no palette), and the
/// state count need not be a power of two.
///
/// # Errors
///
/// Returns [`FsmError::InvalidDimension`] for dimensions out of range (see
/// [`StateTableBuilder::new`]).
pub fn random_machine(
    name: &str,
    num_inputs: usize,
    num_outputs: usize,
    num_states: usize,
    seed: u64,
) -> Result<StateTable, FsmError> {
    let mut rng = SplitMix64::new(seed);
    let mut b = StateTableBuilder::new(name, num_inputs, num_outputs, num_states)?;
    let max_out: u64 = if num_outputs >= 64 {
        u64::MAX
    } else {
        1u64 << num_outputs
    };
    for s in 0..num_states as StateId {
        for i in 0..(1u32 << num_inputs) {
            let next = rng.next_below(num_states as u64) as StateId;
            let out = if max_out == u64::MAX {
                rng.next_u64()
            } else {
                rng.next_below(max_out)
            };
            b.set(s, i, next, out)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper, all sixteen entries.
    #[test]
    fn lion_matches_table1_exactly() {
        let t = lion();
        let expect: [[(StateId, OutputWord); 4]; 4] = [
            [(0, 0), (1, 1), (0, 0), (0, 0)],
            [(1, 1), (1, 1), (3, 1), (0, 0)],
            [(2, 1), (2, 1), (3, 1), (3, 1)],
            [(1, 1), (2, 1), (3, 1), (3, 1)],
        ];
        for s in 0..4u32 {
            for i in 0..4u32 {
                assert_eq!(t.step(s, i), expect[s as usize][i as usize], "({s},{i})");
            }
        }
    }

    #[test]
    fn registry_has_31_circuits_with_consistent_dimensions() {
        assert_eq!(CIRCUITS.len(), 31);
        for spec in CIRCUITS {
            assert_eq!(spec.num_states, 1 << spec.num_state_vars, "{}", spec.name);
            let t = build(spec.name).unwrap();
            assert_eq!(t.num_inputs(), spec.num_inputs, "{}", spec.name);
            assert_eq!(t.num_outputs(), spec.num_outputs, "{}", spec.name);
            assert_eq!(t.num_states(), spec.num_states, "{}", spec.name);
            assert_eq!(t.num_state_vars(), spec.num_state_vars, "{}", spec.name);
            assert_eq!(t.num_transitions(), spec.num_transitions(), "{}", spec.name);
        }
    }

    /// The `trans` column of Table 5, verified against the paper for every
    /// circuit.
    #[test]
    fn transition_counts_match_table5() {
        let expect: &[(&str, usize)] = &[
            ("bbara", 256),
            ("bbsse", 2048),
            ("bbtas", 32),
            ("beecount", 64),
            ("cse", 2048),
            ("dk14", 64),
            ("dk15", 32),
            ("dk16", 128),
            ("dk17", 32),
            ("dk27", 16),
            ("dk512", 32),
            ("dvram", 16384),
            ("ex2", 128),
            ("ex3", 64),
            ("ex4", 512),
            ("ex5", 32),
            ("ex6", 256),
            ("ex7", 64),
            ("fetch", 16384),
            ("keyb", 4096),
            ("lion", 16),
            ("lion9", 32),
            ("log", 16384),
            ("mark1", 256),
            ("mc", 32),
            ("nucpwr", 262144),
            ("opus", 512),
            ("rie", 16384),
            ("shiftreg", 16),
            ("tav", 64),
            ("train11", 64),
        ];
        assert_eq!(expect.len(), CIRCUITS.len());
        for &(name, trans) in expect {
            let spec = find_spec(name).unwrap();
            assert_eq!(spec.num_transitions(), trans, "{name}");
        }
    }

    #[test]
    fn synthetic_machines_are_deterministic() {
        let a = build("bbtas").unwrap();
        let b = build("bbtas").unwrap();
        assert_eq!(a, b);
        let c = build("beecount").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn shiftreg_shifts() {
        let t = shiftreg();
        // 0b101 shifting in 1 -> 0b011, output = old MSB = 1.
        assert_eq!(t.step(0b101, 1), (0b011, 1));
        assert_eq!(t.step(0b001, 0), (0b010, 0));
        // Every state of a shift register has a UIO: scan its 3 bits out.
        let uios = crate::uio::derive_uios(&t, 3);
        assert_eq!(uios.num_with_uio(), 8);
    }

    #[test]
    fn unknown_circuit_is_an_error() {
        assert!(matches!(
            build("nosuch"),
            Err(FsmError::UnknownCircuit { .. })
        ));
        assert!(find_spec("nosuch").is_none());
    }

    #[test]
    fn build_all_builds_everything_small_quickly() {
        // Smoke test over the full registry (table construction only).
        let all = build_all();
        assert_eq!(all.len(), 31);
        let total: usize = all.iter().map(StateTable::num_transitions).sum();
        assert_eq!(total, 338_576);
    }
}
