//! KISS2 state-table interchange format.
//!
//! KISS2 is the format the MCNC FSM benchmarks are distributed in. A file
//! declares `.i` inputs, `.o` outputs, optionally `.p` product terms, `.s`
//! states and `.r` reset state, followed by one line per product term:
//!
//! ```text
//! .i 2
//! .o 1
//! .s 4
//! .r st0
//! 00 st0 st0 0
//! -1 st0 st1 1
//! ...
//! .e
//! ```
//!
//! Input cubes may contain `-` (don't care) and are expanded to all matching
//! input combinations. Output cubes may contain `-` for unspecified output
//! bits, which this reader resolves to `0` (the conventional completion).
//! Next states may be `*` or `-` for "unspecified"; such entries are left
//! unspecified and resolved by the chosen [`Completion`] policy.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::table::{StateTable, StateTableBuilder};
use crate::{FsmError, InputId, OutputWord, StateId};

/// Policy for entries a KISS2 source leaves unspecified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Completion {
    /// Fail with [`FsmError::IncompletelySpecified`] if any `(state, input)`
    /// has no product term.
    Reject,
    /// Complete unspecified entries with a self-loop and all-zero outputs.
    /// This is how the benchmark machines are made completely specified
    /// before test generation (full scan makes every state reachable, so the
    /// machine must define behaviour everywhere).
    #[default]
    SelfLoop,
}

/// Parses KISS2 text into a [`StateTable`].
///
/// State symbols are assigned indices in order of first appearance, except
/// that the `.r` reset state (when declared) gets index 0, matching the
/// all-zero scan-in state.
///
/// # Errors
///
/// Returns [`FsmError::ParseKiss`] on malformed input, or
/// [`FsmError::IncompletelySpecified`] under [`Completion::Reject`] when a
/// `(state, input)` pair is not covered by any product term. Conflicting
/// product terms (same state and overlapping input cubes with different
/// behaviour) are reported as parse errors.
///
/// # Examples
///
/// ```
/// let src = "\
/// .i 1
/// .o 1
/// .s 2
/// .r a
/// 0 a a 0
/// 1 a b 1
/// - b a 1
/// .e
/// ";
/// let t = scanft_fsm::kiss::parse(src)?;
/// assert_eq!(t.num_states(), 2);
/// assert_eq!(t.next_state(0, 1), 1);
/// # Ok::<(), scanft_fsm::FsmError>(())
/// ```
pub fn parse(text: &str) -> Result<StateTable, FsmError> {
    parse_with(text, "kiss2", Completion::default())
}

/// Parses KISS2 text with an explicit machine name and completion policy.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_with(text: &str, name: &str, completion: Completion) -> Result<StateTable, FsmError> {
    let mut decl_inputs: Option<usize> = None;
    let mut decl_outputs: Option<usize> = None;
    let mut decl_states: Option<usize> = None;
    let mut reset: Option<String> = None;
    let mut terms: Vec<(usize, String, String, String, String)> = Vec::new();

    for (line_no, raw) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let key = parts.next().unwrap_or("");
            let value = parts.next();
            match key {
                "i" => decl_inputs = Some(parse_count(value, line_no, "`.i`")?),
                "o" => decl_outputs = Some(parse_count(value, line_no, "`.o`")?),
                "s" => decl_states = Some(parse_count(value, line_no, "`.s`")?),
                "p" => {
                    // Product-term count: informational, validated after read.
                    let _ = parse_count(value, line_no, "`.p`")?;
                }
                "r" => {
                    reset = Some(
                        value
                            .ok_or_else(|| FsmError::ParseKiss {
                                line: line_no,
                                message: "`.r` needs a state symbol".into(),
                            })?
                            .to_owned(),
                    );
                }
                "e" | "end" => break,
                other => {
                    return Err(FsmError::ParseKiss {
                        line: line_no,
                        message: format!("unknown directive `.{other}`"),
                    });
                }
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(FsmError::ParseKiss {
                line: line_no,
                message: format!("expected 4 fields in product term, found {}", fields.len()),
            });
        }
        terms.push((
            line_no,
            fields[0].to_owned(),
            fields[1].to_owned(),
            fields[2].to_owned(),
            fields[3].to_owned(),
        ));
    }

    let num_inputs = decl_inputs.ok_or_else(|| FsmError::ParseKiss {
        line: 0,
        message: "missing `.i` declaration".into(),
    })?;
    let num_outputs = decl_outputs.ok_or_else(|| FsmError::ParseKiss {
        line: 0,
        message: "missing `.o` declaration".into(),
    })?;

    // Assign state indices: reset first, then order of first appearance.
    let mut state_index: HashMap<String, StateId> = HashMap::new();
    let mut state_names: Vec<String> = Vec::new();
    let mut intern = |sym: &str, state_names: &mut Vec<String>| -> StateId {
        *state_index.entry(sym.to_owned()).or_insert_with(|| {
            state_names.push(sym.to_owned());
            (state_names.len() - 1) as StateId
        })
    };
    if let Some(r) = &reset {
        intern(r, &mut state_names);
    }
    // Present states first (in order of appearance), then any next states
    // that never occur as present states. This keeps the numbering stable
    // for row-grouped files, so `write` followed by `parse` round-trips.
    for (_, _, ps, _, _) in &terms {
        intern(ps, &mut state_names);
    }
    for (_, _, _, ns, _) in &terms {
        if ns != "*" && ns != "-" {
            intern(ns, &mut state_names);
        }
    }
    let num_states = state_names.len().max(decl_states.unwrap_or(0)).max(1);
    for extra in state_names.len()..num_states {
        state_names.push(format!("s{extra}"));
    }

    let mut builder = StateTableBuilder::new(name, num_inputs, num_outputs, num_states)?;
    for (s, n) in state_names.iter().enumerate() {
        builder.name_state(s as StateId, n)?;
    }

    // Track which cells were set to detect conflicting overlapping terms.
    let mut seen: Vec<Option<(StateId, OutputWord)>> = vec![None; num_states << num_inputs];
    for (line_no, cube, ps, ns, out_cube) in &terms {
        let ps_id = state_index[ps];
        let ns_id = if ns == "*" || ns == "-" {
            None
        } else {
            Some(state_index[ns])
        };
        let output = parse_output_cube(out_cube, num_outputs, *line_no)?;
        for input in expand_cube(cube, num_inputs, *line_no)? {
            let Some(ns_id) = ns_id else { continue };
            let cell = ps_id as usize * (1 << num_inputs) + input as usize;
            if let Some((prev_ns, prev_out)) = seen[cell] {
                if (prev_ns, prev_out) != (ns_id, output) {
                    return Err(FsmError::ParseKiss {
                        line: *line_no,
                        message: format!(
                            "conflicting product terms for state {ps}, input {}",
                            crate::format_input(input, num_inputs)
                        ),
                    });
                }
                continue;
            }
            seen[cell] = Some((ns_id, output));
            builder.set(ps_id, input, ns_id, output)?;
        }
    }

    match completion {
        Completion::Reject => builder.build(),
        Completion::SelfLoop => Ok(builder.build_completed()),
    }
}

/// Serializes a [`StateTable`] to KISS2 text (completely specified, one
/// product term per `(state, input)` entry, reset state = state 0).
///
/// The output round-trips through [`parse`].
#[must_use]
pub fn write(table: &StateTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", table.name());
    let _ = writeln!(out, ".i {}", table.num_inputs());
    let _ = writeln!(out, ".o {}", table.num_outputs());
    let _ = writeln!(out, ".p {}", table.num_transitions());
    let _ = writeln!(out, ".s {}", table.num_states());
    let _ = writeln!(out, ".r {}", table.state_name(0));
    for t in table.transitions() {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            crate::format_input(t.input, table.num_inputs()),
            table.state_name(t.from),
            table.state_name(t.to),
            crate::format_output(t.output, table.num_outputs()),
        );
    }
    out.push_str(".e\n");
    out
}

fn parse_count(value: Option<&str>, line: usize, what: &str) -> Result<usize, FsmError> {
    value
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| FsmError::ParseKiss {
            line,
            message: format!("{what} needs a non-negative integer"),
        })
}

fn parse_output_cube(cube: &str, num_outputs: usize, line: usize) -> Result<OutputWord, FsmError> {
    if cube.len() != num_outputs {
        return Err(FsmError::ParseKiss {
            line,
            message: format!(
                "output cube `{cube}` has {} bits, expected {num_outputs}",
                cube.len()
            ),
        });
    }
    let mut word: OutputWord = 0;
    for ch in cube.chars() {
        word = (word << 1)
            | match ch {
                '1' => 1,
                // `-` = unspecified output bit: resolve to 0.
                '0' | '-' => 0,
                other => {
                    return Err(FsmError::ParseKiss {
                        line,
                        message: format!("invalid output digit `{other}`"),
                    });
                }
            };
    }
    Ok(word)
}

fn expand_cube(cube: &str, num_inputs: usize, line: usize) -> Result<Vec<InputId>, FsmError> {
    if cube.len() != num_inputs {
        return Err(FsmError::ParseKiss {
            line,
            message: format!(
                "input cube `{cube}` has {} bits, expected {num_inputs}",
                cube.len()
            ),
        });
    }
    let mut base: InputId = 0;
    let mut free_bits: Vec<u32> = Vec::new();
    for (pos, ch) in cube.chars().enumerate() {
        let bit = (num_inputs - 1 - pos) as u32;
        match ch {
            '1' => base |= 1 << bit,
            '0' => {}
            '-' => free_bits.push(bit),
            other => {
                return Err(FsmError::ParseKiss {
                    line,
                    message: format!("invalid input digit `{other}`"),
                });
            }
        }
    }
    let mut combos = Vec::with_capacity(1 << free_bits.len());
    for mask in 0..(1u32 << free_bits.len()) {
        let mut input = base;
        for (k, bit) in free_bits.iter().enumerate() {
            if mask >> k & 1 == 1 {
                input |= 1 << bit;
            }
        }
        combos.push(input);
    }
    combos.sort_unstable();
    Ok(combos)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
.i 2
.o 1
.s 2
.r a
# a comment line
0- a a 0
1- a b 1
-- b a 1
.e
";

    #[test]
    fn parses_cubes_and_symbols() {
        let t = parse(SMALL).unwrap();
        assert_eq!(t.num_inputs(), 2);
        assert_eq!(t.num_states(), 2);
        assert_eq!(t.state_name(0), "a");
        assert_eq!(t.state_name(1), "b");
        assert_eq!(t.step(0, 0b00), (0, 0));
        assert_eq!(t.step(0, 0b01), (0, 0));
        assert_eq!(t.step(0, 0b10), (1, 1));
        assert_eq!(t.step(0, 0b11), (1, 1));
        for i in 0..4 {
            assert_eq!(t.step(1, i), (0, 1));
        }
    }

    #[test]
    fn reset_state_gets_index_zero() {
        let src = ".i 1\n.o 1\n.r z\n0 a z 0\n1 a a 1\n0 z a 1\n1 z z 0\n.e\n";
        let t = parse(src).unwrap();
        assert_eq!(t.state_name(0), "z");
        assert_eq!(t.state_name(1), "a");
    }

    #[test]
    fn incomplete_table_rejected_or_completed() {
        let src = ".i 1\n.o 1\n0 a b 1\n0 b a 0\n.e\n";
        let err = parse_with(src, "x", Completion::Reject).unwrap_err();
        assert!(matches!(err, FsmError::IncompletelySpecified { .. }));
        let t = parse_with(src, "x", Completion::SelfLoop).unwrap();
        assert_eq!(t.step(0, 1), (0, 0));
        assert_eq!(t.step(1, 1), (1, 0));
    }

    #[test]
    fn conflicting_terms_detected() {
        let src = ".i 1\n.o 1\n- a a 0\n1 a b 1\n.e\n";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, FsmError::ParseKiss { .. }));
    }

    #[test]
    fn duplicate_consistent_terms_allowed() {
        let src = ".i 1\n.o 1\n- a a 0\n1 a a 0\n.e\n";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn unspecified_next_state_star() {
        let src = ".i 1\n.o 1\n0 a b 1\n1 a * 0\n- b b 0\n.e\n";
        let t = parse(src).unwrap();
        // (a, 1) unspecified -> self loop, output 0.
        assert_eq!(t.step(0, 1), (0, 0));
    }

    #[test]
    fn write_round_trips() {
        let t = parse(SMALL).unwrap();
        let text = write(&t);
        let t2 = parse_with(&text, t.name(), Completion::Reject).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn lion_round_trips() {
        let lion = crate::benchmarks::lion();
        let text = write(&lion);
        let back = parse_with(&text, "lion", Completion::Reject).unwrap();
        assert_eq!(lion, back);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let src = ".i 1\n.o 1\nbogus line here extra\n.e\n";
        match parse(src) {
            Err(FsmError::ParseKiss { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn bad_digits_rejected() {
        assert!(parse(".i 1\n.o 1\n2 a a 0\n.e\n").is_err());
        assert!(parse(".i 1\n.o 1\n0 a a x\n.e\n").is_err());
        assert!(parse(".i 1\n.o 1\n00 a a 0\n.e\n").is_err());
        assert!(parse(".i 1\n.o 1\n0 a a 00\n.e\n").is_err());
        assert!(parse(".i 1\n.o 1\n.q 3\n.e\n").is_err());
        assert!(parse(".o 1\n0 a a 0\n.e\n").is_err());
        assert!(parse(".i 1\n0 a a 0\n.e\n").is_err());
    }
}
