use std::fmt;

use crate::{FsmError, InputId, OutputWord, StateId};

/// Maximum number of primary inputs supported (input combinations are
/// enumerated densely as `2^pi` table columns).
pub const MAX_INPUTS: usize = 16;
/// Maximum number of primary outputs supported (packed into a [`OutputWord`]).
pub const MAX_OUTPUTS: usize = 64;
/// Maximum number of state variables supported.
pub const MAX_STATE_VARS: usize = 20;

/// A completely-specified Mealy machine described by its state table, the
/// circuit description used throughout the paper.
///
/// The table has one row per state and one column per primary-input
/// combination; each entry holds the next state and the primary-output
/// combination. State indices double as the binary state encoding used by
/// the default synthesis flow, and — because the circuits are fully scanned —
/// every state of the `2^sv` code space is loadable, so the benchmark
/// machines are completely specified over all `2^sv` states.
///
/// # Examples
///
/// ```
/// use scanft_fsm::StateTable;
///
/// let lion = scanft_fsm::benchmarks::lion();
/// assert_eq!(lion.num_states(), 4);
/// assert_eq!(lion.num_input_combos(), 4);
/// // Transition 0 --01--> 1 with output 1 (Table 1 of the paper).
/// assert_eq!(lion.next_state(0, 0b01), 1);
/// assert_eq!(lion.output(0, 0b01), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateTable {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    num_state_vars: usize,
    num_states: usize,
    /// `next[state * num_input_combos + input]`
    next: Vec<StateId>,
    /// `out[state * num_input_combos + input]`
    out: Vec<OutputWord>,
    state_names: Vec<String>,
}

impl StateTable {
    /// Name of the circuit (benchmark name or user-assigned).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs (`pi` in Table 4 of the paper).
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary-input combinations, `N_PIC = 2^pi`.
    #[must_use]
    pub fn num_input_combos(&self) -> usize {
        1 << self.num_inputs
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of state variables, `sv` (the scan chain length `N_SV`).
    #[must_use]
    pub fn num_state_vars(&self) -> usize {
        self.num_state_vars
    }

    /// Number of states `N_ST`.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of state transitions, `N_ST * N_PIC` — also the number of
    /// tests when every transition is tested separately (the `trans` column
    /// of Table 5).
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.num_states * self.num_input_combos()
    }

    /// Display name of a state (symbolic name when parsed from KISS2,
    /// decimal index otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn state_name(&self, state: StateId) -> &str {
        &self.state_names[state as usize]
    }

    /// Next state for `(state, input)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `input` is out of range.
    #[must_use]
    pub fn next_state(&self, state: StateId, input: InputId) -> StateId {
        self.next[self.idx(state, input)]
    }

    /// Output combination for `(state, input)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `input` is out of range.
    #[must_use]
    pub fn output(&self, state: StateId, input: InputId) -> OutputWord {
        self.out[self.idx(state, input)]
    }

    /// Next state and output combination for `(state, input)` in one lookup.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `input` is out of range.
    #[must_use]
    pub fn step(&self, state: StateId, input: InputId) -> (StateId, OutputWord) {
        let i = self.idx(state, input);
        (self.next[i], self.out[i])
    }

    /// Applies an input sequence starting from `state`, returning the final
    /// state and the produced output sequence `B(seq, state)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or any input in `seq` is out of range.
    #[must_use]
    pub fn run(&self, state: StateId, seq: &[InputId]) -> (StateId, Vec<OutputWord>) {
        let mut current = state;
        let mut outputs = Vec::with_capacity(seq.len());
        for &input in seq {
            let (next, out) = self.step(current, input);
            outputs.push(out);
            current = next;
        }
        (current, outputs)
    }

    /// Final state reached from `state` under `seq`, without collecting
    /// outputs.
    ///
    /// # Panics
    ///
    /// Panics if `state` or any input in `seq` is out of range.
    #[must_use]
    pub fn run_state(&self, state: StateId, seq: &[InputId]) -> StateId {
        seq.iter().fold(state, |s, &i| self.next_state(s, i))
    }

    /// Iterates over all transitions in the canonical order used by the test
    /// generation procedure: states ascending, input combinations ascending.
    #[must_use]
    pub fn transitions(&self) -> TransitionIter<'_> {
        TransitionIter {
            table: self,
            pos: 0,
        }
    }

    /// Bounds-checked transition lookup.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::StateOutOfRange`] or [`FsmError::InputOutOfRange`]
    /// when the coordinates fall outside the table.
    pub fn transition(&self, state: StateId, input: InputId) -> Result<Transition, FsmError> {
        if (state as usize) >= self.num_states {
            return Err(FsmError::StateOutOfRange {
                state,
                num_states: self.num_states,
            });
        }
        if (input as usize) >= self.num_input_combos() {
            return Err(FsmError::InputOutOfRange {
                input,
                num_inputs: self.num_input_combos(),
            });
        }
        let (next_state, output) = self.step(state, input);
        Ok(Transition {
            from: state,
            input,
            to: next_state,
            output,
        })
    }

    fn idx(&self, state: StateId, input: InputId) -> usize {
        assert!(
            (state as usize) < self.num_states,
            "state {state} out of range ({} states)",
            self.num_states
        );
        assert!(
            (input as usize) < self.num_input_combos(),
            "input {input} out of range ({} combinations)",
            self.num_input_combos()
        );
        state as usize * self.num_input_combos() + input as usize
    }
}

impl fmt::Display for StateTable {
    /// Renders the table in the style of Table 1 of the paper.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "state table \"{}\": {} inputs, {} outputs, {} states, {} state vars",
            self.name, self.num_inputs, self.num_outputs, self.num_states, self.num_state_vars
        )?;
        for s in 0..self.num_states as StateId {
            write!(f, "{:>6} |", self.state_name(s))?;
            for i in 0..self.num_input_combos() as InputId {
                let (ns, z) = self.step(s, i);
                write!(
                    f,
                    " {},{}",
                    self.state_name(ns),
                    crate::format_output(z, self.num_outputs)
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// One state transition `from --input/output--> to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transition {
    /// Present state.
    pub from: StateId,
    /// Applied primary-input combination.
    pub input: InputId,
    /// Next state.
    pub to: StateId,
    /// Primary-output combination.
    pub output: OutputWord,
}

/// Iterator over all transitions of a [`StateTable`] in canonical order.
#[derive(Debug, Clone)]
pub struct TransitionIter<'a> {
    table: &'a StateTable,
    pos: usize,
}

impl Iterator for TransitionIter<'_> {
    type Item = Transition;

    fn next(&mut self) -> Option<Transition> {
        if self.pos >= self.table.num_transitions() {
            return None;
        }
        let npic = self.table.num_input_combos();
        let from = (self.pos / npic) as StateId;
        let input = (self.pos % npic) as InputId;
        self.pos += 1;
        let (to, output) = self.table.step(from, input);
        Some(Transition {
            from,
            input,
            to,
            output,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.table.num_transitions() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TransitionIter<'_> {}

/// Incremental builder for a [`StateTable`].
///
/// Entries may be set in any order; [`StateTableBuilder::build`] verifies the
/// machine is completely specified, while
/// [`StateTableBuilder::build_completed`] fills unspecified entries with a
/// self-loop and all-zero output (the conventional completion for benchmark
/// tables).
///
/// # Examples
///
/// ```
/// use scanft_fsm::StateTableBuilder;
///
/// # fn main() -> Result<(), scanft_fsm::FsmError> {
/// let mut b = StateTableBuilder::new("toggle", 1, 1, 2)?;
/// b.set(0, 0, 0, 0)?; // hold
/// b.set(0, 1, 1, 1)?; // toggle up
/// b.set(1, 0, 1, 0)?;
/// b.set(1, 1, 0, 1)?;
/// let t = b.build()?;
/// assert_eq!(t.next_state(0, 1), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StateTableBuilder {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    num_state_vars: usize,
    num_states: usize,
    next: Vec<Option<StateId>>,
    out: Vec<OutputWord>,
    state_names: Vec<String>,
}

impl StateTableBuilder {
    /// Creates a builder for a machine with `num_inputs` primary inputs,
    /// `num_outputs` primary outputs and `num_states` states.
    ///
    /// The number of state variables is `ceil(log2(num_states))` (at least
    /// one). All entries start unspecified.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::InvalidDimension`] if any dimension is zero or
    /// exceeds the supported maximum ([`MAX_INPUTS`], [`MAX_OUTPUTS`],
    /// `2^`[`MAX_STATE_VARS`] states).
    pub fn new(
        name: &str,
        num_inputs: usize,
        num_outputs: usize,
        num_states: usize,
    ) -> Result<Self, FsmError> {
        if num_inputs == 0 || num_inputs > MAX_INPUTS {
            return Err(FsmError::InvalidDimension {
                what: "number of primary inputs",
                value: num_inputs,
                constraint: "must be between 1 and 16",
            });
        }
        if num_outputs == 0 || num_outputs > MAX_OUTPUTS {
            return Err(FsmError::InvalidDimension {
                what: "number of primary outputs",
                value: num_outputs,
                constraint: "must be between 1 and 64",
            });
        }
        if num_states == 0 || num_states > (1 << MAX_STATE_VARS) {
            return Err(FsmError::InvalidDimension {
                what: "number of states",
                value: num_states,
                constraint: "must be between 1 and 2^20",
            });
        }
        let num_state_vars = num_states.next_power_of_two().trailing_zeros().max(1) as usize;
        let cells = num_states << num_inputs;
        Ok(StateTableBuilder {
            name: name.to_owned(),
            num_inputs,
            num_outputs,
            num_state_vars,
            num_states,
            next: vec![None; cells],
            out: vec![0; cells],
            state_names: (0..num_states).map(|s| s.to_string()).collect(),
        })
    }

    /// Number of states the builder was created with.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of primary-input combinations (`2^pi`).
    #[must_use]
    pub fn num_input_combos(&self) -> usize {
        1 << self.num_inputs
    }

    /// Specifies the entry for `(state, input)`.
    ///
    /// Later calls overwrite earlier ones, so a builder can be seeded with a
    /// default row and refined.
    ///
    /// # Errors
    ///
    /// Returns an out-of-range error if `state`, `input`, or `next` does not
    /// fit the declared dimensions, or [`FsmError::InvalidDimension`] if
    /// `output` has bits above `num_outputs`.
    pub fn set(
        &mut self,
        state: StateId,
        input: InputId,
        next: StateId,
        output: OutputWord,
    ) -> Result<&mut Self, FsmError> {
        let cell = self.check_cell(state, input)?;
        if (next as usize) >= self.num_states {
            return Err(FsmError::StateOutOfRange {
                state: next,
                num_states: self.num_states,
            });
        }
        if self.num_outputs < 64 && output >> self.num_outputs != 0 {
            return Err(FsmError::InvalidDimension {
                what: "output combination",
                value: output as usize,
                constraint: "has bits set above the declared output width",
            });
        }
        self.next[cell] = Some(next);
        self.out[cell] = output;
        Ok(self)
    }

    /// Assigns a symbolic display name to a state.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::StateOutOfRange`] if `state` is out of range.
    pub fn name_state(&mut self, state: StateId, name: &str) -> Result<&mut Self, FsmError> {
        if (state as usize) >= self.num_states {
            return Err(FsmError::StateOutOfRange {
                state,
                num_states: self.num_states,
            });
        }
        self.state_names[state as usize] = name.to_owned();
        Ok(self)
    }

    /// Finishes the builder, requiring every entry to be specified.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::IncompletelySpecified`] naming the first
    /// unspecified `(state, input)` cell.
    pub fn build(self) -> Result<StateTable, FsmError> {
        let npic = self.num_input_combos();
        if let Some(cell) = self.next.iter().position(Option::is_none) {
            let state = (cell / npic) as StateId;
            return Err(FsmError::IncompletelySpecified {
                state,
                state_name: self.state_names[state as usize].clone(),
                input: (cell % npic) as InputId,
            });
        }
        Ok(self.finish())
    }

    /// Finishes the builder, completing unspecified entries with a self-loop
    /// and an all-zero output combination.
    #[must_use]
    pub fn build_completed(mut self) -> StateTable {
        let npic = self.num_input_combos();
        for (cell, next) in self.next.iter_mut().enumerate() {
            if next.is_none() {
                *next = Some((cell / npic) as StateId);
            }
        }
        self.finish()
    }

    fn finish(self) -> StateTable {
        StateTable {
            name: self.name,
            num_inputs: self.num_inputs,
            num_outputs: self.num_outputs,
            num_state_vars: self.num_state_vars,
            num_states: self.num_states,
            next: self.next.into_iter().map(Option::unwrap).collect(),
            out: self.out,
            state_names: self.state_names,
        }
    }

    fn check_cell(&self, state: StateId, input: InputId) -> Result<usize, FsmError> {
        if (state as usize) >= self.num_states {
            return Err(FsmError::StateOutOfRange {
                state,
                num_states: self.num_states,
            });
        }
        if (input as usize) >= self.num_input_combos() {
            return Err(FsmError::InputOutOfRange {
                input,
                num_inputs: self.num_input_combos(),
            });
        }
        Ok(state as usize * self.num_input_combos() + input as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle() -> StateTable {
        let mut b = StateTableBuilder::new("toggle", 1, 1, 2).unwrap();
        b.set(0, 0, 0, 0).unwrap();
        b.set(0, 1, 1, 1).unwrap();
        b.set(1, 0, 1, 0).unwrap();
        b.set(1, 1, 0, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_round_trip() {
        let t = toggle();
        assert_eq!(t.num_states(), 2);
        assert_eq!(t.num_state_vars(), 1);
        assert_eq!(t.num_transitions(), 4);
        assert_eq!(t.step(0, 1), (1, 1));
        assert_eq!(t.step(1, 1), (0, 1));
    }

    #[test]
    fn builder_rejects_bad_dimensions() {
        assert!(StateTableBuilder::new("x", 0, 1, 2).is_err());
        assert!(StateTableBuilder::new("x", 17, 1, 2).is_err());
        assert!(StateTableBuilder::new("x", 1, 0, 2).is_err());
        assert!(StateTableBuilder::new("x", 1, 65, 2).is_err());
        assert!(StateTableBuilder::new("x", 1, 1, 0).is_err());
    }

    #[test]
    fn builder_rejects_out_of_range_cells() {
        let mut b = StateTableBuilder::new("x", 1, 1, 2).unwrap();
        assert!(b.set(2, 0, 0, 0).is_err());
        assert!(b.set(0, 2, 0, 0).is_err());
        assert!(b.set(0, 0, 2, 0).is_err());
        assert!(b.set(0, 0, 0, 0b10).is_err());
    }

    #[test]
    fn build_detects_incomplete_specification() {
        let mut b = StateTableBuilder::new("x", 1, 1, 2).unwrap();
        b.set(0, 0, 0, 0).unwrap();
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            FsmError::IncompletelySpecified {
                state: 0,
                state_name: "0".into(),
                input: 1
            }
        );
        assert!(err.to_string().contains("state 0 \"0\""));
    }

    #[test]
    fn build_completed_self_loops() {
        let mut b = StateTableBuilder::new("x", 1, 1, 2).unwrap();
        b.set(0, 1, 1, 1).unwrap();
        let t = b.build_completed();
        assert_eq!(t.step(0, 0), (0, 0));
        assert_eq!(t.step(1, 0), (1, 0));
        assert_eq!(t.step(1, 1), (1, 0));
        assert_eq!(t.step(0, 1), (1, 1));
    }

    #[test]
    fn run_produces_output_sequence() {
        let t = toggle();
        let (fin, outs) = t.run(0, &[1, 1, 0]);
        assert_eq!(fin, 0);
        assert_eq!(outs, vec![1, 1, 0]);
        assert_eq!(t.run_state(0, &[1, 1, 0]), 0);
    }

    #[test]
    fn transition_iter_is_canonical_and_exact() {
        let t = toggle();
        let all: Vec<_> = t.transitions().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(t.transitions().len(), 4);
        assert_eq!((all[0].from, all[0].input), (0, 0));
        assert_eq!((all[1].from, all[1].input), (0, 1));
        assert_eq!((all[2].from, all[2].input), (1, 0));
        assert_eq!((all[3].from, all[3].input), (1, 1));
    }

    #[test]
    fn transition_lookup_checks_bounds() {
        let t = toggle();
        assert!(t.transition(0, 0).is_ok());
        assert!(t.transition(5, 0).is_err());
        assert!(t.transition(0, 5).is_err());
    }

    #[test]
    fn state_vars_cover_state_count() {
        for (states, sv) in [(2usize, 1usize), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)] {
            let b = StateTableBuilder::new("x", 1, 1, states).unwrap();
            let t = b.build_completed();
            assert_eq!(t.num_state_vars(), sv, "states={states}");
        }
    }

    #[test]
    fn display_contains_rows() {
        let t = toggle();
        let s = t.to_string();
        assert!(s.contains("toggle"));
        assert!(s.contains("0 |"));
    }
}
