//! Property-based tests for the FSM substrate.

use proptest::prelude::*;
use scanft_fsm::{benchmarks, graph, kiss, minimize, transfer, uio, StateTable, StateTableBuilder};

/// Strategy producing small random completely-specified machines.
fn arb_table() -> impl Strategy<Value = StateTable> {
    (1usize..=3, 1usize..=3, 2usize..=8).prop_flat_map(|(pi, po, states)| {
        let cells = states << pi;
        let max_out = (1u64 << po) - 1;
        (
            proptest::collection::vec(0..states as u32, cells),
            proptest::collection::vec(0..=max_out, cells),
        )
            .prop_map(move |(nexts, outs)| {
                let mut b = StateTableBuilder::new("prop", pi, po, states).unwrap();
                for s in 0..states as u32 {
                    for i in 0..(1u32 << pi) {
                        let cell = s as usize * (1 << pi) + i as usize;
                        b.set(s, i, nexts[cell], outs[cell]).unwrap();
                    }
                }
                b.build().unwrap()
            })
    })
}

proptest! {
    /// Every UIO the search returns satisfies the definition: the output
    /// response of its state differs from that of every other state.
    #[test]
    fn uio_satisfies_definition(table in arb_table()) {
        let set = uio::derive_uios(&table, table.num_state_vars() + 2);
        for s in 0..table.num_states() as u32 {
            if let Some(u) = set.sequence(s) {
                prop_assert!(uio::is_uio(&table, s, &u.inputs));
                let (fin, outs) = table.run(s, &u.inputs);
                prop_assert_eq!(fin, u.final_state);
                prop_assert_eq!(&outs, &u.outputs);
                prop_assert!(u.len() <= table.num_state_vars() + 2);
            }
        }
    }

    /// UIO search is exact for short bounds: if it reports "none" with bound
    /// L, brute-force enumeration up to L finds nothing either.
    #[test]
    fn uio_none_is_sound(table in arb_table()) {
        let bound = 2usize;
        let set = uio::derive_uios(&table, bound);
        prop_assert!(!set.any_budget_exceeded());
        let npic = table.num_input_combos() as u32;
        for s in 0..table.num_states() as u32 {
            if set.sequence(s).is_some() {
                continue;
            }
            // Brute force all sequences of length 1..=bound.
            for len in 1..=bound {
                let total = (npic as u64).pow(len as u32);
                for code in 0..total {
                    let mut seq = Vec::with_capacity(len);
                    let mut c = code;
                    for _ in 0..len {
                        seq.push((c % u64::from(npic)) as u32);
                        c /= u64::from(npic);
                    }
                    prop_assert!(
                        !uio::is_uio(&table, s, &seq),
                        "missed UIO {:?} for state {}", seq, s
                    );
                }
            }
        }
    }

    /// A state equivalent to another state can never have a UIO, and a UIO
    /// implies distinguishability.
    #[test]
    fn uio_consistent_with_equivalence(table in arb_table()) {
        let eq = minimize::equivalence_classes(&table);
        let set = uio::derive_uios(&table, table.num_state_vars() + 2);
        for s in 0..table.num_states() as u32 {
            if set.sequence(s).is_some() {
                prop_assert!(eq.is_distinguishable(s));
            }
        }
    }

    /// Transfer sequences reach their claimed target, satisfy the goal, and
    /// respect the length bound.
    #[test]
    fn transfer_reaches_goal(table in arb_table(), from in 0u32..8, max_len in 1usize..4) {
        let from = from % table.num_states() as u32;
        // Goal: any even-numbered state other than `from`.
        let goal = |s: u32| s.is_multiple_of(2) && s != from;
        if let Some(t) = transfer::find_transfer(&table, from, max_len, goal) {
            prop_assert!(!t.inputs.is_empty());
            prop_assert!(t.inputs.len() <= max_len);
            prop_assert_eq!(table.run_state(from, &t.inputs), t.target);
            prop_assert!(goal(t.target));
        } else {
            // Exhaustive check that no length-1 transfer exists (cheap
            // completeness spot-check of the BFS).
            for a in 0..table.num_input_combos() as u32 {
                let n = table.next_state(from, a);
                prop_assert!(!(goal(n) && n != from));
            }
        }
    }

    /// Every trace of a derived adaptive distinguishing sequence is a UIO
    /// for its state, and machines with equivalent states never get one.
    #[test]
    fn ads_traces_are_uios(table in arb_table()) {
        match scanft_fsm::ads::derive_ads(&table) {
            Some(ads) => {
                for s in 0..table.num_states() as u32 {
                    prop_assert!(
                        uio::is_uio(&table, s, ads.trace(s)),
                        "trace of state {} is not a UIO", s
                    );
                }
            }
            None => {
                // Sound negative: nothing to check here beyond the
                // equivalence necessary condition.
            }
        }
        let eq = minimize::equivalence_classes(&table);
        if eq.num_classes() < table.num_states() {
            prop_assert!(scanft_fsm::ads::derive_ads(&table).is_none());
        }
    }

    /// Whenever a checking sequence can be built, it detects every single
    /// transition fault that makes the machine inequivalent from the
    /// initial state — the checking-sequence guarantee, checked empirically.
    #[test]
    fn checking_sequence_guarantee(table in arb_table()) {
        if let Ok(cs) = scanft_fsm::checking::build_checking_sequence(&table, 0) {
            let universe = if table.num_transitions() <= 32 {
                scanft_fsm::sta::StaUniverse::Full
            } else {
                scanft_fsm::sta::StaUniverse::Sampled(5)
            };
            let missed = scanft_fsm::checking::detects_all_inequivalent_faults(
                &table, &cs, universe,
            );
            prop_assert!(
                missed.is_empty(),
                "{} inequivalent faults missed by the checking sequence", missed.len()
            );
        }
    }

    /// KISS2 writing and parsing round-trips every machine.
    #[test]
    fn kiss_round_trip(table in arb_table()) {
        let text = kiss::write(&table);
        let back = kiss::parse_with(&text, table.name(), kiss::Completion::Reject).unwrap();
        prop_assert_eq!(table, back);
    }

    /// Shortest paths returned by the graph module are valid and minimal
    /// (no strictly shorter path exists, verified by BFS level counting).
    #[test]
    fn shortest_path_is_valid(table in arb_table(), from in 0u32..8, to in 0u32..8) {
        let from = from % table.num_states() as u32;
        let to = to % table.num_states() as u32;
        let reach = graph::reachable_from(&table, from);
        match graph::shortest_path(&table, from, to) {
            Some(p) => {
                prop_assert!(reach[to as usize]);
                prop_assert_eq!(table.run_state(from, &p), to);
            }
            None => prop_assert!(!reach[to as usize]),
        }
    }

    /// `run` decomposes over concatenation of sequences.
    #[test]
    fn run_is_compositional(table in arb_table(), seq in proptest::collection::vec(0u32..8, 0..12)) {
        let npic = table.num_input_combos() as u32;
        let seq: Vec<u32> = seq.into_iter().map(|i| i % npic).collect();
        let (fin, outs) = table.run(0, &seq);
        let split = seq.len() / 2;
        let (mid, outs_a) = table.run(0, &seq[..split]);
        let (fin_b, outs_b) = table.run(mid, &seq[split..]);
        prop_assert_eq!(fin, fin_b);
        let glued: Vec<u64> = outs_a.into_iter().chain(outs_b).collect();
        prop_assert_eq!(outs, glued);
    }
}

/// The benchmark suite is stable across builds (golden fingerprint): any
/// change to the generator or its seeding shows up here before it silently
/// changes every experiment.
#[test]
fn benchmark_suite_fingerprint() {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for spec in benchmarks::CIRCUITS {
        // Hash the small circuits in full; fingerprint big ones by spec.
        if spec.num_transitions() <= 4096 {
            let t = benchmarks::build(spec.name).unwrap();
            for tr in t.transitions() {
                mix(u64::from(tr.to));
                mix(tr.output);
            }
        } else {
            mix(spec.num_transitions() as u64);
        }
    }
    assert_eq!(hash, benchmark_fingerprint_expected());
}

fn benchmark_fingerprint_expected() -> u64 {
    // Recorded once from the initial generator; see DESIGN.md.
    10_694_904_448_615_269_429
}
