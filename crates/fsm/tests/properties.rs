//! Randomized property tests for the FSM substrate.
//!
//! Driven by the in-repo SplitMix64 RNG with fixed seeds so the workspace
//! builds and tests fully offline (no external `proptest`) and every run
//! checks the same cases.

#![allow(clippy::unwrap_used)]
use scanft_fsm::rng::SplitMix64;
use scanft_fsm::{benchmarks, graph, kiss, minimize, transfer, uio, StateTable};

/// Produces a small random completely-specified machine (1–3 inputs, 1–3
/// outputs, 2–8 states), mirroring the old proptest strategy.
fn random_table(rng: &mut SplitMix64) -> StateTable {
    let pi = 1 + rng.next_below(3) as usize;
    let po = 1 + rng.next_below(3) as usize;
    let states = 2 + rng.next_below(7) as usize;
    benchmarks::random_machine("prop", pi, po, states, rng.next_u64()).expect("dimensions in range")
}

/// Every UIO the search returns satisfies the definition: the output
/// response of its state differs from that of every other state.
#[test]
fn uio_satisfies_definition() {
    let mut rng = SplitMix64::new(0xF5A1);
    for _ in 0..48 {
        let table = random_table(&mut rng);
        let bound = table.num_state_vars() + 2;
        let set = uio::derive_uios(&table, bound);
        for s in 0..table.num_states() as u32 {
            if let Some(u) = set.sequence(s) {
                assert!(uio::is_uio(&table, s, &u.inputs));
                let (fin, outs) = table.run(s, &u.inputs);
                assert_eq!(fin, u.final_state);
                assert_eq!(outs, u.outputs);
                assert!(u.len() <= bound);
            }
        }
    }
}

/// UIO search is exact for short bounds: if it reports "none" with bound L,
/// brute-force enumeration up to L finds nothing either.
#[test]
fn uio_none_is_sound() {
    let mut rng = SplitMix64::new(0xF5A2);
    for _ in 0..32 {
        let table = random_table(&mut rng);
        let bound = 2usize;
        let set = uio::derive_uios(&table, bound);
        assert!(!set.any_budget_exceeded());
        let npic = table.num_input_combos() as u32;
        for s in 0..table.num_states() as u32 {
            if set.sequence(s).is_some() {
                continue;
            }
            for len in 1..=bound {
                let total = u64::from(npic).pow(len as u32);
                for code in 0..total {
                    let mut seq = Vec::with_capacity(len);
                    let mut c = code;
                    for _ in 0..len {
                        seq.push((c % u64::from(npic)) as u32);
                        c /= u64::from(npic);
                    }
                    assert!(
                        !uio::is_uio(&table, s, &seq),
                        "missed UIO {seq:?} for state {s}"
                    );
                }
            }
        }
    }
}

/// A state equivalent to another state can never have a UIO.
#[test]
fn uio_consistent_with_equivalence() {
    let mut rng = SplitMix64::new(0xF5A3);
    for _ in 0..48 {
        let table = random_table(&mut rng);
        let eq = minimize::equivalence_classes(&table);
        let set = uio::derive_uios(&table, table.num_state_vars() + 2);
        for s in 0..table.num_states() as u32 {
            if set.sequence(s).is_some() {
                assert!(eq.is_distinguishable(s));
            }
        }
    }
}

/// Transfer sequences reach their claimed target, satisfy the goal, and
/// respect the length bound.
#[test]
fn transfer_reaches_goal() {
    let mut rng = SplitMix64::new(0xF5A4);
    for _ in 0..48 {
        let table = random_table(&mut rng);
        let from = rng.next_below(table.num_states() as u64) as u32;
        let max_len = 1 + rng.next_below(3) as usize;
        // Goal: any even-numbered state other than `from`.
        let goal = |s: u32| s.is_multiple_of(2) && s != from;
        if let Some(t) = transfer::find_transfer(&table, from, max_len, goal) {
            assert!(!t.inputs.is_empty());
            assert!(t.inputs.len() <= max_len);
            assert_eq!(table.run_state(from, &t.inputs), t.target);
            assert!(goal(t.target));
        } else {
            // Exhaustive check that no length-1 transfer exists (cheap
            // completeness spot-check of the BFS).
            for a in 0..table.num_input_combos() as u32 {
                let n = table.next_state(from, a);
                assert!(!(goal(n) && n != from));
            }
        }
    }
}

/// Every trace of a derived adaptive distinguishing sequence is a UIO for
/// its state, and machines with equivalent states never get one.
#[test]
fn ads_traces_are_uios() {
    let mut rng = SplitMix64::new(0xF5A5);
    for _ in 0..48 {
        let table = random_table(&mut rng);
        if let Some(ads) = scanft_fsm::ads::derive_ads(&table) {
            for s in 0..table.num_states() as u32 {
                assert!(
                    uio::is_uio(&table, s, ads.trace(s)),
                    "trace of state {s} is not a UIO"
                );
            }
        }
        let eq = minimize::equivalence_classes(&table);
        if eq.num_classes() < table.num_states() {
            assert!(scanft_fsm::ads::derive_ads(&table).is_none());
        }
    }
}

/// Whenever a checking sequence can be built, it detects every single
/// transition fault that makes the machine inequivalent from the initial
/// state — the checking-sequence guarantee, checked empirically.
#[test]
fn checking_sequence_guarantee() {
    let mut rng = SplitMix64::new(0xF5A6);
    for _ in 0..24 {
        let table = random_table(&mut rng);
        if let Ok(cs) = scanft_fsm::checking::build_checking_sequence(&table, 0) {
            let universe = if table.num_transitions() <= 32 {
                scanft_fsm::sta::StaUniverse::Full
            } else {
                scanft_fsm::sta::StaUniverse::Sampled(5)
            };
            let missed =
                scanft_fsm::checking::detects_all_inequivalent_faults(&table, &cs, universe);
            assert!(
                missed.is_empty(),
                "{} inequivalent faults missed by the checking sequence",
                missed.len()
            );
        }
    }
}

/// KISS2 writing and parsing round-trips every machine.
#[test]
fn kiss_round_trip() {
    let mut rng = SplitMix64::new(0xF5A7);
    for _ in 0..48 {
        let table = random_table(&mut rng);
        let text = kiss::write(&table);
        let back = kiss::parse_with(&text, table.name(), kiss::Completion::Reject).unwrap();
        assert_eq!(table, back);
    }
}

/// Shortest paths returned by the graph module are valid, and absent paths
/// coincide with unreachability.
#[test]
fn shortest_path_is_valid() {
    let mut rng = SplitMix64::new(0xF5A8);
    for _ in 0..48 {
        let table = random_table(&mut rng);
        let from = rng.next_below(table.num_states() as u64) as u32;
        let to = rng.next_below(table.num_states() as u64) as u32;
        let reach = graph::reachable_from(&table, from);
        match graph::shortest_path(&table, from, to) {
            Some(p) => {
                assert!(reach[to as usize]);
                assert_eq!(table.run_state(from, &p), to);
            }
            None => assert!(!reach[to as usize]),
        }
    }
}

/// `run` decomposes over concatenation of sequences.
#[test]
fn run_is_compositional() {
    let mut rng = SplitMix64::new(0xF5A9);
    for _ in 0..48 {
        let table = random_table(&mut rng);
        let npic = table.num_input_combos() as u64;
        let len = rng.next_below(12) as usize;
        let seq: Vec<u32> = (0..len).map(|_| rng.next_below(npic) as u32).collect();
        let (fin, outs) = table.run(0, &seq);
        let split = seq.len() / 2;
        let (mid, outs_a) = table.run(0, &seq[..split]);
        let (fin_b, outs_b) = table.run(mid, &seq[split..]);
        assert_eq!(fin, fin_b);
        let glued: Vec<u64> = outs_a.into_iter().chain(outs_b).collect();
        assert_eq!(outs, glued);
    }
}

/// The benchmark suite is stable across builds (golden fingerprint): any
/// change to the generator or its seeding shows up here before it silently
/// changes every experiment.
#[test]
fn benchmark_suite_fingerprint() {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for spec in benchmarks::CIRCUITS {
        // Hash the small circuits in full; fingerprint big ones by spec.
        if spec.num_transitions() <= 4096 {
            let t = benchmarks::build(spec.name).unwrap();
            for tr in t.transitions() {
                mix(u64::from(tr.to));
                mix(tr.output);
            }
        } else {
            mix(spec.num_transitions() as u64);
        }
    }
    assert_eq!(hash, benchmark_fingerprint_expected());
}

fn benchmark_fingerprint_expected() -> u64 {
    // Recorded once from the initial generator; see DESIGN.md.
    10_694_904_448_615_269_429
}
