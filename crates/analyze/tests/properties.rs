//! Property tests for the static-analysis subsystem: SCOAP measure
//! invariants on synthesized benchmark netlists, lint cleanliness of the
//! bundled MCNC circuits, deliberately corrupted sources tripping the
//! matching lint codes, and soundness cross-checks of the static
//! untestability filters (SCOAP and FIRE-style implication) and of every
//! learned implication against exhaustive enumeration.

#![allow(clippy::unwrap_used)]

use scanft_analyze::{
    lint_import_error, lint_kiss_source, lint_netlist, lint_state_table, prune_untestable,
    prune_untestable_with, Analysis, FsmLintConfig, Implications, LintCode, LintLevels,
    NetlistLintConfig, Scoap, INFINITE,
};
use scanft_fsm::{benchmarks, StateTable};
use scanft_netlist::{NetId, Netlist};
use scanft_sim::exhaustive::{is_detectable, Detectability};
use scanft_sim::faults::{enumerate_stuck, Fault};
use scanft_synth::{synthesize, SynthConfig};

/// Circuits small enough to synthesize and sweep quickly in a test.
const SMALL: &[&str] = &[
    "lion", "lion9", "train11", "dk27", "bbtas", "mc", "tav", "beecount", "shiftreg", "dk15",
];

fn netlist_of(name: &str) -> Netlist {
    let table = benchmarks::build(name).unwrap();
    synthesize(&table, &SynthConfig::default())
        .netlist()
        .clone()
}

#[test]
fn scoap_measures_are_finite_on_benchmark_netlists() {
    for name in SMALL {
        let netlist = netlist_of(name);
        let scoap = Scoap::new(&netlist);
        for net in 0..netlist.num_nets() as u32 {
            if !netlist.is_connected(net) {
                continue;
            }
            assert_ne!(scoap.cc0(net), INFINITE, "{name}: net {net} cc0 infinite");
            assert_ne!(scoap.cc1(net), INFINITE, "{name}: net {net} cc1 infinite");
            assert_ne!(scoap.co(net), INFINITE, "{name}: net {net} co infinite");
        }
    }
}

#[test]
fn scoap_controllability_is_monotone_toward_inputs() {
    // Driving a gate output to any value requires driving at least one of
    // its inputs first, so every finite output controllability must exceed
    // the cheapest controllability among the gate's inputs.
    for name in SMALL {
        let netlist = netlist_of(name);
        let scoap = Scoap::new(&netlist);
        for (g, gate) in netlist.gates().iter().enumerate() {
            let out = netlist.gate_output(g);
            let cheapest_input = gate
                .inputs
                .iter()
                .map(|&i| scoap.cc0(i).min(scoap.cc1(i)))
                .min()
                .unwrap();
            for value in [false, true] {
                let cc = scoap.controllability(out, value);
                if cc != INFINITE {
                    assert!(
                        cc > cheapest_input,
                        "{name}: gate g{g} cc({value}) = {cc} not above cheapest input \
                         controllability {cheapest_input}"
                    );
                }
            }
        }
    }
}

#[test]
fn scoap_observability_is_monotone_toward_outputs() {
    // Observing a gate input means observing the gate output too (plus the
    // side-input setup cost), so every finite pin observability must exceed
    // the observability of the gate's output net.
    for name in SMALL {
        let netlist = netlist_of(name);
        let scoap = Scoap::new(&netlist);
        for (g, gate) in netlist.gates().iter().enumerate() {
            let out_co = scoap.co(netlist.gate_output(g));
            for pin in 0..gate.inputs.len() {
                let pin_co = scoap.pin_co(g, pin);
                if pin_co != INFINITE {
                    assert!(
                        pin_co > out_co,
                        "{name}: g{g} pin {pin} co {pin_co} not above output co {out_co}"
                    );
                }
            }
        }
    }
}

#[test]
fn bundled_benchmarks_have_zero_deny_diagnostics() {
    for spec in benchmarks::CIRCUITS {
        let table = benchmarks::build(spec.name).unwrap();
        let report = lint_state_table(&table, &FsmLintConfig::default());
        assert_eq!(
            report.num_deny(),
            0,
            "{}: FSM deny diagnostics: {:?}",
            spec.name,
            report.diagnostics
        );
        if !within_gate_budget(&table) {
            continue;
        }
        let circuit = synthesize(&table, &SynthConfig::default());
        let analysis = Analysis::new(circuit.netlist());
        let report = lint_netlist(circuit.netlist(), &analysis, &NetlistLintConfig::default());
        assert_eq!(
            report.num_deny(),
            0,
            "{}: netlist deny diagnostics: {:?}",
            spec.name,
            report.diagnostics
        );
    }
}

fn within_gate_budget(table: &StateTable) -> bool {
    table.num_inputs() + table.num_state_vars() <= 10 && table.num_transitions() <= 1024
}

#[test]
fn undriven_blif_net_trips_undriven_net_lint() {
    let err = scanft_netlist::blif::parse(
        ".model bad\n.inputs a\n.outputs f\n.names a ghost f\n11 1\n.end\n",
    )
    .unwrap_err();
    let report = lint_import_error(&err, &LintLevels::default());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::UndrivenNet),
        "diagnostics: {:?}",
        report.diagnostics
    );
    assert!(!report.passes());
}

#[test]
fn nondeterministic_kiss_trips_nondeterministic_table_lint() {
    let text = ".i 1\n.o 1\n.s 2\n.p 2\n0 s0 s1 0\n0 s0 s0 1\n";
    let (_, report) = lint_kiss_source(text, "nondet", &LintLevels::default());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::NondeterministicTable),
        "diagnostics: {:?}",
        report.diagnostics
    );
    assert!(!report.passes());
}

/// All suite circuits with at most 12 combinational inputs (PIs + state
/// variables): every one is tractable for exhaustive enumeration of the
/// `2^(pi+sv)` single-cycle input points.
fn tractable_circuits() -> Vec<&'static str> {
    benchmarks::CIRCUITS
        .iter()
        .filter(|s| s.num_inputs + s.num_state_vars <= 12)
        .map(|s| s.name)
        .collect()
}

/// One truth vector per net: bit `p` of `vectors[net]` is the value of
/// `net` at enumeration point `p` (inputs then state bits, LSB-first —
/// the same ordering the exhaustive oracle uses).
fn truth_vectors(netlist: &Netlist) -> Vec<Vec<u64>> {
    let bits = netlist.num_pis() + netlist.num_ppis();
    let total: u64 = 1 << bits;
    let words = (total as usize).div_ceil(64);
    let mut vectors = vec![vec![0u64; words]; netlist.num_nets()];
    let mut eval = scanft_sim::logic::Evaluator::new(netlist);
    let mut pi_words = vec![0u64; netlist.num_pis()];
    let mut ppi_words = vec![0u64; netlist.num_ppis()];
    #[allow(clippy::needless_range_loop)] // `w` indexes every net's vector below
    for w in 0..words {
        let base = w as u64 * 64;
        let count = 64.min(total - base) as usize;
        let spread = |bit: usize| {
            let mut word = 0u64;
            for lane in 0..count {
                if (base + lane as u64) >> bit & 1 == 1 {
                    word |= 1 << lane;
                }
            }
            word
        };
        for (k, word) in pi_words.iter_mut().enumerate() {
            *word = spread(k);
        }
        for (k, word) in ppi_words.iter_mut().enumerate() {
            *word = spread(netlist.num_pis() + k);
        }
        eval.load_input_words(&pi_words);
        eval.load_state_words(&ppi_words);
        eval.eval();
        for (net, vector) in vectors.iter_mut().enumerate() {
            vector[w] = eval.value(net as NetId);
        }
        // Lanes beyond `count` (only possible in the final partial word)
        // replicate the all-zero point — a real, consistent evaluation, so
        // the universally-quantified checks below stay sound.
    }
    vectors
}

#[test]
fn learned_implications_hold_exhaustively() {
    // Every implication, constant, and equivalence the engine reports is
    // verified against the full truth table of the synthesized netlist on
    // every tractable suite circuit. A single counterexample point would
    // make the FIRE prune and the PODEM guidance unsound.
    for name in tractable_circuits() {
        let netlist = netlist_of(name);
        let implications = Implications::new(&netlist);
        let vectors = truth_vectors(&netlist);
        let mask_of = |net: NetId, v: bool, w: usize| {
            let bits = vectors[net as usize][w];
            if v {
                bits
            } else {
                !bits
            }
        };
        let words = vectors[0].len();
        for net in 0..netlist.num_nets() as NetId {
            for v in [false, true] {
                if implications.infeasible(net, v) {
                    for w in 0..words {
                        assert_eq!(
                            mask_of(net, v, w),
                            0,
                            "{name}: net {net} claimed never {v} but a point disagrees"
                        );
                    }
                    continue;
                }
                for (to, tv) in implications.implied(net, v) {
                    for w in 0..words {
                        assert_eq!(
                            mask_of(net, v, w) & !mask_of(to, tv, w),
                            0,
                            "{name}: claimed ({net}={v}) ⇒ ({to}={tv}) has a counterexample"
                        );
                    }
                }
            }
        }
        for (net, value) in implications.constants() {
            for w in 0..words {
                assert_eq!(
                    mask_of(net, !value, w),
                    0,
                    "{name}: net {net} claimed constant {value} but varies"
                );
            }
        }
        for (a, b) in implications.equivalent_pairs() {
            assert_eq!(
                vectors[a as usize], vectors[b as usize],
                "{name}: nets {a} and {b} claimed equivalent but differ"
            );
        }
    }
}

#[test]
fn fire_pruned_faults_are_undetectable_by_the_oracle() {
    // Soundness of the combined SCOAP + FIRE static prune, checked on every
    // tractable suite circuit (the SCOAP-only variant keeps its own
    // three-circuit check below). The implication engine may miss redundant
    // faults; it must never prune a detectable one.
    for name in tractable_circuits() {
        let netlist = netlist_of(name);
        let analysis = Analysis::new(&netlist);
        let faults = enumerate_stuck(&netlist);
        let pruned = prune_untestable_with(&netlist, &analysis, &faults);
        for fault in &pruned.untestable {
            assert_eq!(
                is_detectable(&netlist, &Fault::Stuck(*fault), 1 << 24),
                Detectability::Undetectable,
                "{name}: statically pruned fault {fault:?} is actually detectable"
            );
        }
    }
}

#[test]
fn statically_untestable_faults_are_undetectable_by_the_oracle() {
    // Soundness cross-check: every fault the SCOAP-based filter prunes must
    // be confirmed undetectable by exhaustive enumeration of all length-1
    // scan tests. (The filter is allowed to miss redundant faults; it must
    // never prune a detectable one.)
    for name in ["bbtas", "dk27", "mc"] {
        let netlist = netlist_of(name);
        let scoap = Scoap::new(&netlist);
        let faults = enumerate_stuck(&netlist);
        let pruned = prune_untestable(&netlist, &scoap, &faults);
        for fault in &pruned.untestable {
            assert_eq!(
                is_detectable(&netlist, &Fault::Stuck(*fault), 1 << 24),
                Detectability::Undetectable,
                "{name}: statically pruned fault {fault:?} is actually detectable"
            );
        }
    }
}
