//! Property tests for the static-analysis subsystem: SCOAP measure
//! invariants on synthesized benchmark netlists, lint cleanliness of the
//! bundled MCNC circuits, deliberately corrupted sources tripping the
//! matching lint codes, and a soundness cross-check of the static
//! untestability filter against the exhaustive detectability oracle.

#![allow(clippy::unwrap_used)]

use scanft_analyze::{
    lint_import_error, lint_kiss_source, lint_netlist, lint_state_table, prune_untestable,
    FsmLintConfig, LintCode, LintLevels, NetlistLintConfig, Scoap, INFINITE,
};
use scanft_fsm::{benchmarks, StateTable};
use scanft_netlist::Netlist;
use scanft_sim::exhaustive::{is_detectable, Detectability};
use scanft_sim::faults::{enumerate_stuck, Fault};
use scanft_synth::{synthesize, SynthConfig};

/// Circuits small enough to synthesize and sweep quickly in a test.
const SMALL: &[&str] = &[
    "lion", "lion9", "train11", "dk27", "bbtas", "mc", "tav", "beecount", "shiftreg", "dk15",
];

fn netlist_of(name: &str) -> Netlist {
    let table = benchmarks::build(name).unwrap();
    synthesize(&table, &SynthConfig::default())
        .netlist()
        .clone()
}

#[test]
fn scoap_measures_are_finite_on_benchmark_netlists() {
    for name in SMALL {
        let netlist = netlist_of(name);
        let scoap = Scoap::new(&netlist);
        for net in 0..netlist.num_nets() as u32 {
            if !netlist.is_connected(net) {
                continue;
            }
            assert_ne!(scoap.cc0(net), INFINITE, "{name}: net {net} cc0 infinite");
            assert_ne!(scoap.cc1(net), INFINITE, "{name}: net {net} cc1 infinite");
            assert_ne!(scoap.co(net), INFINITE, "{name}: net {net} co infinite");
        }
    }
}

#[test]
fn scoap_controllability_is_monotone_toward_inputs() {
    // Driving a gate output to any value requires driving at least one of
    // its inputs first, so every finite output controllability must exceed
    // the cheapest controllability among the gate's inputs.
    for name in SMALL {
        let netlist = netlist_of(name);
        let scoap = Scoap::new(&netlist);
        for (g, gate) in netlist.gates().iter().enumerate() {
            let out = netlist.gate_output(g);
            let cheapest_input = gate
                .inputs
                .iter()
                .map(|&i| scoap.cc0(i).min(scoap.cc1(i)))
                .min()
                .unwrap();
            for value in [false, true] {
                let cc = scoap.controllability(out, value);
                if cc != INFINITE {
                    assert!(
                        cc > cheapest_input,
                        "{name}: gate g{g} cc({value}) = {cc} not above cheapest input \
                         controllability {cheapest_input}"
                    );
                }
            }
        }
    }
}

#[test]
fn scoap_observability_is_monotone_toward_outputs() {
    // Observing a gate input means observing the gate output too (plus the
    // side-input setup cost), so every finite pin observability must exceed
    // the observability of the gate's output net.
    for name in SMALL {
        let netlist = netlist_of(name);
        let scoap = Scoap::new(&netlist);
        for (g, gate) in netlist.gates().iter().enumerate() {
            let out_co = scoap.co(netlist.gate_output(g));
            for pin in 0..gate.inputs.len() {
                let pin_co = scoap.pin_co(g, pin);
                if pin_co != INFINITE {
                    assert!(
                        pin_co > out_co,
                        "{name}: g{g} pin {pin} co {pin_co} not above output co {out_co}"
                    );
                }
            }
        }
    }
}

#[test]
fn bundled_benchmarks_have_zero_deny_diagnostics() {
    for spec in benchmarks::CIRCUITS {
        let table = benchmarks::build(spec.name).unwrap();
        let report = lint_state_table(&table, &FsmLintConfig::default());
        assert_eq!(
            report.num_deny(),
            0,
            "{}: FSM deny diagnostics: {:?}",
            spec.name,
            report.diagnostics
        );
        if !within_gate_budget(&table) {
            continue;
        }
        let circuit = synthesize(&table, &SynthConfig::default());
        let scoap = Scoap::new(circuit.netlist());
        let report = lint_netlist(circuit.netlist(), &scoap, &NetlistLintConfig::default());
        assert_eq!(
            report.num_deny(),
            0,
            "{}: netlist deny diagnostics: {:?}",
            spec.name,
            report.diagnostics
        );
    }
}

fn within_gate_budget(table: &StateTable) -> bool {
    table.num_inputs() + table.num_state_vars() <= 10 && table.num_transitions() <= 1024
}

#[test]
fn undriven_blif_net_trips_undriven_net_lint() {
    let err = scanft_netlist::blif::parse(
        ".model bad\n.inputs a\n.outputs f\n.names a ghost f\n11 1\n.end\n",
    )
    .unwrap_err();
    let report = lint_import_error(&err, &LintLevels::default());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::UndrivenNet),
        "diagnostics: {:?}",
        report.diagnostics
    );
    assert!(!report.passes());
}

#[test]
fn nondeterministic_kiss_trips_nondeterministic_table_lint() {
    let text = ".i 1\n.o 1\n.s 2\n.p 2\n0 s0 s1 0\n0 s0 s0 1\n";
    let (_, report) = lint_kiss_source(text, "nondet", &LintLevels::default());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::NondeterministicTable),
        "diagnostics: {:?}",
        report.diagnostics
    );
    assert!(!report.passes());
}

#[test]
fn statically_untestable_faults_are_undetectable_by_the_oracle() {
    // Soundness cross-check: every fault the SCOAP-based filter prunes must
    // be confirmed undetectable by exhaustive enumeration of all length-1
    // scan tests. (The filter is allowed to miss redundant faults; it must
    // never prune a detectable one.)
    for name in ["bbtas", "dk27", "mc"] {
        let netlist = netlist_of(name);
        let scoap = Scoap::new(&netlist);
        let faults = enumerate_stuck(&netlist);
        let pruned = prune_untestable(&netlist, &scoap, &faults);
        for fault in &pruned.untestable {
            assert_eq!(
                is_detectable(&netlist, &Fault::Stuck(*fault), 1 << 24),
                Detectability::Undetectable,
                "{name}: statically pruned fault {fault:?} is actually detectable"
            );
        }
    }
}
