//! The canonical constant/equivalence fact set derived from the
//! implication closure.
//!
//! Both the `constant-net` / `equivalent-nets` lints
//! ([`crate::netlist_lints::lint_netlist`]) and the `scanft-opt` rewriting
//! pass consume facts through this one type, so the lint report and the
//! optimizer can never disagree about *which* nets are constant or
//! equivalent: there is a single extraction point, not two readings of the
//! closure.

use scanft_netlist::NetId;

use crate::Analysis;

/// Constant nets and net-equivalence classes extracted once from an
/// [`Analysis`], in a fixed deterministic order.
///
/// Constants are `(net, value)` pairs in net order; classes are sorted by
/// smallest member, each class sorted by net id, singletons omitted —
/// exactly the shapes [`crate::Implications::constants`] and
/// [`crate::Implications::equivalence_classes`] produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstFacts {
    constants: Vec<(NetId, bool)>,
    classes: Vec<Vec<NetId>>,
    constant_of: Vec<Option<bool>>,
}

impl ConstFacts {
    /// Extracts the fact set from a precomputed analysis.
    #[must_use]
    pub fn of(analysis: &Analysis) -> Self {
        let constants = analysis.implications.constants();
        let classes = analysis.implications.equivalence_classes();
        let mut constant_of = vec![None; analysis.implications.num_nets()];
        for &(net, value) in &constants {
            constant_of[net as usize] = Some(value);
        }
        ConstFacts {
            constants,
            classes,
            constant_of,
        }
    }

    /// All nets proven constant, with their value, in net order.
    #[must_use]
    pub fn constants(&self) -> &[(NetId, bool)] {
        &self.constants
    }

    /// The proven constant value of `net`, if any.
    #[must_use]
    pub fn constant(&self, net: NetId) -> Option<bool> {
        self.constant_of.get(net as usize).copied().flatten()
    }

    /// Equivalence classes of non-constant nets proven equal (sorted, with
    /// singletons omitted).
    #[must_use]
    pub fn classes(&self) -> &[Vec<NetId>] {
        &self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn facts_match_the_closure_accessors() {
        // c = AND(x, NOT x) is constant 0; two AND(x1, x2) copies are equal.
        let mut b = NetlistBuilder::new(2, 0);
        let nx = b.add_gate(GateKind::Not, &[0]).unwrap();
        let c = b.add_gate(GateKind::And, &[0, nx]).unwrap();
        let g1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let g2 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let z = b.add_gate(GateKind::Or, &[c, g1, g2]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let analysis = Analysis::new(&n);
        let facts = ConstFacts::of(&analysis);
        assert_eq!(facts.constants(), analysis.implications.constants());
        assert_eq!(facts.classes(), analysis.implications.equivalence_classes());
        assert_eq!(facts.constant(c), Some(false));
        assert_eq!(facts.constant(0), None);
        assert!(facts
            .classes()
            .iter()
            .any(|cl| cl.contains(&g1) && cl.contains(&g2)));
    }
}
