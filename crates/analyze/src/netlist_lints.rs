//! Structural lints over a [`Netlist`].
//!
//! Complements the construction-time invariants of
//! [`scanft_netlist::NetlistBuilder`] (acyclicity, known nets, fanin
//! arity) with the checks the builder *cannot* enforce: connectivity of
//! the finished design, the scan boundary, fanin policy, and the
//! SCOAP-derived structural testability of every net. BLIF sources that
//! fail to import are folded into the same diagnostic stream so `scanft
//! lint` has a single report shape for every input kind.

use scanft_netlist::{GateKind, NetId, Netlist, NetlistError};

use crate::diag::{Diagnostic, LintCode, LintLevels, LintReport, Severity};
use crate::facts::ConstFacts;
use crate::Analysis;

/// Knobs for a netlist lint run.
#[derive(Debug, Clone)]
pub struct NetlistLintConfig {
    /// Per-lint severity table.
    pub levels: LintLevels,
    /// Largest allowed gate fanin (the synthesis mapper emits trees of
    /// fanin ≤ 4 by default, so the default bound of 8 only fires on
    /// hand-built or imported netlists).
    pub max_fanin: usize,
}

impl Default for NetlistLintConfig {
    fn default() -> Self {
        NetlistLintConfig {
            levels: LintLevels::default(),
            max_fanin: 8,
        }
    }
}

/// Whether net `b` is a plain buffered copy of net `a` — an intentional
/// repeater, not duplicated logic worth a finding.
fn is_buffer_of(netlist: &Netlist, a: NetId, b: NetId) -> bool {
    netlist
        .driver(b)
        .is_some_and(|g| g.kind == GateKind::Buf && g.inputs[0] == a)
}

/// Runs every enabled netlist lint over `netlist`, reusing a precomputed
/// static [`Analysis`] (SCOAP measures plus the implication closure).
#[must_use]
pub fn lint_netlist(
    netlist: &Netlist,
    analysis: &Analysis,
    config: &NetlistLintConfig,
) -> LintReport {
    let scoap = &analysis.scoap;
    let mut report = LintReport::default();
    let levels = &config.levels;
    let diag =
        |code: LintCode, locus: String, message: String, suggestion: Option<String>| Diagnostic {
            severity: levels.level(code),
            code,
            locus,
            message,
            suggestion,
        };

    let num_inputs = netlist.num_pis() + netlist.num_ppis();

    // Scan-chain integrity: the scan boundary must capture exactly one
    // next-state line per present-state line.
    if netlist.ppos().len() != netlist.num_ppis() {
        report.push(diag(
            LintCode::ScanChainIntegrity,
            "scan boundary".into(),
            format!(
                "{} pseudo-primary inputs but {} pseudo-primary outputs: the scan chain cannot \
                 capture a consistent next state",
                netlist.num_ppis(),
                netlist.ppos().len()
            ),
            Some("declare one PPO (next-state net) per PPI in `finish`".into()),
        ));
    }

    // Floating inputs and dangling gate outputs.
    for net in 0..netlist.num_nets() as NetId {
        if netlist.is_connected(net) {
            continue;
        }
        if (net as usize) < num_inputs {
            report.push(diag(
                LintCode::FloatingInput,
                netlist.net_name(net),
                format!(
                    "{} {} drives no gate and no output",
                    if (net as usize) < netlist.num_pis() {
                        "primary input"
                    } else {
                        "present-state line"
                    },
                    netlist.net_name(net)
                ),
                Some("remove the unused input or connect it".into()),
            ));
        } else {
            report.push(diag(
                LintCode::DanglingOutput,
                netlist.net_name(net),
                format!(
                    "gate output {} ({} gate) drives no gate and no output",
                    netlist.net_name(net),
                    netlist
                        .driver(net)
                        .map(|g| g.kind.name())
                        .unwrap_or("unknown"),
                ),
                Some("remove the dead gate or route it to an output".into()),
            ));
        }
    }

    // SCOAP-structural untestability: connected nets that still cannot be
    // observed (no path to any PO/PPO) or controlled.
    for net in 0..netlist.num_nets() as NetId {
        if !netlist.is_connected(net) {
            continue; // already reported as floating/dangling above
        }
        if scoap.is_unobservable(net) {
            report.push(diag(
                LintCode::Unobservable,
                netlist.net_name(net),
                format!(
                    "net {} has no structural path to any primary or pseudo-primary output; \
                     every fault on it is untestable",
                    netlist.net_name(net)
                ),
                Some("route the cone of logic to an observable output".into()),
            ));
        }
        for value in [false, true] {
            if scoap.is_uncontrollable(net, value) {
                report.push(diag(
                    LintCode::Uncontrollable,
                    netlist.net_name(net),
                    format!(
                        "net {} cannot be driven to {} from the PIs and scan chain",
                        netlist.net_name(net),
                        u8::from(value)
                    ),
                    None,
                ));
            }
        }
    }

    // Fanin policy.
    for (g, gate) in netlist.gates().iter().enumerate() {
        if gate.inputs.len() > config.max_fanin {
            report.push(diag(
                LintCode::FaninBound,
                netlist.net_name(netlist.gate_output(g)),
                format!(
                    "{} gate {} has fanin {} (bound {})",
                    gate.kind.name(),
                    netlist.net_name(netlist.gate_output(g)),
                    gate.inputs.len(),
                    config.max_fanin
                ),
                Some("split the gate into a tree (NetlistBuilder::add_tree)".into()),
            ));
        }
    }

    // Implication-proven constant nets, read through the same fact set
    // (`ConstFacts`) the `scanft-opt` rewriter folds, so lint and optimizer
    // cannot disagree. SCOAP-uncontrollable nets are already denied above;
    // this catches the reconvergence-made constants SCOAP cannot see.
    let facts = ConstFacts::of(analysis);
    for &(net, value) in facts.constants() {
        if !netlist.is_connected(net) || scoap.is_uncontrollable(net, !value) {
            continue; // already dangling or uncontrollable
        }
        report.push(diag(
            LintCode::ConstantNet,
            netlist.net_name(net),
            format!(
                "net {} evaluates to {} under every input assignment; its stuck-at-{} fault is \
                 untestable",
                netlist.net_name(net),
                u8::from(value),
                u8::from(value),
            ),
            Some("fold the constant into its fanout and delete the driving cone".into()),
        ));
    }

    // Implication-proven equivalent nets: duplicated logic, one finding per
    // equivalence class. Plain buffer copies of another class member are
    // deliberate repeaters and dropped before judging the class.
    for class in facts.classes() {
        let members: Vec<NetId> = class
            .iter()
            .copied()
            .filter(|&b| !class.iter().any(|&a| a != b && is_buffer_of(netlist, a, b)))
            .collect();
        if members.len() < 2 {
            continue;
        }
        let names: Vec<String> = members.iter().map(|&m| netlist.net_name(m)).collect();
        let locus = if names.len() > 4 {
            format!("{} (+{} more)", names[..4].join(" = "), names.len() - 4)
        } else {
            names.join(" = ")
        };
        report.push(diag(
            LintCode::EquivalentNets,
            locus,
            format!(
                "{} nets carry equal values under every input assignment ({} …)",
                names.len(),
                names[..2.min(names.len())].join(", "),
            ),
            Some("share one driver for the duplicated cone".into()),
        ));
    }

    scanft_obs::global()
        .counter("analyze.lint.netlist_diagnostics")
        .add(report.diagnostics.len() as u64);
    report
}

/// Maps a failed netlist import ([`NetlistError`] or the BLIF reader's
/// message-carrying variant) onto the diagnostic stream.
///
/// `scanft lint` calls this when a `.blif` input fails to parse, so broken
/// sources produce the same report shape as structural findings; import
/// failures are always deny-level design errors.
#[must_use]
pub fn lint_import_error(error: &NetlistError, levels: &LintLevels) -> LintReport {
    let mut report = LintReport::default();
    let message = error.to_string();
    let code = if message.contains("undriven") || message.contains("undefined signal") {
        LintCode::UndrivenNet
    } else {
        LintCode::MalformedSource
    };
    report.push(Diagnostic {
        severity: levels.level(code).max(Severity::Warn),
        code,
        locus: "netlist source".into(),
        message,
        suggestion: None,
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_netlist::{GateKind, NetlistBuilder};

    fn lint(netlist: &Netlist) -> LintReport {
        lint_netlist(
            netlist,
            &Analysis::new(netlist),
            &NetlistLintConfig::default(),
        )
    }

    fn has(report: &LintReport, code: LintCode) -> bool {
        report.diagnostics.iter().any(|d| d.code == code)
    }

    #[test]
    fn clean_netlist_has_no_findings() {
        let mut b = NetlistBuilder::new(2, 1);
        let and = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let ns = b.add_gate(GateKind::Xor, &[and, 2]).unwrap();
        let n = b.finish(vec![and], vec![ns]).unwrap();
        let report = lint(&n);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn floating_input_and_dangling_output_fire() {
        let mut b = NetlistBuilder::new(2, 0);
        let used = b.add_gate(GateKind::Not, &[0]).unwrap();
        let dead = b.add_gate(GateKind::Not, &[0]).unwrap();
        let n = b.finish(vec![used], vec![]).unwrap();
        let report = lint(&n);
        assert!(has(&report, LintCode::FloatingInput), "x2 is unused");
        assert!(has(&report, LintCode::DanglingOutput), "g2 dangles");
        let dangling = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::DanglingOutput)
            .unwrap();
        assert_eq!(dangling.locus, n.net_name(dead));
    }

    #[test]
    fn unobservable_cone_is_reported_once_per_net() {
        // g1 = AND(x1, x2) feeds only g2 = NOT(g1); g2 dangles. g1 is
        // connected but unobservable, g2 is dangling.
        let mut b = NetlistBuilder::new(2, 0);
        let g1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let _g2 = b.add_gate(GateKind::Not, &[g1]).unwrap();
        let live = b.add_gate(GateKind::Or, &[0, 1]).unwrap();
        let n = b.finish(vec![live], vec![]).unwrap();
        let report = lint(&n);
        let unobservable: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::Unobservable)
            .map(|d| d.locus.as_str())
            .collect();
        assert_eq!(unobservable, vec!["g1"]);
    }

    #[test]
    fn scan_chain_integrity_and_fanin_bound() {
        let mut b = NetlistBuilder::new(10, 1);
        let inputs: Vec<NetId> = (0..10).collect();
        let wide = b.add_gate(GateKind::And, &inputs).unwrap();
        // One PPI but zero PPOs: broken scan boundary.
        let n = b.finish(vec![wide], vec![]).unwrap();
        let report = lint(&n);
        assert!(has(&report, LintCode::ScanChainIntegrity));
        assert!(has(&report, LintCode::FaninBound));
        assert_eq!(
            report.num_deny(),
            1,
            "only scan-chain-integrity denies by default"
        );
    }

    #[test]
    fn import_error_maps_to_undriven_net() {
        let err =
            scanft_netlist::blif::parse(".model bad\n.inputs a\n.outputs f\n.end\n").unwrap_err();
        let report = lint_import_error(&err, &LintLevels::default());
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, LintCode::UndrivenNet);
        assert!(!report.passes());
    }

    #[test]
    fn lint_levels_can_silence_a_finding() {
        let mut b = NetlistBuilder::new(2, 0);
        let used = b.add_gate(GateKind::Not, &[0]).unwrap();
        let n = b.finish(vec![used], vec![]).unwrap();
        let mut config = NetlistLintConfig::default();
        config.levels.set(LintCode::FloatingInput, Severity::Allow);
        let report = lint_netlist(&n, &Analysis::new(&n), &config);
        assert!(!has(&report, LintCode::FloatingInput));
    }

    #[test]
    fn constant_net_lint_names_the_net() {
        // c = AND(x, NOT(x)) is constant 0 but SCOAP-controllable (SCOAP
        // ignores the reconvergence), so only the implication lint sees it.
        let mut b = NetlistBuilder::new(1, 0);
        let nx = b.add_gate(GateKind::Not, &[0]).unwrap();
        let c = b.add_gate(GateKind::And, &[0, nx]).unwrap();
        let z = b.add_gate(GateKind::Or, &[c, 0]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let report = lint(&n);
        let finding = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::ConstantNet)
            .expect("constant-net fires");
        assert_eq!(finding.locus, n.net_name(c));
        assert!(finding.message.contains(&n.net_name(c)));
        assert_eq!(finding.severity, Severity::Warn);
    }

    #[test]
    fn equivalent_nets_lint_names_both_nets() {
        // Two separately built copies of AND(x1, x2).
        let mut b = NetlistBuilder::new(2, 0);
        let g1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let g2 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![g1, g2], vec![]).unwrap();
        let report = lint(&n);
        let finding = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::EquivalentNets)
            .expect("equivalent-nets fires");
        assert_eq!(
            finding.locus,
            format!("{} = {}", n.net_name(g1), n.net_name(g2))
        );
        assert!(finding.message.contains(&n.net_name(g1)));
        assert!(finding.message.contains(&n.net_name(g2)));
    }

    #[test]
    fn buffer_copies_are_not_reported_equivalent() {
        let mut b = NetlistBuilder::new(1, 0);
        let g1 = b.add_gate(GateKind::Not, &[0]).unwrap();
        let copy = b.add_gate(GateKind::Buf, &[g1]).unwrap();
        let n = b.finish(vec![g1, copy], vec![]).unwrap();
        let report = lint(&n);
        assert!(!has(&report, LintCode::EquivalentNets));
    }
}
