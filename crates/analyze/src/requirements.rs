//! Necessary-requirement extraction from the post-dominator tree.
//!
//! The netlist layer owns the one and only post-dominator implementation
//! ([`PostDominators`]); this module interprets it for testing. Every
//! structural path from a fault site to an observation point crosses each
//! of the site's dominator gates, so a test for the fault **must** set every
//! side input of every dominator gate to its non-controlling value — side
//! inputs outside the fault's fanout cone carry their fault-free values, and
//! a controlling value at any of them fixes the dominator's output and kills
//! the fault effect regardless of everything else. This is the
//! fault-independent requirement extraction at the heart of FIRE-style
//! untestability checking, and the same requirement sets seed the
//! implication-guided PODEM search.
//!
//! Soundness: the extracted literals are *necessary* conditions on the good
//! (fault-free) values of a detecting test, never sufficient ones. A
//! conflict among necessary conditions therefore proves untestability, and
//! pre-assigning them in ATPG never excludes a test.

use scanft_netlist::{GateKind, NetId, Netlist, PostDominators, Reachability};
use scanft_sim::faults::{FaultSite, StuckFault};

/// The non-controlling value of a gate kind, when a controlling value
/// exists (`And`/`Nand`: 1, `Or`/`Nor`: 0; unary gates and `Xor` pass any
/// value).
fn non_controlling(kind: GateKind) -> Option<bool> {
    match kind {
        GateKind::And | GateKind::Nand => Some(true),
        GateKind::Or | GateKind::Nor => Some(false),
        GateKind::Xor | GateKind::Not | GateKind::Buf => None,
    }
}

/// Post-dominator tree plus fanout-cone reachability, packaged for
/// requirement extraction.
///
/// # Examples
///
/// ```
/// use scanft_analyze::Requirements;
/// use scanft_netlist::{GateKind, NetlistBuilder};
/// use scanft_sim::faults::{FaultSite, StuckFault};
///
/// # fn main() -> Result<(), scanft_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(2, 0);
/// let a = b.add_gate(GateKind::Not, &[0])?;
/// let z = b.add_gate(GateKind::And, &[a, 1])?;
/// let n = b.finish(vec![z], vec![])?;
/// let dom = Requirements::new(&n);
/// let fault = StuckFault { site: FaultSite::Net(a), stuck_at_one: true };
/// let req = dom.requirements(&n, &fault).expect("observable");
/// // Activation a=0, plus the AND's side input x2 non-controlling (1).
/// assert!(req.contains(&(a, false)));
/// assert!(req.contains(&(1, true)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Requirements {
    post: PostDominators,
    reach: Reachability,
}

impl Requirements {
    /// Builds the post-dominator tree and reachability for `netlist`.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        Requirements {
            post: PostDominators::new(netlist),
            reach: Reachability::new(netlist),
        }
    }

    /// The underlying immediate post-dominator tree.
    #[must_use]
    pub fn post(&self) -> &PostDominators {
        &self.post
    }

    /// Whether `net` lies in the fanout cone of `origin` (including the
    /// origin itself) — the region whose values the fault may corrupt.
    #[must_use]
    pub fn in_cone(&self, origin: NetId, net: NetId) -> bool {
        origin == net || self.reach.path_exists(origin, net)
    }

    /// The necessary good-value literals of any test detecting `fault`:
    /// the activation literal, the faulty gate's side inputs for a branch
    /// fault, and the non-controlling side inputs of every dominator gate
    /// on the fault's propagation chain.
    ///
    /// Returns `None` when the set is already contradictory on structure
    /// alone — the fault effect cannot reach an observation point (dead
    /// cone) or a single net is required at both values — which proves the
    /// fault untestable.
    #[must_use]
    pub fn requirements(
        &self,
        netlist: &Netlist,
        fault: &StuckFault,
    ) -> Option<Vec<(NetId, bool)>> {
        let activation = !fault.stuck_at_one;
        let mut need: Vec<Option<bool>> = vec![None; netlist.num_nets()];
        let mut order: Vec<NetId> = Vec::new();
        let mut require = |net: NetId, v: bool, order: &mut Vec<NetId>| -> bool {
            match need[net as usize] {
                Some(x) => x == v,
                None => {
                    need[net as usize] = Some(v);
                    order.push(net);
                    true
                }
            }
        };
        let origin = match fault.site {
            FaultSite::Net(net) => {
                if !require(net, activation, &mut order) {
                    return None;
                }
                net
            }
            FaultSite::Branch { gate, pin } => {
                let g = &netlist.gates()[gate as usize];
                let source = g.inputs[pin as usize];
                if !require(source, activation, &mut order) {
                    return None;
                }
                // The effect lives on one pin only, so it must cross this
                // gate: every *other* pin is a side input.
                if let Some(nc) = non_controlling(g.kind) {
                    for (p, &input) in g.inputs.iter().enumerate() {
                        if p != pin as usize && !require(input, nc, &mut order) {
                            return None;
                        }
                    }
                }
                netlist.gate_output(gate as usize)
            }
        };
        if !self.post.reaches_output(origin) {
            return None;
        }
        for dom_net in self.post.chain(origin) {
            // A dominator with no driver is a PI routed straight to an
            // output — nothing to constrain there.
            let Some(gi) = netlist.driver_index(dom_net) else {
                continue;
            };
            let g = &netlist.gates()[gi];
            let Some(nc) = non_controlling(g.kind) else {
                continue;
            };
            for &input in &g.inputs {
                if !self.in_cone(origin, input) && !require(input, nc, &mut order) {
                    return None;
                }
            }
        }
        Some(
            order
                .iter()
                .map(|&net| (net, need[net as usize].unwrap_or(false)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_netlist::NetlistBuilder;

    #[test]
    fn stem_requirements_walk_the_dominator_chain() {
        // x1 -> NOT -> AND(. , x2) -> OR(. , x3) -> PO
        let mut b = NetlistBuilder::new(3, 0);
        let inv = b.add_gate(GateKind::Not, &[0]).unwrap();
        let and = b.add_gate(GateKind::And, &[inv, 1]).unwrap();
        let or = b.add_gate(GateKind::Or, &[and, 2]).unwrap();
        let n = b.finish(vec![or], vec![]).unwrap();
        let dom = Requirements::new(&n);
        let fault = StuckFault {
            site: FaultSite::Net(inv),
            stuck_at_one: false,
        };
        let req = dom.requirements(&n, &fault).unwrap();
        assert!(req.contains(&(inv, true))); // activation
        assert!(req.contains(&(1, true))); // AND side input non-controlling
        assert!(req.contains(&(2, false))); // OR side input non-controlling
    }

    #[test]
    fn branch_requirements_include_gate_side_pins() {
        let mut b = NetlistBuilder::new(2, 0);
        let and = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let keep = b.add_gate(GateKind::Buf, &[0]).unwrap();
        let n = b.finish(vec![and, keep], vec![]).unwrap();
        let dom = Requirements::new(&n);
        let fault = StuckFault {
            site: FaultSite::Branch { gate: 0, pin: 0 },
            stuck_at_one: true,
        };
        let req = dom.requirements(&n, &fault).unwrap();
        assert!(req.contains(&(0, false))); // activation on the source
        assert!(req.contains(&(1, true))); // other AND pin non-controlling
    }

    #[test]
    fn dead_cone_faults_have_no_requirements() {
        let mut b = NetlistBuilder::new(2, 0);
        let dead = b.add_gate(GateKind::Not, &[0]).unwrap();
        let z = b.add_gate(GateKind::Buf, &[1]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let dom = Requirements::new(&n);
        let fault = StuckFault {
            site: FaultSite::Net(dead),
            stuck_at_one: false,
        };
        assert!(dom.requirements(&n, &fault).is_none());
    }

    #[test]
    fn same_gate_reuse_conflicts_structurally() {
        // AND(x1, x1): a branch fault needs x1=0 to activate and x1=1 on
        // the sibling pin to propagate — contradictory, hence untestable.
        let mut b = NetlistBuilder::new(1, 0);
        let and = b.add_gate(GateKind::And, &[0, 0]).unwrap();
        let n = b.finish(vec![and], vec![]).unwrap();
        let dom = Requirements::new(&n);
        let fault = StuckFault {
            site: FaultSite::Branch { gate: 0, pin: 0 },
            stuck_at_one: true,
        };
        assert!(dom.requirements(&n, &fault).is_none());
    }

    #[test]
    fn cone_inputs_are_not_constrained() {
        // Reconvergence: s = NOT(x1); z = AND(s, x1). For a fault on x1 the
        // AND is a dominator but BOTH its inputs are in the cone, so no
        // side-input requirement is emitted (and none would be sound).
        let mut b = NetlistBuilder::new(1, 0);
        let s = b.add_gate(GateKind::Not, &[0]).unwrap();
        let z = b.add_gate(GateKind::And, &[s, 0]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let dom = Requirements::new(&n);
        let fault = StuckFault {
            site: FaultSite::Net(0),
            stuck_at_one: false,
        };
        let req = dom.requirements(&n, &fault).unwrap();
        assert_eq!(req, vec![(0, true)]); // activation only
    }
}
