//! Static untestability pruning of the stuck-at fault universe.
//!
//! A stuck-at fault is detectable only if its site can be driven to the
//! opposite of the stuck value (activation) and the resulting error can
//! reach a primary or pseudo-primary output (propagation). When either
//! SCOAP measure saturates at [`INFINITE`](crate::INFINITE), no input
//! assignment whatsoever accomplishes the step, so the fault is
//! **statically untestable** — provably undetectable from structure alone,
//! without running ATPG. Pruning these before PODEM removes exactly the
//! faults on which PODEM would burn its full decision budget to conclude
//! `Redundant` (or worse, `Aborted`).
//!
//! A second, stronger prune layers on top of SCOAP: the **FIRE-style**
//! implication check ([`is_fire_untestable`]). Every test detecting a fault
//! must satisfy a set of *necessary* good-value literals — the activation
//! value plus non-controlling side inputs at every dominator gate
//! ([`crate::Requirements::requirements`]). If the implication closure
//! ([`crate::Implications`]) shows those literals mutually inconsistent, no
//! test exists and the fault is untestable without any search.
//!
//! The converse does **not** hold: finite SCOAP measures and consistent
//! requirement sets do not prove testability (both ignore most
//! reconvergent-fanout correlation), so surviving faults still go through
//! ATPG. The classification here is sound, not complete — the cross-check
//! against the exhaustive oracle in the test suite relies on that
//! soundness.

use scanft_netlist::Netlist;
use scanft_sim::faults::{FaultSite, StuckFault};

use crate::implications::Implications;
use crate::requirements::Requirements;
use crate::scoap::Scoap;
use crate::Analysis;

/// The fault universe split by static testability.
#[derive(Debug, Clone)]
pub struct PruneResult {
    /// Faults that survive pruning and proceed to ATPG.
    pub testable: Vec<StuckFault>,
    /// Faults proven undetectable by structure alone.
    pub untestable: Vec<StuckFault>,
}

impl PruneResult {
    /// Fraction of the universe removed, in `[0, 1]`.
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.testable.len() + self.untestable.len();
        if total == 0 {
            0.0
        } else {
            self.untestable.len() as f64 / total as f64
        }
    }
}

/// Whether `fault` is provably undetectable from the SCOAP measures.
///
/// Activation needs the site's driving net controllable to the opposite of
/// the stuck value; propagation needs finite observability at the fault
/// site — the stem observability for a stem fault, the pin observability
/// for a branch fault.
#[must_use]
pub fn is_statically_untestable(netlist: &Netlist, scoap: &Scoap, fault: &StuckFault) -> bool {
    let activation_value = !fault.stuck_at_one;
    match fault.site {
        FaultSite::Net(net) => {
            scoap.is_uncontrollable(net, activation_value) || scoap.is_unobservable(net)
        }
        FaultSite::Branch { gate, pin } => {
            let stem = netlist.gates()[gate as usize].inputs[pin as usize];
            scoap.is_uncontrollable(stem, activation_value)
                || scoap.pin_co(gate as usize, pin as usize) == crate::INFINITE
        }
    }
}

/// Whether `fault` is provably undetectable by the FIRE-style implication
/// argument: the necessary good-value literals of any detecting test (see
/// [`Requirements::requirements`]) are mutually inconsistent under the
/// implication closure.
///
/// Sound, not complete — a `false` answer proves nothing.
#[must_use]
pub fn is_fire_untestable(
    netlist: &Netlist,
    implications: &Implications,
    requirements: &Requirements,
    fault: &StuckFault,
) -> bool {
    let Some(required) = requirements.requirements(netlist, fault) else {
        // Structurally dead (no path to an output) or a single net required
        // at both values.
        return true;
    };
    let mut forced: Vec<Option<bool>> = vec![None; netlist.num_nets()];
    for &(net, v) in &required {
        if implications.infeasible(net, v) {
            return true;
        }
        // Everything a necessary literal forces is itself necessary; a
        // clash anywhere in the union of closures proves untestability.
        for (forced_net, forced_v) in implications.implied(net, v) {
            match forced[forced_net as usize] {
                Some(x) if x != forced_v => return true,
                _ => forced[forced_net as usize] = Some(forced_v),
            }
        }
    }
    false
}

/// Whether `fault` is statically untestable under the combined SCOAP and
/// FIRE-style implication checks.
#[must_use]
pub fn is_statically_untestable_with(
    netlist: &Netlist,
    analysis: &Analysis,
    fault: &StuckFault,
) -> bool {
    is_statically_untestable(netlist, &analysis.scoap, fault)
        || is_fire_untestable(
            netlist,
            &analysis.implications,
            &analysis.requirements,
            fault,
        )
}

/// Splits `faults` into statically testable and untestable partitions,
/// preserving order within each partition.
#[must_use]
pub fn prune_untestable(netlist: &Netlist, scoap: &Scoap, faults: &[StuckFault]) -> PruneResult {
    let (untestable, testable) = faults
        .iter()
        .partition(|f| is_statically_untestable(netlist, scoap, f));
    let result = PruneResult {
        testable,
        untestable,
    };
    scanft_obs::global()
        .counter("analyze.prune.untestable")
        .add(result.untestable.len() as u64);
    result
}

/// Splits `faults` with the combined SCOAP + FIRE classification,
/// preserving order within each partition. The `analyze.prune.fire`
/// counter records how many faults only the implication argument caught.
#[must_use]
pub fn prune_untestable_with(
    netlist: &Netlist,
    analysis: &Analysis,
    faults: &[StuckFault],
) -> PruneResult {
    let (untestable, testable): (Vec<StuckFault>, Vec<StuckFault>) = faults
        .iter()
        .partition(|f| is_statically_untestable_with(netlist, analysis, f));
    let fire_only = untestable
        .iter()
        .filter(|f| !is_statically_untestable(netlist, &analysis.scoap, f))
        .count();
    let result = PruneResult {
        testable,
        untestable,
    };
    let obs = scanft_obs::global();
    obs.counter("analyze.prune.untestable")
        .add(result.untestable.len() as u64);
    obs.counter("analyze.prune.fire").add(fire_only as u64);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_netlist::{GateKind, NetlistBuilder};
    use scanft_sim::faults::enumerate_stuck;

    #[test]
    fn fully_testable_circuit_prunes_nothing() {
        let mut b = NetlistBuilder::new(2, 1);
        let and = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let ns = b.add_gate(GateKind::Xor, &[and, 2]).unwrap();
        let n = b.finish(vec![and], vec![ns]).unwrap();
        let scoap = Scoap::new(&n);
        let faults = enumerate_stuck(&n);
        let result = prune_untestable(&n, &scoap, &faults);
        assert!(result.untestable.is_empty());
        assert_eq!(result.testable.len(), faults.len());
        assert_eq!(result.pruned_fraction(), 0.0);
    }

    #[test]
    fn faults_behind_a_dead_cone_are_pruned() {
        // g1 = AND(x1, x2) feeds only g2 = NOT(g1); g2 dangles (connected
        // nets g1 yes, g2 no). enumerate_stuck skips disconnected g2 but
        // keeps g1, whose only path dies at g2.
        let mut b = NetlistBuilder::new(2, 0);
        let g1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let _g2 = b.add_gate(GateKind::Not, &[g1]).unwrap();
        let live = b.add_gate(GateKind::Or, &[0, 1]).unwrap();
        let n = b.finish(vec![live], vec![]).unwrap();
        let scoap = Scoap::new(&n);
        let faults = enumerate_stuck(&n);
        let result = prune_untestable(&n, &scoap, &faults);
        // Pruned: g1 stems, plus the x1/x2 branches feeding g1 (gate 0).
        assert!(result
            .untestable
            .iter()
            .all(|f| matches!(f.site, FaultSite::Net(net) if net == g1)
                || matches!(f.site, FaultSite::Branch { gate: 0, .. })));
        assert_eq!(result.untestable.len(), 6);
        // Stems of x1/x2 survive through the live OR gate.
        for net in [0, 1] {
            assert!(result
                .testable
                .iter()
                .any(|f| f.site == FaultSite::Net(net)));
        }
    }

    #[test]
    fn branch_faults_judged_at_their_own_pin() {
        // x1 branches: one branch reaches a PO, the other dies in a dangling
        // cone. The stem stays observable; only the dead branch's faults go.
        let mut b = NetlistBuilder::new(2, 0);
        let live = b.add_gate(GateKind::Buf, &[0]).unwrap();
        let dead_and = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let _dead = b.add_gate(GateKind::Not, &[dead_and]).unwrap();
        let n = b.finish(vec![live], vec![]).unwrap();
        let scoap = Scoap::new(&n);
        let faults = enumerate_stuck(&n);
        let result = prune_untestable(&n, &scoap, &faults);
        // Stem x1 testable (via the BUF), branch x1->dead_and untestable.
        assert!(result.testable.iter().any(|f| f.site == FaultSite::Net(0)));
        assert!(result
            .untestable
            .iter()
            .any(|f| f.site == FaultSite::Branch { gate: 1, pin: 0 }));
    }
}
