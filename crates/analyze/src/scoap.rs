//! SCOAP testability measures on a [`Netlist`].
//!
//! The classic Goldstein measures: for every net, the 0-controllability
//! `CC0` and 1-controllability `CC1` estimate how many line assignments are
//! needed to drive the net to 0 resp. 1, and the observability `CO`
//! estimates how many assignments are needed to propagate the net's value
//! to a primary output or scan flop. All three are computed in a single
//! forward plus a single backward topological sweep — net ids in
//! [`Netlist`] are topological by construction, so no work list or
//! recursion is needed — using saturating arithmetic with
//! [`INFINITE`] as the "structurally impossible" value.
//!
//! The formulas per gate kind (inputs `i`, output `o`, `n` = fanin):
//!
//! | kind  | `CC1(o)`             | `CC0(o)`             | `CO(i)`                                |
//! |-------|----------------------|----------------------|----------------------------------------|
//! | AND   | `Σ CC1(i) + 1`       | `min CC1(i) + 1`     | `CO(o) + Σ_{j≠i} CC1(j) + 1`           |
//! | OR    | `min CC1(i) + 1`     | `Σ CC0(i) + 1`       | `CO(o) + Σ_{j≠i} CC0(j) + 1`           |
//! | NAND  | `min CC0(i) + 1`     | `Σ CC1(i) + 1`       | `CO(o) + Σ_{j≠i} CC1(j) + 1`           |
//! | NOR   | `Σ CC0(i) + 1`       | `min CC1(i) + 1`     | `CO(o) + Σ_{j≠i} CC0(j) + 1`           |
//! | XOR   | odd-parity DP `+ 1`  | even-parity DP `+ 1` | `CO(o) + Σ_{j≠i} min(CC0, CC1)(j) + 1` |
//! | NOT   | `CC0(i) + 1`         | `CC1(i) + 1`         | `CO(o) + 1`                            |
//! | BUF   | `CC1(i) + 1`         | `CC0(i) + 1`         | `CO(o) + 1`                            |
//!
//! PIs and PPIs have `CC0 = CC1 = 1` (the scan chain makes every state
//! line as controllable as a primary input); POs and PPOs have `CO = 0`.
//! A stem's observability is the minimum over its fanout branches; branch
//! (per-pin) observabilities are kept separately so branch faults can be
//! judged at their own site.

use scanft_netlist::{GateKind, NetId, Netlist};

/// Sentinel for "no structural way to control/observe this net".
///
/// Saturating arithmetic keeps every sum involving [`INFINITE`] at
/// [`INFINITE`], so the sentinel propagates exactly like the textbook
/// `∞`.
pub const INFINITE: u32 = u32::MAX;

/// SCOAP controllability/observability analysis of one netlist.
///
/// # Examples
///
/// ```
/// use scanft_analyze::Scoap;
/// use scanft_netlist::{GateKind, NetlistBuilder};
///
/// // PO = AND(x1, x2): both inputs must be 1 for a 1 at the output.
/// let mut b = NetlistBuilder::new(2, 0);
/// let g = b.add_gate(GateKind::And, &[0, 1]).unwrap();
/// let n = b.finish(vec![g], vec![]).unwrap();
/// let scoap = Scoap::new(&n);
/// assert_eq!(scoap.cc1(g), 3); // 1 + 1 + 1
/// assert_eq!(scoap.cc0(g), 2); // min(1, 1) + 1
/// assert_eq!(scoap.co(0), 2);  // CO(g)=0, CC1(x2)=1, +1
/// ```
#[derive(Debug, Clone)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
    /// `pin_co[g][p]` = observability of input pin `p` of gate `g`.
    pin_co: Vec<Vec<u32>>,
}

impl Scoap {
    /// Computes the measures for `netlist` in one forward and one backward
    /// sweep.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let obs = scanft_obs::global();
        let _span = obs.timer("analyze.scoap_secs").start();
        let n = netlist.num_nets();
        let num_inputs = netlist.num_pis() + netlist.num_ppis();
        let mut cc0 = vec![INFINITE; n];
        let mut cc1 = vec![INFINITE; n];
        for net in 0..num_inputs {
            cc0[net] = 1;
            cc1[net] = 1;
        }

        // Forward sweep: controllability in gate creation (topological) order.
        for (g, gate) in netlist.gates().iter().enumerate() {
            let out = num_inputs + g;
            let (c0, c1) = controllability(gate.kind, &gate.inputs, &cc0, &cc1);
            cc0[out] = c0;
            cc1[out] = c1;
        }

        // Backward sweep: observability in reverse topological order. Every
        // consumer of a net has a strictly larger gate index, so by the time
        // gate `g` is visited, the observability of its output net is final.
        let mut co = vec![INFINITE; n];
        for &net in netlist.pos().iter().chain(netlist.ppos()) {
            co[net as usize] = 0;
        }
        let mut pin_co: Vec<Vec<u32>> = netlist
            .gates()
            .iter()
            .map(|g| vec![INFINITE; g.inputs.len()])
            .collect();
        for (g, gate) in netlist.gates().iter().enumerate().rev() {
            let out_co = co[num_inputs + g];
            for (pin, &input) in gate.inputs.iter().enumerate() {
                let side = side_cost(gate.kind, &gate.inputs, pin, &cc0, &cc1);
                let through = out_co.saturating_add(side).saturating_add(1);
                pin_co[g][pin] = through;
                let stem = &mut co[input as usize];
                *stem = (*stem).min(through);
            }
        }

        obs.counter("analyze.scoap.runs").inc();
        obs.counter("analyze.scoap.nets").add(n as u64);
        Scoap {
            cc0,
            cc1,
            co,
            pin_co,
        }
    }

    /// 0-controllability of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn cc0(&self, net: NetId) -> u32 {
        self.cc0[net as usize]
    }

    /// 1-controllability of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn cc1(&self, net: NetId) -> u32 {
        self.cc1[net as usize]
    }

    /// Controllability of `net` to the given value.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn controllability(&self, net: NetId, value: bool) -> u32 {
        if value {
            self.cc1(net)
        } else {
            self.cc0(net)
        }
    }

    /// Stem observability of `net` (minimum over all fanout branches, 0 for
    /// POs/PPOs).
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn co(&self, net: NetId) -> u32 {
        self.co[net as usize]
    }

    /// Observability of input pin `pin` of gate `gate` (the branch site).
    ///
    /// # Panics
    ///
    /// Panics if `gate` or `pin` is out of range.
    #[must_use]
    pub fn pin_co(&self, gate: usize, pin: usize) -> u32 {
        self.pin_co[gate][pin]
    }

    /// Whether no completion of any test can ever observe `net` (its stem
    /// observability saturated at [`INFINITE`]).
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn is_unobservable(&self, net: NetId) -> bool {
        self.co(net) == INFINITE
    }

    /// Whether `net` cannot be driven to `value` by any input assignment
    /// reachable through the structural formulas.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn is_uncontrollable(&self, net: NetId, value: bool) -> bool {
        self.controllability(net, value) == INFINITE
    }

    /// Aggregated per-circuit statistics.
    #[must_use]
    pub fn summary(&self) -> ScoapSummary {
        let finite = |values: &[u32]| {
            values
                .iter()
                .copied()
                .filter(|&v| v != INFINITE)
                .max()
                .unwrap_or(0)
        };
        ScoapSummary {
            num_nets: self.co.len(),
            max_cc: finite(&self.cc0).max(finite(&self.cc1)),
            max_co: finite(&self.co),
            num_unobservable: self.co.iter().filter(|&&v| v == INFINITE).count(),
            num_uncontrollable: self
                .cc0
                .iter()
                .zip(&self.cc1)
                .filter(|&(&c0, &c1)| c0 == INFINITE || c1 == INFINITE)
                .count(),
        }
    }
}

/// Aggregate SCOAP statistics of a netlist (see [`Scoap::summary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoapSummary {
    /// Total number of nets analyzed.
    pub num_nets: usize,
    /// Largest finite controllability (0 or 1) over all nets.
    pub max_cc: u32,
    /// Largest finite stem observability over all nets.
    pub max_co: u32,
    /// Nets whose stem observability is [`INFINITE`].
    pub num_unobservable: usize,
    /// Nets with an [`INFINITE`] controllability for either value.
    pub num_uncontrollable: usize,
}

/// Controllability of a gate output from its input measures.
fn controllability(kind: GateKind, inputs: &[NetId], cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let sum = |values: &dyn Fn(NetId) -> u32| {
        inputs
            .iter()
            .fold(0u32, |acc, &i| acc.saturating_add(values(i)))
    };
    let min =
        |values: &dyn Fn(NetId) -> u32| inputs.iter().map(|&i| values(i)).min().unwrap_or(INFINITE);
    let c0 = |i: NetId| cc0[i as usize];
    let c1 = |i: NetId| cc1[i as usize];
    let (out0, out1) = match kind {
        GateKind::And => (min(&c0), sum(&c1)),
        GateKind::Or => (sum(&c0), min(&c1)),
        GateKind::Nand => (sum(&c1), min(&c0)),
        GateKind::Nor => (min(&c1), sum(&c0)),
        GateKind::Not => (c1(inputs[0]), c0(inputs[0])),
        GateKind::Buf => (c0(inputs[0]), c1(inputs[0])),
        GateKind::Xor => {
            // DP over the inputs: cheapest way to an even/odd number of 1s.
            let (mut even, mut odd) = (0u32, INFINITE);
            for &i in inputs {
                let (e, o) = (even, odd);
                even = e.saturating_add(c0(i)).min(o.saturating_add(c1(i)));
                odd = e.saturating_add(c1(i)).min(o.saturating_add(c0(i)));
            }
            (even, odd)
        }
    };
    (out0.saturating_add(1), out1.saturating_add(1))
}

/// Cost of holding every input except `pin` at a value that lets `pin`'s
/// value through (the side-input term of the observability formulas).
fn side_cost(kind: GateKind, inputs: &[NetId], pin: usize, cc0: &[u32], cc1: &[u32]) -> u32 {
    inputs
        .iter()
        .enumerate()
        .filter(|&(p, _)| p != pin)
        .fold(0u32, |acc, (_, &i)| {
            let cost = match kind {
                GateKind::And | GateKind::Nand => cc1[i as usize],
                GateKind::Or | GateKind::Nor => cc0[i as usize],
                GateKind::Xor => cc0[i as usize].min(cc1[i as usize]),
                GateKind::Not | GateKind::Buf => 0,
            };
            acc.saturating_add(cost)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_netlist::NetlistBuilder;

    #[test]
    fn textbook_and_gate() {
        let mut b = NetlistBuilder::new(2, 0);
        let g = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![g], vec![]).unwrap();
        let s = Scoap::new(&n);
        assert_eq!((s.cc0(0), s.cc1(0)), (1, 1));
        assert_eq!(s.cc1(g), 3);
        assert_eq!(s.cc0(g), 2);
        assert_eq!(s.co(g), 0);
        // Observing x1 through the AND needs x2 = 1.
        assert_eq!(s.co(0), 2);
        assert_eq!(s.pin_co(0, 0), 2);
    }

    #[test]
    fn inverter_chain_costs_grow_linearly() {
        let mut b = NetlistBuilder::new(1, 0);
        let mut net = 0;
        for _ in 0..5 {
            net = b.add_gate(GateKind::Not, &[net]).unwrap();
        }
        let n = b.finish(vec![net], vec![]).unwrap();
        let s = Scoap::new(&n);
        assert_eq!(s.cc0(net), 6);
        assert_eq!(s.cc1(net), 6);
        assert_eq!(s.co(0), 5);
    }

    #[test]
    fn xor_parity_dp_matches_two_input_formula() {
        let mut b = NetlistBuilder::new(2, 0);
        let g = b.add_gate(GateKind::Xor, &[0, 1]).unwrap();
        let n = b.finish(vec![g], vec![]).unwrap();
        let s = Scoap::new(&n);
        // CC0 = min(1+1, 1+1) + 1, CC1 = min(1+1, 1+1) + 1.
        assert_eq!(s.cc0(g), 3);
        assert_eq!(s.cc1(g), 3);
        assert_eq!(s.co(0), 2); // CO(g)=0 + min(CC0,CC1)(x2)=1 + 1
    }

    #[test]
    fn dangling_gate_is_unobservable() {
        let mut b = NetlistBuilder::new(2, 0);
        let live = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let dead = b.add_gate(GateKind::Or, &[0, 1]).unwrap();
        let n = b.finish(vec![live], vec![]).unwrap();
        let s = Scoap::new(&n);
        assert!(!s.is_unobservable(live));
        assert!(s.is_unobservable(dead));
        assert_eq!(s.summary().num_unobservable, 1);
        assert_eq!(s.summary().num_uncontrollable, 0);
    }

    #[test]
    fn stem_observability_is_min_over_branches() {
        // x1 feeds a cheap path (BUF -> PO) and an expensive path.
        let mut b = NetlistBuilder::new(3, 0);
        let cheap = b.add_gate(GateKind::Buf, &[0]).unwrap();
        let costly = b.add_gate(GateKind::And, &[0, 1, 2]).unwrap();
        let n = b.finish(vec![cheap, costly], vec![]).unwrap();
        let s = Scoap::new(&n);
        assert_eq!(s.pin_co(0, 0), 1);
        assert_eq!(s.pin_co(1, 0), 3);
        assert_eq!(s.co(0), 1);
    }

    #[test]
    fn ppis_and_ppos_are_scan_accessible() {
        let mut b = NetlistBuilder::new(1, 1);
        let ns = b.add_gate(GateKind::Xor, &[0, 1]).unwrap();
        let n = b.finish(vec![], vec![ns]).unwrap();
        let s = Scoap::new(&n);
        assert_eq!(s.cc0(1), 1);
        assert_eq!(s.co(ns), 0);
        assert!(!s.is_unobservable(0));
    }
}
