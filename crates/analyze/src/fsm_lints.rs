//! Design lints over a [`StateTable`] and its KISS2 source.
//!
//! The table-level lints run on any successfully built machine:
//! unreachable states, inputs that never influence behaviour, and states
//! with no UIO precondition (the paper's prerequisite for functional test
//! generation). Source-level problems — nondeterministic or incomplete
//! product-term tables, malformed KISS2 — surface while parsing, so
//! [`lint_kiss_source`] re-parses under the strict [`Completion::Reject`]
//! policy and maps each failure onto the shared diagnostic model.

use scanft_fsm::kiss::{self, Completion};
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use scanft_fsm::{FsmError, StateId, StateTable};

use crate::diag::{Diagnostic, LintCode, LintLevels, LintReport};

/// Knobs for an FSM lint run.
#[derive(Debug, Clone, Default)]
pub struct FsmLintConfig {
    /// Per-lint severity table.
    pub levels: LintLevels,
    /// UIO length bound used by the [`LintCode::NoUio`] lint. The paper's
    /// default is `L = N_SV`; `None` uses that default.
    pub uio_max_len: Option<usize>,
}

/// Runs every enabled FSM lint over a built state table.
#[must_use]
pub fn lint_state_table(table: &StateTable, config: &FsmLintConfig) -> LintReport {
    let mut report = LintReport::default();
    let levels = &config.levels;
    let diag =
        |code: LintCode, locus: String, message: String, suggestion: Option<String>| Diagnostic {
            severity: levels.level(code),
            code,
            locus,
            message,
            suggestion,
        };

    // Unreachable states (from the reset state 0, the all-zero scan code).
    let reachable = scanft_fsm::graph::reachable_from(table, 0);
    for (s, &ok) in reachable.iter().enumerate() {
        if !ok {
            report.push(diag(
                LintCode::UnreachableState,
                format!("state {}", table.state_name(s as StateId)),
                format!(
                    "state {} is unreachable from the reset state {}; full scan can still load \
                     it, but functional (non-scan) operation never enters it",
                    table.state_name(s as StateId),
                    table.state_name(0)
                ),
                None,
            ));
        }
    }

    // Unused inputs: an input bit no transition's next state or output
    // depends on.
    for bit in 0..table.num_inputs() {
        let mask = 1usize << bit;
        let mut used = false;
        'outer: for s in 0..table.num_states() as StateId {
            for i in 0..table.num_input_combos() {
                if i & mask != 0 {
                    continue;
                }
                if table.step(s, i as u32) != table.step(s, (i | mask) as u32) {
                    used = true;
                    break 'outer;
                }
            }
        }
        if !used {
            report.push(diag(
                LintCode::UnusedInput,
                format!("input x{}", bit + 1),
                format!(
                    "primary input x{} never affects any next state or output",
                    bit + 1
                ),
                Some("drop the input from the machine description".into()),
            ));
        }
    }

    // States without a UIO precondition. Expensive (BFS over a product
    // automaton per state), so it only runs when the lint is not allow-level
    // — which is also why its default level is `allow`.
    if levels.enabled(LintCode::NoUio) {
        let max_len = config.uio_max_len.unwrap_or(table.num_state_vars());
        let uios = derive_uios_with(table, &UioConfig::with_max_len(max_len));
        for s in 0..table.num_states() as StateId {
            if uios.sequence(s).is_none() {
                report.push(diag(
                    LintCode::NoUio,
                    format!("state {}", table.state_name(s)),
                    format!(
                        "state {} has no UIO sequence of length <= {max_len}; its transitions \
                         fall back to scan-based state observation",
                        table.state_name(s)
                    ),
                    Some("raise the UIO length bound `L`".into()),
                ));
            }
        }
    }

    scanft_obs::global()
        .counter("analyze.lint.fsm_diagnostics")
        .add(report.diagnostics.len() as u64);
    report
}

/// Lints raw KISS2 text by parsing it under the strict
/// [`Completion::Reject`] policy and mapping failures onto diagnostics.
///
/// Returns the parsed table (if the source builds at all under the lenient
/// self-loop completion) alongside the report, so callers can chain
/// [`lint_state_table`] without re-parsing.
#[must_use]
pub fn lint_kiss_source(
    text: &str,
    name: &str,
    levels: &LintLevels,
) -> (Option<StateTable>, LintReport) {
    let mut report = LintReport::default();
    match kiss::parse_with(text, name, Completion::Reject) {
        Ok(table) => return (Some(table), report),
        Err(err) => {
            let (code, locus) = classify_fsm_error(&err);
            report.push(Diagnostic {
                severity: levels.level(code),
                code,
                locus,
                message: err.to_string(),
                suggestion: match code {
                    LintCode::IncompleteTable => {
                        Some("specify the entry or accept self-loop completion".into())
                    }
                    LintCode::NondeterministicTable => {
                        Some("remove or reconcile the overlapping product terms".into())
                    }
                    _ => None,
                },
            });
        }
    }
    // An incomplete table still builds under the lenient default policy;
    // anything else is unusable.
    let table = kiss::parse_with(text, name, Completion::SelfLoop).ok();
    (table, report)
}

/// Maps an [`FsmError`] onto the lint code and locus it evidences.
fn classify_fsm_error(err: &FsmError) -> (LintCode, String) {
    match err {
        FsmError::IncompletelySpecified {
            state_name, input, ..
        } => (
            LintCode::IncompleteTable,
            format!("state {state_name}, input {input}"),
        ),
        FsmError::ParseKiss { line, message } => {
            let code = if message.contains("conflicting product terms") {
                LintCode::NondeterministicTable
            } else {
                LintCode::MalformedSource
            };
            (code, format!("line {line}"))
        }
        _ => (LintCode::MalformedSource, "kiss2 source".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use scanft_fsm::StateTableBuilder;

    fn has(report: &LintReport, code: LintCode) -> bool {
        report.diagnostics.iter().any(|d| d.code == code)
    }

    #[test]
    fn benchmark_machines_are_clean() {
        let lion = scanft_fsm::benchmarks::lion();
        let report = lint_state_table(&lion, &FsmLintConfig::default());
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn unreachable_state_is_named() {
        // State 2 has no in-edges from {0, 1}.
        let mut b = StateTableBuilder::new("island", 1, 1, 3).unwrap();
        for (s, i, n, o) in [(0, 0, 0, 0), (0, 1, 1, 1), (1, 0, 0, 0), (1, 1, 1, 1)] {
            b.set(s, i, n, o).unwrap();
        }
        b.set(2, 0, 2, 0).unwrap();
        b.set(2, 1, 0, 1).unwrap();
        b.name_state(2, "isle").unwrap();
        let t = b.build().unwrap();
        let report = lint_state_table(&t, &FsmLintConfig::default());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::UnreachableState)
            .expect("unreachable-state fires");
        assert_eq!(d.locus, "state isle");
    }

    #[test]
    fn unused_input_detected() {
        // 2-input machine that only looks at bit 0.
        let mut b = StateTableBuilder::new("lazy", 2, 1, 2).unwrap();
        for s in 0..2u32 {
            for i in 0..4u32 {
                let bit = i & 1;
                b.set(s, i, bit, bit as u64).unwrap();
            }
        }
        let t = b.build().unwrap();
        let report = lint_state_table(&t, &FsmLintConfig::default());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::UnusedInput)
            .expect("unused-input fires");
        assert_eq!(d.locus, "input x2");
    }

    #[test]
    fn no_uio_lint_is_opt_in() {
        // A machine with identical rows: no state has a UIO.
        let mut b = StateTableBuilder::new("blind", 1, 1, 2).unwrap();
        for s in 0..2u32 {
            b.set(s, 0, 0, 0).unwrap();
            b.set(s, 1, 1, 0).unwrap();
        }
        let t = b.build().unwrap();
        let default = lint_state_table(&t, &FsmLintConfig::default());
        assert!(!has(&default, LintCode::NoUio), "allow-level by default");
        let mut config = FsmLintConfig::default();
        config.levels.set(LintCode::NoUio, Severity::Warn);
        let strict = lint_state_table(&t, &config);
        assert_eq!(
            strict
                .diagnostics
                .iter()
                .filter(|d| d.code == LintCode::NoUio)
                .count(),
            2
        );
    }

    #[test]
    fn nondeterministic_kiss_trips_deny() {
        let src = "\
.i 1
.o 1
.s 2
.r a
0 a a 0
0 a b 1
1 a b 1
- b a 0
.e
";
        let (_, report) = lint_kiss_source(src, "dup", &LintLevels::default());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::NondeterministicTable)
            .expect("nondeterministic-table fires");
        assert_eq!(d.severity, Severity::Deny);
        assert!(d.locus.starts_with("line "));
        assert!(!report.passes());
    }

    #[test]
    fn incomplete_kiss_warns_but_still_builds() {
        let src = "\
.i 1
.o 1
.s 2
.r a
0 a a 0
1 a b 1
1 b a 1
.e
";
        let (table, report) = lint_kiss_source(src, "gap", &LintLevels::default());
        assert!(table.is_some(), "lenient completion still builds");
        assert!(has(&report, LintCode::IncompleteTable));
        assert!(report.passes(), "incomplete-table is warn-level");
    }

    #[test]
    fn garbage_kiss_is_malformed_source() {
        let (table, report) = lint_kiss_source(".i nope\n", "bad", &LintLevels::default());
        assert!(table.is_none());
        assert!(has(&report, LintCode::MalformedSource));
        assert!(!report.passes());
    }
}
