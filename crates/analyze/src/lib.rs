//! Static testability analysis and design lints for the scanft workspace.
//!
//! The paper's functional test-generation flow (and every downstream stage:
//! synthesis, fault simulation, PODEM top-up) assumes well-formed state
//! tables and scan netlists. This crate verifies those assumptions *before*
//! the expensive stages run, with three cooperating passes:
//!
//! 1. **SCOAP testability** ([`Scoap`]) — Goldstein's 0/1-controllability
//!    and observability measures, computed in one forward plus one backward
//!    topological sweep with saturating arithmetic.
//! 2. **Lint suites** ([`lint_netlist`], [`lint_state_table`],
//!    [`lint_kiss_source`]) — structural netlist checks (floating inputs,
//!    dangling outputs, unobservable/uncontrollable nets, fanin bounds,
//!    scan-chain integrity) and FSM checks (unreachable states, unused
//!    inputs, missing UIO preconditions, nondeterministic or incomplete
//!    tables), all reporting through one [`Diagnostic`] model with a
//!    deny/warn/allow [`LintLevels`] table.
//! 3. **Static learning** ([`Implications`], [`Requirements`]) — an
//!    implication engine with SOCRATES-style contrapositive learning over
//!    the netlist's literal graph, plus necessary-assignment extraction
//!    from the netlist layer's post-dominator tree. The closure yields
//!    constant and equivalent nets (surfaced as [`ConstFacts`], the one
//!    fact set shared by the lints and the `scanft-opt` rewriter),
//!    FIRE-style fault-independent untestability proofs, and the necessary
//!    assignments that guide PODEM's search in `scanft-atpg`.
//! 4. **Static pruning** ([`prune_untestable`], [`prune_untestable_with`])
//!    — faults whose SCOAP measures or implication requirements prove them
//!    undetectable are classified statically untestable and removed from
//!    the ATPG universe, and the same measures replace the raw level
//!    heuristic in PODEM's backtrace.
//!
//! Everything is surfaced through the `scanft lint` CLI subcommand and
//! `analyze.*` observability metrics.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod diag;
pub mod facts;
pub mod fsm_lints;
pub mod implications;
pub mod netlist_lints;
pub mod prune;
pub mod requirements;
pub mod scoap;

pub use diag::{Diagnostic, LintCode, LintLevels, LintReport, Severity, ALL_LINTS};
pub use facts::ConstFacts;
pub use fsm_lints::{lint_kiss_source, lint_state_table, FsmLintConfig};
pub use implications::Implications;
pub use netlist_lints::{lint_import_error, lint_netlist, NetlistLintConfig};
pub use prune::{
    is_fire_untestable, is_statically_untestable, is_statically_untestable_with, prune_untestable,
    prune_untestable_with, PruneResult,
};
pub use requirements::Requirements;
pub use scoap::{Scoap, ScoapSummary, INFINITE};

use scanft_netlist::Netlist;

/// The three static analyses bundled for consumers that need them together
/// (fault pruning and implication-guided PODEM).
#[derive(Debug, Clone)]
pub struct Analysis {
    /// SCOAP controllability/observability measures.
    pub scoap: Scoap,
    /// The static implication closure (direct + learned).
    pub implications: Implications,
    /// Necessary-requirement extraction over the post-dominator tree and
    /// fanout-cone reachability.
    pub requirements: Requirements,
}

impl Analysis {
    /// Runs all three analyses over `netlist`.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        Analysis {
            scoap: Scoap::new(netlist),
            implications: Implications::new(netlist),
            requirements: Requirements::new(netlist),
        }
    }
}
