//! Static learning: an implication engine over the scan netlist.
//!
//! A **literal** is a (net, value) pair. The engine computes, for every
//! literal `a`, the set of literals forced in *every* consistent circuit
//! assignment that satisfies `a` — the transitive closure of the implication
//! relation. Three sources feed the closure:
//!
//! 1. **Direct implications** from gate semantics, found by three-valued
//!    constraint propagation: forward rules (`AND` with a 0 input drives 0)
//!    and backward justification rules (`AND` output 1 forces every input
//!    to 1; `AND` output 0 with all side inputs at 1 forces the last input
//!    to 0).
//! 2. **Indirect (SOCRATES-style) implications** learned by contraposition:
//!    whenever propagation shows `a ⇒ b`, the engine records `¬b ⇒ ¬a` as a
//!    new graph edge. Re-propagating with learned edges reaches conclusions
//!    pure local propagation cannot (the classic reconvergent-fanout cases),
//!    so learning iterates to a fixpoint.
//! 3. **Ex falso**: a literal whose propagation *conflicts* is infeasible —
//!    the net is provably **constant** at the opposite value in every
//!    consistent assignment. Constants are seeded into all later
//!    propagation runs.
//!
//! Soundness argument: propagation only ever applies gate-consistency rules,
//! so every assigned literal holds in every total consistent extension of
//! the seed. Contraposition preserves truth, and a conflict under seed `a`
//! means no consistent extension satisfies `a` at all. The property suite
//! cross-checks every reported implication, constant, and equivalence
//! against exhaustive enumeration on all tractable circuits.
//!
//! Consumers: FIRE-style untestability proofs ([`crate::prune`]),
//! implication-guided PODEM (`scanft-atpg`), and the `constant-net` /
//! `equivalent-nets` design lints ([`crate::netlist_lints`]).

use scanft_netlist::{GateKind, NetId, Netlist};

/// Index of a literal: `2 * net + value`.
fn lit(net: NetId, value: bool) -> usize {
    2 * net as usize + usize::from(value)
}

/// The net of literal `l`.
fn lit_net(l: usize) -> NetId {
    (l / 2) as NetId
}

/// The value of literal `l`.
fn lit_value(l: usize) -> bool {
    l % 2 == 1
}

/// The complement literal `¬l`.
fn neg(l: usize) -> usize {
    l ^ 1
}

/// How many learning rounds to run at most. Each round re-propagates every
/// literal with all edges learned so far; in practice the fixpoint arrives
/// after two or three rounds, the bound only guards pathological inputs.
const MAX_ROUNDS: usize = 8;

/// The static implication closure of a netlist: for every literal, every
/// other literal it forces, plus the constants and equivalent net pairs that
/// fall out of the closure.
///
/// # Examples
///
/// ```
/// use scanft_analyze::Implications;
/// use scanft_netlist::{GateKind, NetlistBuilder};
///
/// # fn main() -> Result<(), scanft_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(2, 0);
/// let a = b.add_gate(GateKind::And, &[0, 1])?;
/// let o = b.add_gate(GateKind::Or, &[0, 1])?;
/// let n = b.finish(vec![a, o], vec![])?;
/// let imp = Implications::new(&n);
/// assert!(imp.implies(a, true, o, true)); // AND=1 ⇒ both inputs 1 ⇒ OR=1
/// assert!(imp.implies(o, false, a, false)); // the contrapositive
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Implications {
    num_nets: usize,
    words_per_row: usize,
    /// `rows[l]` = bitset over literals forced by literal `l` (including
    /// `l` itself). Meaningless when `infeasible[l]`.
    rows: Vec<u64>,
    /// Literals that conflict under propagation — no consistent assignment
    /// satisfies them.
    infeasible: Vec<bool>,
    /// Per-net constant value, when proven.
    constant: Vec<Option<bool>>,
    /// Indirect (contrapositive) implication edges learned.
    learned: u64,
}

impl Implications {
    /// Runs static learning over `netlist` to a fixpoint.
    ///
    /// Cost is `O(rounds * literals * propagation)` with small constants;
    /// the `analyze.implications_secs` timer and
    /// `analyze.implications_learned` counter record the work done.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let obs = scanft_obs::global();
        let _span = obs.timer("analyze.implications_secs").start();
        let n = netlist.num_nets();
        let lits = 2 * n;
        let words_per_row = lits.div_ceil(64).max(1);
        let mut engine = Implications {
            num_nets: n,
            words_per_row,
            rows: vec![0u64; lits * words_per_row],
            infeasible: vec![false; lits],
            constant: vec![None; n],
            learned: 0,
        };
        // Learned contrapositive edges, per source literal, plus a set to
        // keep the count of distinct learned pairs exact across rounds.
        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); lits];
        let mut known: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let mut prop = Propagator::new(netlist);
        for _round in 0..MAX_ROUNDS {
            engine.close_all(netlist, &edges, &mut prop);
            let mut grew = false;
            for l in 0..lits {
                if engine.infeasible[l] || engine.constant[lit_net(l) as usize].is_some() {
                    continue;
                }
                let row = &engine.rows[l * words_per_row..(l + 1) * words_per_row];
                for m in iter_bits(row) {
                    if m == l || engine.infeasible[neg(m)] {
                        continue;
                    }
                    // a ⇒ b learned as ¬b ⇒ ¬a, unless the closure of ¬b
                    // already carries ¬a.
                    if !engine.row_bit(neg(m), neg(l))
                        && known.insert((neg(m) as u32, neg(l) as u32))
                    {
                        edges[neg(m)].push(neg(l) as u32);
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        engine.learned = known.len() as u64;
        obs.counter("analyze.implications_learned")
            .add(engine.learned);
        obs.counter("analyze.implications.literals")
            .add(lits as u64);
        engine
    }

    /// Recomputes every literal's closure row with the current learned
    /// edges and constants.
    fn close_all(&mut self, netlist: &Netlist, edges: &[Vec<u32>], prop: &mut Propagator) {
        let lits = 2 * self.num_nets;
        // Constants may be discovered mid-sweep; sweeping until stable keeps
        // every row consistent with the full constant set.
        loop {
            let constants: Vec<(NetId, bool)> = self
                .constant
                .iter()
                .enumerate()
                .filter_map(|(net, c)| c.map(|v| (net as NetId, v)))
                .collect();
            for l in 0..lits {
                let net = lit_net(l);
                if let Some(c) = self.constant[net as usize] {
                    self.infeasible[l] = c != lit_value(l);
                    if self.infeasible[l] {
                        continue;
                    }
                }
                match prop.propagate(netlist, edges, &constants, l) {
                    Ok(values) => {
                        self.infeasible[l] = false;
                        let row =
                            &mut self.rows[l * self.words_per_row..(l + 1) * self.words_per_row];
                        row.fill(0);
                        for (net, v) in values {
                            let m = lit(net, v);
                            row[m / 64] |= 1 << (m % 64);
                        }
                    }
                    Err(Conflict) => {
                        self.infeasible[l] = true;
                    }
                }
            }
            let mut new_constant = false;
            for net in 0..self.num_nets {
                if self.constant[net].is_none() {
                    for v in [false, true] {
                        if self.infeasible[lit(net as NetId, v)] {
                            self.constant[net] = Some(!v);
                            new_constant = true;
                        }
                    }
                }
            }
            if !new_constant {
                return;
            }
        }
    }

    fn row_bit(&self, l: usize, m: usize) -> bool {
        self.rows[l * self.words_per_row + m / 64] >> (m % 64) & 1 == 1
    }

    /// Whether setting net `a` to `av` forces net `b` to `bv` in every
    /// consistent assignment. Vacuously true when `(a, av)` is infeasible.
    #[must_use]
    pub fn implies(&self, a: NetId, av: bool, b: NetId, bv: bool) -> bool {
        let la = lit(a, av);
        if self.infeasible[la] {
            return true;
        }
        if let Some(c) = self.constant[b as usize] {
            return c == bv;
        }
        self.row_bit(la, lit(b, bv))
    }

    /// Whether no consistent assignment sets `net` to `value` (the net is
    /// constant at the complement).
    #[must_use]
    pub fn infeasible(&self, net: NetId, value: bool) -> bool {
        self.infeasible[lit(net, value)]
    }

    /// The proven constant value of `net`, if any.
    #[must_use]
    pub fn constant(&self, net: NetId) -> Option<bool> {
        self.constant[net as usize]
    }

    /// All nets proven constant, with their stuck value, in net order.
    #[must_use]
    pub fn constants(&self) -> Vec<(NetId, bool)> {
        self.constant
            .iter()
            .enumerate()
            .filter_map(|(net, c)| c.map(|v| (net as NetId, v)))
            .collect()
    }

    /// Every literal forced by `(net, value)`, including itself, in net
    /// order. Empty when the literal is infeasible — use
    /// [`Implications::infeasible`] to distinguish.
    #[must_use]
    pub fn implied(&self, net: NetId, value: bool) -> Vec<(NetId, bool)> {
        let l = lit(net, value);
        if self.infeasible[l] {
            return Vec::new();
        }
        let row = &self.rows[l * self.words_per_row..(l + 1) * self.words_per_row];
        iter_bits(row).map(|m| (lit_net(m), lit_value(m))).collect()
    }

    /// Pairs of distinct non-constant nets `(a, b)`, `a < b`, proven equal
    /// in every consistent assignment (`a=1 ⇔ b=1`; the `0` direction is
    /// the contrapositive and thus free).
    #[must_use]
    pub fn equivalent_pairs(&self) -> Vec<(NetId, NetId)> {
        let mut pairs = Vec::new();
        for a in 0..self.num_nets {
            if self.constant[a].is_some() {
                continue;
            }
            let la = lit(a as NetId, true);
            let row = &self.rows[la * self.words_per_row..(la + 1) * self.words_per_row];
            for m in iter_bits(row) {
                let b = lit_net(m);
                if lit_value(m)
                    && (b as usize) > a
                    && self.constant[b as usize].is_none()
                    && self.row_bit(m, la)
                {
                    pairs.push((a as NetId, b));
                }
            }
        }
        pairs
    }

    /// Equivalence classes of non-constant nets proven equal, each sorted
    /// by net id, classes ordered by their smallest member. Singleton
    /// classes are omitted.
    ///
    /// This is [`Implications::equivalent_pairs`] folded through union-find:
    /// a class of `k` equal nets yields one entry instead of `k·(k-1)/2`
    /// pair findings, which is what the `equivalent-nets` lint reports.
    #[must_use]
    pub fn equivalence_classes(&self) -> Vec<Vec<NetId>> {
        let mut parent: Vec<usize> = (0..self.num_nets).collect();
        fn root(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (a, b) in self.equivalent_pairs() {
            let (ra, rb) = (root(&mut parent, a as usize), root(&mut parent, b as usize));
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
        let mut members: std::collections::BTreeMap<usize, Vec<NetId>> =
            std::collections::BTreeMap::new();
        for net in 0..self.num_nets {
            let r = root(&mut parent, net);
            members.entry(r).or_default().push(net as NetId);
        }
        members.into_values().filter(|c| c.len() > 1).collect()
    }

    /// Number of indirect (contrapositive) implication edges learned beyond
    /// what direct propagation finds.
    #[must_use]
    pub fn num_learned(&self) -> u64 {
        self.learned
    }

    /// Number of nets this closure was built for.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }
}

/// Iterates the set bit positions of a bitset row.
fn iter_bits(row: &[u64]) -> impl Iterator<Item = usize> + '_ {
    row.iter().enumerate().flat_map(|(w, &bits)| {
        let mut bits = bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(w * 64 + b)
        })
    })
}

/// Conflict marker: propagation derived both values for some net.
struct Conflict;

/// Reusable three-valued constraint propagator (scratch buffers are kept
/// across runs to avoid reallocating per literal).
struct Propagator {
    values: Vec<Option<bool>>,
    /// Nets assigned in the current run, also serving as the worklist.
    trail: Vec<NetId>,
    /// Worklist cursor.
    cursor: usize,
}

impl Propagator {
    fn new(netlist: &Netlist) -> Self {
        Propagator {
            values: vec![None; netlist.num_nets()],
            trail: Vec::with_capacity(netlist.num_nets()),
            cursor: 0,
        }
    }

    /// Propagates seed literal `seed` (plus all known constants) to a
    /// fixpoint, returning every assigned (net, value) pair, or [`Conflict`]
    /// if the seed is infeasible.
    fn propagate(
        &mut self,
        netlist: &Netlist,
        edges: &[Vec<u32>],
        constants: &[(NetId, bool)],
        seed: usize,
    ) -> Result<Vec<(NetId, bool)>, Conflict> {
        for &net in &self.trail {
            self.values[net as usize] = None;
        }
        self.trail.clear();
        self.cursor = 0;
        let run = (|| {
            for &(net, v) in constants {
                self.assign(net, v)?;
            }
            self.assign(lit_net(seed), lit_value(seed))?;
            while self.cursor < self.trail.len() {
                let net = self.trail[self.cursor];
                self.cursor += 1;
                let v = self.values[net as usize].unwrap_or(false);
                for &target in &edges[lit(net, v)] {
                    self.assign(lit_net(target as usize), lit_value(target as usize))?;
                }
                if let Some(g) = netlist.driver_index(net) {
                    self.apply_gate(netlist, g)?;
                }
                for &g in netlist.fanout(net) {
                    self.apply_gate(netlist, g as usize)?;
                }
            }
            Ok(())
        })();
        run.map(|()| {
            self.trail
                .iter()
                .map(|&net| (net, self.values[net as usize].unwrap_or(false)))
                .collect()
        })
    }

    fn assign(&mut self, net: NetId, v: bool) -> Result<(), Conflict> {
        match self.values[net as usize] {
            Some(x) if x == v => Ok(()),
            Some(_) => Err(Conflict),
            None => {
                self.values[net as usize] = Some(v);
                self.trail.push(net);
                Ok(())
            }
        }
    }

    /// Applies every forward and backward consistency rule of gate `g`.
    fn apply_gate(&mut self, netlist: &Netlist, g: usize) -> Result<(), Conflict> {
        let gate = &netlist.gates()[g];
        let out = netlist.gate_output(g);
        let kind = gate.kind;
        match kind {
            GateKind::Not | GateKind::Buf => {
                let invert = kind == GateKind::Not;
                let input = gate.inputs[0];
                if let Some(v) = self.values[input as usize] {
                    self.assign(out, v ^ invert)?;
                }
                if let Some(v) = self.values[out as usize] {
                    self.assign(input, v ^ invert)?;
                }
            }
            GateKind::Xor => {
                let mut parity = false;
                let mut unknown = None;
                let mut unknowns = 0usize;
                for (pin, &input) in gate.inputs.iter().enumerate() {
                    match self.values[input as usize] {
                        Some(v) => parity ^= v,
                        None => {
                            unknown = Some(pin);
                            unknowns += 1;
                        }
                    }
                }
                match (unknowns, self.values[out as usize]) {
                    (0, _) => self.assign(out, parity)?,
                    (1, Some(v)) => {
                        let pin = unknown.unwrap_or(0);
                        self.assign(gate.inputs[pin], v ^ parity)?;
                    }
                    _ => {}
                }
            }
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => {
                let controlling = matches!(kind, GateKind::Or | GateKind::Nor);
                let invert = matches!(kind, GateKind::Nand | GateKind::Nor);
                let mut unknown = None;
                let mut unknowns = 0usize;
                let mut any_controlling = false;
                for (pin, &input) in gate.inputs.iter().enumerate() {
                    match self.values[input as usize] {
                        Some(v) if v == controlling => any_controlling = true,
                        Some(_) => {}
                        None => {
                            unknown = Some(pin);
                            unknowns += 1;
                        }
                    }
                }
                if any_controlling {
                    self.assign(out, controlling ^ invert)?;
                } else if unknowns == 0 {
                    self.assign(out, !controlling ^ invert)?;
                }
                if let Some(v) = self.values[out as usize] {
                    if v == !controlling ^ invert {
                        // Non-controlled result: every input at the
                        // non-controlling value.
                        for &input in &gate.inputs {
                            self.assign(input, !controlling)?;
                        }
                    } else if unknowns == 1 && !any_controlling {
                        // Controlled result with one candidate left: it must
                        // supply the controlling value.
                        let pin = unknown.unwrap_or(0);
                        self.assign(gate.inputs[pin], controlling)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_netlist::NetlistBuilder;

    fn and_or_pair() -> (Netlist, NetId, NetId) {
        let mut b = NetlistBuilder::new(2, 0);
        let a = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let o = b.add_gate(GateKind::Or, &[0, 1]).unwrap();
        let n = b.finish(vec![a, o], vec![]).unwrap();
        (n, a, o)
    }

    #[test]
    fn direct_forward_and_backward_implications() {
        let (n, a, o) = and_or_pair();
        let imp = Implications::new(&n);
        // Backward from AND=1 through the shared inputs, forward into OR.
        assert!(imp.implies(a, true, 0, true));
        assert!(imp.implies(a, true, 1, true));
        assert!(imp.implies(a, true, o, true));
        // Backward from OR=0, forward into AND.
        assert!(imp.implies(o, false, a, false));
        // Inputs are free variables: no implication between them.
        assert!(!imp.implies(0, true, 1, true));
        assert!(!imp.implies(0, true, a, true));
    }

    #[test]
    fn contrapositive_is_learned() {
        let (n, a, o) = and_or_pair();
        let imp = Implications::new(&n);
        // Direct propagation from o=1 learns nothing (either input may be
        // the one that is high), but a=1 ⇒ o=1 contraposes to o=0 ⇒ a=0 —
        // which direct propagation also finds — and a subtler one: ¬(o=1)
        // from ¬(a... the engine must at minimum agree on closure symmetry.
        assert!(imp.implies(o, false, a, false));
        assert_eq!(imp.constants(), vec![]);
    }

    #[test]
    fn indirect_implication_via_learning() {
        // z = OR(AND(x1, x2), AND(x1, x3)): z=1 requires x1=1, but only
        // contrapositive learning sees it: x1=0 ⇒ both ANDs 0 ⇒ z=0, so
        // z=1 ⇒ x1=1 is learned indirectly.
        let mut b = NetlistBuilder::new(3, 0);
        let a1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let a2 = b.add_gate(GateKind::And, &[0, 2]).unwrap();
        let z = b.add_gate(GateKind::Or, &[a1, a2]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let imp = Implications::new(&n);
        assert!(imp.implies(z, true, 0, true));
        assert!(imp.num_learned() > 0);
    }

    #[test]
    fn constant_net_detected() {
        // c = AND(x, NOT(x)) is constant 0.
        let mut b = NetlistBuilder::new(1, 0);
        let nx = b.add_gate(GateKind::Not, &[0]).unwrap();
        let c = b.add_gate(GateKind::And, &[0, nx]).unwrap();
        let z = b.add_gate(GateKind::Or, &[c, 0]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let imp = Implications::new(&n);
        assert_eq!(imp.constant(c), Some(false));
        assert!(imp.infeasible(c, true));
        assert_eq!(imp.constants(), vec![(c, false)]);
        // With c pinned at 0, z degenerates to x — and the closure knows it.
        assert!(imp.implies(0, true, z, true));
        assert!(imp.implies(0, false, z, false));
    }

    #[test]
    fn equivalent_nets_detected() {
        // Double inversion: y = NOT(NOT(x)) is equivalent to b = BUF(x).
        let mut b = NetlistBuilder::new(1, 0);
        let n1 = b.add_gate(GateKind::Not, &[0]).unwrap();
        let y = b.add_gate(GateKind::Not, &[n1]).unwrap();
        let bf = b.add_gate(GateKind::Buf, &[0]).unwrap();
        let n = b.finish(vec![y, bf], vec![]).unwrap();
        let imp = Implications::new(&n);
        let pairs = imp.equivalent_pairs();
        // x ≡ y, x ≡ bf, y ≡ bf (net 0 itself counts: it is a non-constant
        // net equal to both derived copies).
        assert!(pairs.contains(&(0, y)));
        assert!(pairs.contains(&(0, bf)));
        assert!(pairs.contains(&(y, bf)));
    }

    #[test]
    fn xor_parity_rules() {
        let mut b = NetlistBuilder::new(2, 0);
        let x = b.add_gate(GateKind::Xor, &[0, 1]).unwrap();
        let n = b.finish(vec![x], vec![]).unwrap();
        let imp = Implications::new(&n);
        // A single known input never determines an XOR.
        assert!(!imp.implies(0, true, x, true));
        assert!(!imp.implies(0, true, x, false));
        // But XOR out + one input pins the other input... only under a seed
        // containing two literals, which single-literal closure cannot see.
        assert!(!imp.implies(x, true, 0, true));
    }

    #[test]
    fn implied_lists_are_symmetric_with_implies() {
        let (n, a, o) = and_or_pair();
        let imp = Implications::new(&n);
        let fwd = imp.implied(a, true);
        assert!(fwd.contains(&(0, true)));
        assert!(fwd.contains(&(1, true)));
        assert!(fwd.contains(&(o, true)));
        assert!(fwd.contains(&(a, true)));
        for &(net, v) in &fwd {
            assert!(imp.implies(a, true, net, v));
        }
    }
}
