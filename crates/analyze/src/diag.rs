//! The unified diagnostic model shared by the netlist and FSM lint suites.
//!
//! Every lint finding is a [`Diagnostic`]: a severity, a stable
//! [`LintCode`], a human-locatable locus (net, state, or source line), a
//! message, and an optional suggestion. Severities come from a
//! [`LintLevels`] table — every lint is individually toggleable between
//! `allow`, `warn`, and `deny`, mirroring the compiler-lint model the Rust
//! toolchain itself uses.

use std::fmt;

/// How seriously a lint finding should be treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed: the lint does not run (or its findings are dropped).
    Allow,
    /// Reported, but does not fail the run.
    Warn,
    /// Reported and fails the run (`scanft lint` exits non-zero).
    Deny,
}

impl Severity {
    /// Lowercase name as used on the command line (`allow`/`warn`/`deny`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// Parses a command-line severity name.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable identifier of one lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// A PI or PPI that drives nothing (no fanout, not an output).
    FloatingInput,
    /// A gate output with no fanout that is neither a PO nor a PPO.
    DanglingOutput,
    /// A net whose SCOAP observability is structurally infinite.
    Unobservable,
    /// A net with an infinite SCOAP controllability for some value.
    Uncontrollable,
    /// A gate whose fanin exceeds the configured bound.
    FaninBound,
    /// A net proven constant by the implication engine: it holds one value
    /// under every input assignment, so half its stuck-at faults are
    /// untestable and the logic computing it is dead weight.
    ConstantNet,
    /// Two distinct nets proven equal under every input assignment —
    /// duplicated logic that inflates area and the fault universe.
    EquivalentNets,
    /// The scan boundary is inconsistent (PPO count ≠ PPI count).
    ScanChainIntegrity,
    /// A net referenced as driven is never defined (BLIF import).
    UndrivenNet,
    /// A state unreachable from the reset state through the state graph.
    UnreachableState,
    /// A `(state, input)` entry with no specified behaviour.
    IncompleteTable,
    /// Conflicting behaviour specified for the same `(state, input)`.
    NondeterministicTable,
    /// A state with no UIO sequence within the configured length bound.
    NoUio,
    /// A primary input that never affects any next state or output.
    UnusedInput,
    /// A source file that failed to parse for a reason not covered by a
    /// more specific code.
    MalformedSource,
    /// Rust source uses `std::sync` primitives directly instead of the
    /// `scanft_race::sync` facade (source-invariant lint).
    RawStdSync,
    /// Rust source spawns or sleeps via `std::thread` instead of the
    /// `scanft_race::thread` facade (source-invariant lint).
    RawThreadSpawn,
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`) inside a file
    /// marked `race-lint: deterministic-replay` (source-invariant lint).
    WallClockInReplay,
    /// `Ordering::Relaxed` outside the statistics-counter zone
    /// (source-invariant lint; the policy is documented in DESIGN.md).
    RelaxedOrderingPolicy,
    /// `.expect`/`.unwrap` on a lock or condvar-wait result — poisoning
    /// must not cascade through server/harness request paths
    /// (source-invariant lint).
    LockPoisonExpect,
}

/// All lint codes, in report order.
pub const ALL_LINTS: &[LintCode] = &[
    LintCode::FloatingInput,
    LintCode::DanglingOutput,
    LintCode::Unobservable,
    LintCode::Uncontrollable,
    LintCode::FaninBound,
    LintCode::ConstantNet,
    LintCode::EquivalentNets,
    LintCode::ScanChainIntegrity,
    LintCode::UndrivenNet,
    LintCode::UnreachableState,
    LintCode::IncompleteTable,
    LintCode::NondeterministicTable,
    LintCode::NoUio,
    LintCode::UnusedInput,
    LintCode::MalformedSource,
    LintCode::RawStdSync,
    LintCode::RawThreadSpawn,
    LintCode::WallClockInReplay,
    LintCode::RelaxedOrderingPolicy,
    LintCode::LockPoisonExpect,
];

impl LintCode {
    /// The stable kebab-case name used in reports and on the command line.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::FloatingInput => "floating-input",
            LintCode::DanglingOutput => "dangling-output",
            LintCode::Unobservable => "unobservable",
            LintCode::Uncontrollable => "uncontrollable",
            LintCode::FaninBound => "fanin-bound",
            LintCode::ConstantNet => "constant-net",
            LintCode::EquivalentNets => "equivalent-nets",
            LintCode::ScanChainIntegrity => "scan-chain-integrity",
            LintCode::UndrivenNet => "undriven-net",
            LintCode::UnreachableState => "unreachable-state",
            LintCode::IncompleteTable => "incomplete-table",
            LintCode::NondeterministicTable => "nondeterministic-table",
            LintCode::NoUio => "no-uio",
            LintCode::UnusedInput => "unused-input",
            LintCode::MalformedSource => "malformed-source",
            LintCode::RawStdSync => "raw-std-sync",
            LintCode::RawThreadSpawn => "raw-thread-spawn",
            LintCode::WallClockInReplay => "wall-clock-in-replay",
            LintCode::RelaxedOrderingPolicy => "relaxed-ordering-policy",
            LintCode::LockPoisonExpect => "lock-poison-expect",
        }
    }

    /// Parses a lint name as printed by [`LintCode::as_str`].
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        ALL_LINTS.iter().copied().find(|c| c.as_str() == text)
    }

    /// The built-in severity of this lint.
    ///
    /// Structural impossibilities (undriven nets, nondeterministic tables,
    /// a broken scan boundary) deny by default; style- and
    /// testability-degrading findings warn; the expensive UIO precondition
    /// check is opt-in. The source-invariant concurrency lints all deny:
    /// they gate CI, and a single violation silently re-opens the schedule
    /// space the model checker proves over.
    #[must_use]
    pub fn default_level(self) -> Severity {
        match self {
            LintCode::UndrivenNet
            | LintCode::NondeterministicTable
            | LintCode::ScanChainIntegrity
            | LintCode::Uncontrollable
            | LintCode::MalformedSource
            | LintCode::RawStdSync
            | LintCode::RawThreadSpawn
            | LintCode::WallClockInReplay
            | LintCode::RelaxedOrderingPolicy
            | LintCode::LockPoisonExpect => Severity::Deny,
            LintCode::FloatingInput
            | LintCode::DanglingOutput
            | LintCode::Unobservable
            | LintCode::FaninBound
            | LintCode::ConstantNet
            | LintCode::EquivalentNets
            | LintCode::UnreachableState
            | LintCode::IncompleteTable
            | LintCode::UnusedInput => Severity::Warn,
            LintCode::NoUio => Severity::Allow,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity assigned by the active [`LintLevels`] table.
    pub severity: Severity,
    /// Which lint fired.
    pub code: LintCode,
    /// Where: a net name (`g4`), state name (`st1`), line (`line 7`), …
    pub locus: String,
    /// What is wrong, in one sentence.
    pub message: String,
    /// How to fix it, when a concrete fix is known.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Renders the finding as a single JSON object (no external
    /// dependencies; strings are escaped with
    /// [`scanft_obs::escape_json_string`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let esc = scanft_obs::escape_json_string;
        let mut json = format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"locus\":\"{}\",\"message\":\"{}\"",
            self.severity,
            self.code,
            esc(&self.locus),
            esc(&self.message),
        );
        if let Some(s) = &self.suggestion {
            json.push_str(&format!(",\"suggestion\":\"{}\"", esc(s)));
        }
        json.push('}');
        json
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.locus, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (help: {s})")?;
        }
        Ok(())
    }
}

/// The per-lint severity table.
///
/// Starts from each lint's [`LintCode::default_level`]; individual lints
/// can be raised or lowered with [`LintLevels::set`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintLevels {
    levels: Vec<(LintCode, Severity)>,
}

impl Default for LintLevels {
    fn default() -> Self {
        LintLevels {
            levels: ALL_LINTS.iter().map(|&c| (c, c.default_level())).collect(),
        }
    }
}

impl LintLevels {
    /// The severity currently assigned to `code`.
    #[must_use]
    pub fn level(&self, code: LintCode) -> Severity {
        self.levels
            .iter()
            .find(|(c, _)| *c == code)
            .map(|&(_, s)| s)
            .unwrap_or_else(|| code.default_level())
    }

    /// Reassigns the severity of one lint.
    pub fn set(&mut self, code: LintCode, severity: Severity) -> &mut Self {
        if let Some(entry) = self.levels.iter_mut().find(|(c, _)| *c == code) {
            entry.1 = severity;
        } else {
            self.levels.push((code, severity));
        }
        self
    }

    /// Whether `code` is enabled at all (not `allow`).
    #[must_use]
    pub fn enabled(&self, code: LintCode) -> bool {
        self.level(code) != Severity::Allow
    }
}

/// A collection of findings with severity-aware accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All retained findings, in detection order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Appends a finding unless its severity is [`Severity::Allow`].
    pub fn push(&mut self, diagnostic: Diagnostic) {
        if diagnostic.severity != Severity::Allow {
            self.diagnostics.push(diagnostic);
        }
    }

    /// Absorbs every finding of `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of deny-level findings.
    #[must_use]
    pub fn num_deny(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings.
    #[must_use]
    pub fn num_warn(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Whether the lint run passes (no deny-level findings).
    #[must_use]
    pub fn passes(&self) -> bool {
        self.num_deny() == 0
    }

    /// Renders every finding as JSON lines (one object per finding).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_names() {
        for &code in ALL_LINTS {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(LintCode::parse("no-such-lint"), None);
    }

    #[test]
    fn severity_round_trips() {
        for s in [Severity::Allow, Severity::Warn, Severity::Deny] {
            assert_eq!(Severity::parse(s.as_str()), Some(s));
        }
        assert!(Severity::parse("fatal").is_none());
    }

    #[test]
    fn levels_are_toggleable() {
        let mut levels = LintLevels::default();
        assert_eq!(levels.level(LintCode::UndrivenNet), Severity::Deny);
        levels.set(LintCode::UndrivenNet, Severity::Allow);
        assert!(!levels.enabled(LintCode::UndrivenNet));
        levels.set(LintCode::NoUio, Severity::Deny);
        assert_eq!(levels.level(LintCode::NoUio), Severity::Deny);
    }

    #[test]
    fn report_filters_allow_and_counts() {
        let mut report = LintReport::default();
        report.push(Diagnostic {
            severity: Severity::Allow,
            code: LintCode::NoUio,
            locus: "state 1".into(),
            message: "ignored".into(),
            suggestion: None,
        });
        report.push(Diagnostic {
            severity: Severity::Deny,
            code: LintCode::UndrivenNet,
            locus: "net ghost".into(),
            message: "undriven".into(),
            suggestion: Some("drive it".into()),
        });
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.num_deny(), 1);
        assert!(!report.passes());
        let json = report.to_jsonl();
        assert!(json.contains("\"code\":\"undriven-net\""));
        assert!(json.contains("\"suggestion\":\"drive it\""));
    }

    #[test]
    fn display_contains_code_and_locus() {
        let d = Diagnostic {
            severity: Severity::Warn,
            code: LintCode::DanglingOutput,
            locus: "g7".into(),
            message: "drives nothing".into(),
            suggestion: None,
        };
        let text = d.to_string();
        assert!(text.contains("warn[dangling-output]"));
        assert!(text.contains("g7"));
    }
}
