//! The test generation procedure of Section 2 of the paper.
//!
//! Determinism rules (pinned by the paper's `lion` walkthrough, which this
//! implementation reproduces verbatim — see the golden tests):
//!
//! - transitions are considered in canonical order (states ascending,
//!   input combinations ascending);
//! - a new test **starts** from the first untested transition whose next
//!   state has a UIO; transitions failing this are *postponed* (the paper's
//!   rule for avoiding premature length-1 tests) and, when no eligible
//!   starter remains, emitted as length-1 tests in canonical order;
//! - within a test, the next targeted transition out of the current state
//!   is the untested one with the smallest input combination;
//! - after targeting a transition into `s`: if `s` has no UIO the test ends
//!   (scan-out verifies `s`); otherwise, with `s'` the state after `s`'s
//!   UIO, the UIO is applied iff `s'` has an untested outgoing transition
//!   or a transfer sequence (length ≤ `transfer_max_len`) from `s'` reaches
//!   a state that does — otherwise the test ends at `s` *without* applying
//!   the UIO.

use scanft_fsm::transfer::find_transfer;
use scanft_fsm::uio::UioSet;
use scanft_fsm::{InputId, StateId, StateTable};

use crate::test_set::{FunctionalTest, TestSet};

/// Configuration of the test generation procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Upper bound on the UIO lengths used, as a cap applied to the derived
    /// [`UioSet`] (UIOs are shortest, so capping equals deriving with the
    /// smaller bound). `None` uses every derived UIO — the paper's default
    /// is deriving with `L = N_SV`, so `None` over such a set matches the
    /// main experiments; `Some(l)` drives the Table 9 sweeps.
    pub uio_len_cap: Option<usize>,
    /// Maximum transfer-sequence length; `0` disables transfer sequences
    /// (Table 8). The paper's main experiments use `1`.
    pub transfer_max_len: usize,
}

impl Default for GenConfig {
    /// The paper's main-experiment parameters: every derived UIO (derive
    /// with `L = N_SV`), transfer sequences of length at most one.
    fn default() -> Self {
        GenConfig {
            uio_len_cap: None,
            transfer_max_len: 1,
        }
    }
}

/// Generates a functional test set for all single state-transition faults
/// of `table`, using the UIOs in `uios`.
///
/// Every state transition is targeted by exactly one test. See the module
/// docs for the precise procedure.
///
/// # Panics
///
/// Panics if `uios` was derived for a machine with a different state count.
///
/// # Examples
///
/// ```
/// use scanft_core::generate::{generate, GenConfig};
/// use scanft_fsm::{benchmarks, uio};
///
/// let lion = benchmarks::lion();
/// let uios = uio::derive_uios(&lion, 2);
/// let set = generate(&lion, &uios, &GenConfig::default());
/// // The paper's tau_0 is the first generated test.
/// assert_eq!(set.tests[0].display(&lion), "(0, (00 00 01), 1)");
/// ```
#[must_use]
pub fn generate(table: &StateTable, uios: &UioSet, config: &GenConfig) -> TestSet {
    assert_eq!(
        uios.num_states(),
        table.num_states(),
        "UIO set was derived for a machine with {} states, but `{}` has {}",
        uios.num_states(),
        table.name(),
        table.num_states()
    );
    let obs = scanft_obs::global();
    let span = obs.timer("core.generate").start();
    let npic = table.num_input_combos();
    let num_states = table.num_states();
    let cap = config.uio_len_cap.unwrap_or(usize::MAX);

    let uio_of = |state: StateId| uios.sequence_capped(state, cap);

    // untested[s * npic + a]
    let mut untested = vec![true; table.num_transitions()];
    let mut untested_count_per_state: Vec<usize> = vec![npic; num_states];
    let mut remaining = table.num_transitions();

    let mut tests: Vec<FunctionalTest> = Vec::new();

    // Starter eligibility is static: a transition may start a test iff its
    // next state has a usable UIO. Precomputing the eligible cells lets the
    // starter search use a monotone cursor (tested cells never revive), so
    // the whole generation is near-linear in the number of transitions.
    let eligible: Vec<usize> = (0..untested.len())
        .filter(|&cell| {
            let s = (cell / npic) as StateId;
            let a = (cell % npic) as InputId;
            uio_of(table.next_state(s, a)).is_some()
        })
        .collect();
    let mut eligible_cursor = 0usize;

    // Per-state monotone pointer to the smallest possibly-untested input.
    let mut first_input: Vec<usize> = vec![0; num_states];

    while remaining > 0 {
        // Find the next starter: first untested transition whose next state
        // has a usable UIO.
        while eligible_cursor < eligible.len() && !untested[eligible[eligible_cursor]] {
            eligible_cursor += 1;
        }
        let starter: Option<(StateId, InputId)> = (eligible_cursor < eligible.len()).then(|| {
            let cell = eligible[eligible_cursor];
            ((cell / npic) as StateId, (cell % npic) as InputId)
        });

        let Some((s0, a0)) = starter else {
            // Postponed leftovers: every remaining transition ends in a
            // UIO-less state; emit length-1 tests in canonical order.
            for (cell, flag) in untested.iter().enumerate() {
                if *flag {
                    let s = (cell / npic) as StateId;
                    let a = (cell % npic) as InputId;
                    tests.push(FunctionalTest {
                        initial_state: s,
                        inputs: vec![a],
                        final_state: table.next_state(s, a),
                        targets: vec![(s, a)],
                    });
                    obs.counter("core.generate.postponed_unit_tests").inc();
                }
            }
            break;
        };

        // Build one test starting from (s0, a0).
        let mut inputs: Vec<InputId> = Vec::new();
        let mut targets: Vec<(StateId, InputId)> = Vec::new();
        let mark = |s: StateId,
                    a: InputId,
                    untested: &mut Vec<bool>,
                    counts: &mut Vec<usize>,
                    remaining: &mut usize| {
            let cell = s as usize * npic + a as usize;
            debug_assert!(untested[cell]);
            untested[cell] = false;
            counts[s as usize] -= 1;
            *remaining -= 1;
        };

        let mut cur = s0;
        let mut next_input = Some(a0);
        let final_state;
        loop {
            // Target a transition out of `cur`: the starter first, then the
            // smallest untested input combination.
            let a = match next_input.take() {
                Some(a) => a,
                None => {
                    let base = cur as usize * npic;
                    let ptr = &mut first_input[cur as usize];
                    while *ptr < npic && !untested[base + *ptr] {
                        *ptr += 1;
                    }
                    debug_assert!(*ptr < npic, "current state has an untested transition");
                    *ptr as InputId
                }
            };
            inputs.push(a);
            targets.push((cur, a));
            mark(
                cur,
                a,
                &mut untested,
                &mut untested_count_per_state,
                &mut remaining,
            );
            let arrived = table.next_state(cur, a);

            // Verify `arrived`: by UIO if useful, else scan-out.
            let Some(uio) = uio_of(arrived) else {
                final_state = arrived;
                break;
            };
            let after = uio.final_state;
            if untested_count_per_state[after as usize] > 0 {
                inputs.extend_from_slice(&uio.inputs);
                cur = after;
                continue;
            }
            let transfer = if config.transfer_max_len == 0 {
                None
            } else {
                find_transfer(table, after, config.transfer_max_len, |s| {
                    untested_count_per_state[s as usize] > 0
                })
            };
            match transfer {
                Some(tr) => {
                    inputs.extend_from_slice(&uio.inputs);
                    inputs.extend_from_slice(&tr.inputs);
                    cur = tr.target;
                    obs.counter("core.generate.transfer_hops").inc();
                }
                None => {
                    // End without applying the UIO; scan-out verifies
                    // `arrived`.
                    final_state = arrived;
                    break;
                }
            }
        }
        tests.push(FunctionalTest {
            initial_state: s0,
            inputs,
            final_state,
            targets,
        });
    }

    obs.counter("core.generate.tests_emitted")
        .add(tests.len() as u64);
    TestSet {
        tests,
        num_transitions: table.num_transitions(),
        elapsed_secs: span.stop_secs(),
    }
}

/// The paper's baseline: one length-1 test per state transition, in
/// canonical order (`N_ST * N_PIC` tests).
#[must_use]
pub fn per_transition_baseline(table: &StateTable) -> TestSet {
    let span = scanft_obs::global().timer("core.generate.baseline").start();
    let tests: Vec<FunctionalTest> = table
        .transitions()
        .map(|t| FunctionalTest {
            initial_state: t.from,
            inputs: vec![t.input],
            final_state: t.to,
            targets: vec![(t.from, t.input)],
        })
        .collect();
    TestSet {
        tests,
        num_transitions: table.num_transitions(),
        elapsed_secs: span.stop_secs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_fsm::benchmarks;
    use scanft_fsm::uio::derive_uios;

    fn lion_tests() -> (StateTable, TestSet) {
        let lion = benchmarks::lion();
        let uios = derive_uios(&lion, lion.num_state_vars());
        let set = generate(&lion, &uios, &GenConfig::default());
        (lion, set)
    }

    /// The paper's Section 2 walkthrough, verbatim: tests tau_0 .. tau_8.
    #[test]
    fn lion_walkthrough_exact() {
        let (lion, set) = lion_tests();
        let expect = [
            "(0, (00 00 01), 1)",
            "(0, (10 00 11 00 01 00), 1)",
            "(1, (11 00 01 01), 1)",
            "(2, (00 00 11 00), 1)",
            "(2, (01 00 11 01 00 11 10), 3)",
            "(1, (10), 3)",
            "(2, (10), 3)",
            "(2, (11), 3)",
            "(3, (11), 3)",
        ];
        assert_eq!(set.tests.len(), expect.len());
        for (k, (t, e)) in set.tests.iter().zip(expect).enumerate() {
            assert_eq!(t.display(&lion), e, "tau_{k}");
        }
    }

    /// Table 5, row lion: trans 16, tests 9, len 28, 1len 25.00.
    #[test]
    fn lion_table5_row_exact() {
        let (_, set) = lion_tests();
        assert_eq!(set.num_transitions, 16);
        assert_eq!(set.tests.len(), 9);
        assert_eq!(set.total_length(), 28);
        assert!((set.percent_unit_tested() - 25.0).abs() < 1e-9);
    }

    /// Every transition is targeted exactly once, and the recorded final
    /// state matches simulation of the machine.
    #[test]
    fn coverage_and_consistency_on_lion() {
        let (lion, set) = lion_tests();
        assert_covers_all(&lion, &set);
    }

    fn assert_covers_all(table: &StateTable, set: &TestSet) {
        let mut seen = vec![false; table.num_transitions()];
        for t in &set.tests {
            let (fin, _) = table.run(t.initial_state, &t.inputs);
            assert_eq!(fin, t.final_state, "{}", t.display(table));
            for &(s, a) in &t.targets {
                let cell = s as usize * table.num_input_combos() + a as usize;
                assert!(!seen[cell], "transition targeted twice");
                seen[cell] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some transition never targeted");
    }

    #[test]
    fn coverage_on_several_benchmarks() {
        for name in [
            "bbtas", "dk15", "dk27", "shiftreg", "beecount", "ex5", "mc", "tav",
        ] {
            let t = benchmarks::build(name).unwrap();
            let uios = derive_uios(&t, t.num_state_vars());
            let set = generate(&t, &uios, &GenConfig::default());
            assert_covers_all(&t, &set);
            assert!(set.tests.len() <= t.num_transitions(), "{name}");
        }
    }

    #[test]
    fn without_transfers_still_covers() {
        for name in ["bbtas", "dk15", "dk27", "shiftreg", "lion"] {
            let t = benchmarks::build(name).unwrap();
            let uios = derive_uios(&t, t.num_state_vars());
            let with = generate(&t, &uios, &GenConfig::default());
            let without = generate(
                &t,
                &uios,
                &GenConfig {
                    transfer_max_len: 0,
                    ..GenConfig::default()
                },
            );
            assert_covers_all(&t, &without);
            // Table 8's direction: disabling transfers never yields fewer
            // tests.
            assert!(without.tests.len() >= with.tests.len(), "{name}");
            // And no transfer segments means total length cannot grow.
            assert!(without.total_length() <= with.total_length(), "{name}");
        }
    }

    #[test]
    fn uio_cap_zero_degenerates_to_per_transition() {
        let lion = benchmarks::lion();
        let uios = derive_uios(&lion, lion.num_state_vars());
        let set = generate(
            &lion,
            &uios,
            &GenConfig {
                uio_len_cap: Some(0),
                transfer_max_len: 1,
            },
        );
        // No usable UIOs -> every transition gets a length-1 test.
        assert_eq!(set.tests.len(), 16);
        assert!(set.tests.iter().all(|t| t.len() == 1));
        assert!((set.percent_unit_tested() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_is_one_test_per_transition() {
        let lion = benchmarks::lion();
        let base = per_transition_baseline(&lion);
        assert_eq!(base.tests.len(), 16);
        assert_eq!(base.total_length(), 16);
        assert!((base.percent_unit_tested() - 100.0).abs() < 1e-9);
        assert_covers_all(&lion, &base);
    }

    #[test]
    #[should_panic(expected = "UIO set was derived for a machine with")]
    fn mismatched_uio_set_panics() {
        // UIOs derived for lion (4 states) must be rejected by a machine
        // with a different state count.
        let lion = benchmarks::lion();
        let uios = derive_uios(&lion, lion.num_state_vars());
        let other = benchmarks::build("bbtas").unwrap();
        assert_ne!(other.num_states(), lion.num_states());
        let _ = generate(&other, &uios, &GenConfig::default());
    }

    #[test]
    fn generation_is_deterministic() {
        let t = benchmarks::build("beecount").unwrap();
        let uios = derive_uios(&t, t.num_state_vars());
        let a = generate(&t, &uios, &GenConfig::default());
        let b = generate(&t, &uios, &GenConfig::default());
        assert_eq!(a.tests, b.tests);
    }
}
