//! End-to-end evaluation flow: UIO derivation → test generation → synthesis
//! → fault simulation → effective-test selection — one call produces every
//! number the paper's tables report for one circuit.

use scanft_fsm::uio::{derive_uios_with, UioConfig, UioSet};
use scanft_fsm::StateTable;
use scanft_netlist::NetlistStats;
use scanft_sim::exhaustive::Detectability;
use scanft_sim::{campaign, exhaustive, faults};
use scanft_synth::{synthesize, SynthConfig, SynthesizedCircuit};

use crate::cycles::{clock_cycles, percent_of, test_set_cycles};
use crate::generate::{generate, per_transition_baseline, GenConfig};
use crate::test_set::TestSet;

/// Configuration for the whole flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// UIO length bound; `None` means the paper's default `L = N_SV`.
    pub uio_max_len: Option<usize>,
    /// UIO search node budget per state.
    pub uio_node_budget: usize,
    /// Test generation parameters.
    pub gen: GenConfig,
    /// Synthesis parameters for the gate-level evaluation.
    pub synth: SynthConfig,
    /// Whether to run the gate-level part (synthesis + fault simulation).
    pub gate_level: bool,
    /// Cap on bridging pairs (deterministic subsample above this).
    pub max_bridge_pairs: usize,
    /// Budget (input points) for exhaustive classification of undetected
    /// faults; classification is skipped when `2^(pi+sv)` exceeds it.
    pub exhaustive_budget: u64,
    /// Append a length-1 top-up test for every fault the functional tests
    /// miss despite being detectable (a `scanft` extension: the paper
    /// accepts these rare maskings — Section 2's UIO-masking caveat — while
    /// the top-up restores exactly-complete detectable coverage).
    pub top_up: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            uio_max_len: None,
            uio_node_budget: 2_000_000,
            gen: GenConfig::default(),
            synth: SynthConfig::default(),
            gate_level: true,
            max_bridge_pairs: 3000,
            exhaustive_budget: 1 << 22,
            top_up: false,
        }
    }
}

/// UIO-derivation numbers (the data of Table 4).
#[derive(Debug, Clone)]
pub struct UioReport {
    /// States with a UIO (`unique` column).
    pub num_with_uio: usize,
    /// Longest UIO found (`m.len` column).
    pub max_len: usize,
    /// Derivation wall-clock seconds (`time` column).
    pub secs: f64,
    /// Whether any state's search exceeded the node budget.
    pub budget_exceeded: bool,
}

/// Per-fault-model simulation numbers (the data of Tables 6 and 7).
#[derive(Debug, Clone)]
pub struct FaultModelReport {
    /// Total faults simulated (`tot`).
    pub total_faults: usize,
    /// Faults detected (`det`).
    pub detected: usize,
    /// Coverage percentage (`f.c.`).
    pub coverage: f64,
    /// Number of effective tests (`tsts`).
    pub effective_tests: usize,
    /// Total length of the effective tests (`len`).
    pub effective_length: usize,
    /// Clock cycles to apply only the effective tests.
    pub effective_cycles: u64,
    /// Undetected faults proven undetectable by exhaustive analysis.
    pub proven_undetectable: usize,
    /// Undetected faults whose classification exceeded the budget.
    pub unclassified: usize,
    /// Length-1 top-up tests appended (0 unless [`FlowConfig::top_up`]).
    pub top_up_tests: usize,
}

impl FaultModelReport {
    /// Whether every detectable fault (among those classified) is detected —
    /// the paper's headline claim.
    #[must_use]
    pub fn complete_detectable_coverage(&self) -> bool {
        self.detected + self.proven_undetectable + self.unclassified == self.total_faults
    }
}

/// Gate-level portion of the flow report.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Netlist summary.
    pub netlist: NetlistStats,
    /// Stuck-at results.
    pub stuck: FaultModelReport,
    /// Bridging results.
    pub bridging: FaultModelReport,
    /// Structurally qualifying bridging pairs before the cap.
    pub bridge_pairs_total: usize,
    /// Whether the bridging universe was subsampled.
    pub bridge_truncated: bool,
}

/// Everything the paper's tables report about one circuit.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Circuit name.
    pub name: String,
    /// UIO numbers (Table 4).
    pub uio: UioReport,
    /// The generated functional tests.
    pub tests: TestSet,
    /// Clock cycles for the per-transition baseline (Table 7 `trans`).
    pub baseline_cycles: u64,
    /// Clock cycles for the functional tests (Table 7 `funct.tests`).
    pub functional_cycles: u64,
    /// Gate-level results, when enabled.
    pub gate: Option<GateReport>,
    /// Total flow wall-clock seconds.
    pub total_secs: f64,
}

impl FlowReport {
    /// Table 7's percentage for the functional tests.
    #[must_use]
    pub fn functional_percent(&self) -> f64 {
        percent_of(self.functional_cycles, self.baseline_cycles)
    }
}

/// Runs the full flow on one machine.
///
/// # Examples
///
/// ```
/// use scanft_core::flow::{run_flow, FlowConfig};
///
/// let lion = scanft_fsm::benchmarks::lion();
/// let report = run_flow(&lion, &FlowConfig::default());
/// assert_eq!(report.tests.tests.len(), 9); // Table 5
/// assert_eq!(report.functional_cycles, 48); // Table 7
/// let gate = report.gate.expect("gate level enabled");
/// assert!(gate.stuck.complete_detectable_coverage()); // Table 6's claim
/// ```
#[must_use]
pub fn run_flow(table: &StateTable, config: &FlowConfig) -> FlowReport {
    let span = scanft_obs::global().timer("core.flow").start();
    let sv = table.num_state_vars();

    // 1. UIO derivation (Table 4).
    let uio_config = UioConfig {
        max_len: config.uio_max_len.unwrap_or(sv),
        node_budget: config.uio_node_budget,
    };
    let uios: UioSet = derive_uios_with(table, &uio_config);
    let uio_report = UioReport {
        num_with_uio: uios.num_with_uio(),
        max_len: uios.max_found_len(),
        secs: uios.elapsed_secs(),
        budget_exceeded: uios.any_budget_exceeded(),
    };

    // 2. Test generation (Table 5).
    let tests = generate(table, &uios, &config.gen);

    // 3. Clock cycles (Table 7).
    let baseline = per_transition_baseline(table);
    let baseline_cycles = test_set_cycles(&baseline, sv);
    let functional_cycles = test_set_cycles(&tests, sv);

    // 4. Gate level (Tables 3, 6, 7).
    let gate = config.gate_level.then(|| {
        let circuit = synthesize(table, &config.synth);
        let scan_tests = tests.to_scan_tests(&circuit);

        let stuck_faults = faults::enumerate_stuck(circuit.netlist());
        let stuck_list = faults::as_fault_list(&stuck_faults);
        let stuck = evaluate_model(&circuit, &scan_tests, &stuck_list, sv, config);

        let bridges = faults::enumerate_bridging(circuit.netlist(), config.max_bridge_pairs);
        let bridge_list = faults::bridges_as_fault_list(&bridges.faults);
        let bridging = evaluate_model(&circuit, &scan_tests, &bridge_list, sv, config);

        GateReport {
            netlist: circuit.netlist().stats(),
            stuck,
            bridging,
            bridge_pairs_total: bridges.total_pairs,
            bridge_truncated: bridges.truncated(),
        }
    });

    FlowReport {
        name: table.name().to_owned(),
        uio: uio_report,
        tests,
        baseline_cycles,
        functional_cycles,
        gate,
        total_secs: span.stop_secs(),
    }
}

fn evaluate_model(
    circuit: &SynthesizedCircuit,
    scan_tests: &[scanft_sim::ScanTest],
    fault_list: &[faults::Fault],
    sv: usize,
    config: &FlowConfig,
) -> FaultModelReport {
    let report = campaign::run_decreasing_length(circuit.netlist(), scan_tests, fault_list);
    let effective: Vec<usize> = report.effective_tests();
    let effective_length: usize = effective.iter().map(|&t| scan_tests[t].len()).sum();
    let effective_cycles = clock_cycles(sv, effective.len(), effective_length);

    let mut proven_undetectable = 0;
    let mut unclassified = 0;
    let mut top_ups: Vec<scanft_sim::ScanTest> = Vec::new();
    for f in report.undetected_faults() {
        let (verdict, witness) = exhaustive::find_detecting_test(
            circuit.netlist(),
            &fault_list[f],
            config.exhaustive_budget,
        );
        match verdict {
            Detectability::Undetectable => proven_undetectable += 1,
            Detectability::BudgetExceeded => unclassified += 1,
            Detectability::Detectable => {
                // A genuine miss: the fault was masked inside a chained test
                // (the paper's Section 2 caveat). Optionally top up.
                if config.top_up {
                    top_ups.push(witness.expect("detectable faults have a witness"));
                }
            }
        }
    }

    let (detected, effective_tests, effective_length, effective_cycles) = if top_ups.is_empty() {
        (
            report.detected(),
            effective.len(),
            effective_length,
            effective_cycles,
        )
    } else {
        // Re-simulate with the top-up tests appended (they are length 1, so
        // they run last in the decreasing-length order).
        let mut extended = scan_tests.to_vec();
        extended.extend(top_ups.iter().cloned());
        let report = campaign::run_decreasing_length(circuit.netlist(), &extended, fault_list);
        let effective = report.effective_tests();
        let len: usize = effective.iter().map(|&t| extended[t].len()).sum();
        (
            report.detected(),
            effective.len(),
            len,
            clock_cycles(sv, effective.len(), len),
        )
    };

    FaultModelReport {
        total_faults: fault_list.len(),
        detected,
        coverage: if fault_list.is_empty() {
            100.0
        } else {
            100.0 * detected as f64 / fault_list.len() as f64
        },
        effective_tests,
        effective_length,
        effective_cycles,
        proven_undetectable,
        unclassified,
        top_up_tests: top_ups.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lion_flow_reproduces_paper_shape() {
        let lion = scanft_fsm::benchmarks::lion();
        let report = run_flow(&lion, &FlowConfig::default());
        // Table 4: 2 states with UIOs of max length 2.
        assert_eq!(report.uio.num_with_uio, 2);
        assert_eq!(report.uio.max_len, 2);
        assert!(!report.uio.budget_exceeded);
        // Table 5: 9 tests, length 28, 25% by unit tests.
        assert_eq!(report.tests.tests.len(), 9);
        assert_eq!(report.tests.total_length(), 28);
        // Table 7: 50 baseline cycles, 48 functional (96%).
        assert_eq!(report.baseline_cycles, 50);
        assert_eq!(report.functional_cycles, 48);
        assert!((report.functional_percent() - 96.0).abs() < 1e-9);
        // Table 6's claim: complete coverage of detectable faults, both
        // models.
        let gate = report.gate.expect("gate level on");
        assert!(gate.stuck.complete_detectable_coverage());
        assert_eq!(gate.stuck.unclassified, 0);
        assert!(gate.bridging.complete_detectable_coverage());
        // Effective tests need fewer cycles than the full functional set.
        assert!(gate.stuck.effective_cycles <= report.functional_cycles);
    }

    #[test]
    fn functional_tests_beat_baseline_on_scan_count() {
        for name in ["bbtas", "dk15", "dk27", "beecount", "ex5"] {
            let t = scanft_fsm::benchmarks::build(name).unwrap();
            let report = run_flow(
                &t,
                &FlowConfig {
                    gate_level: false,
                    ..FlowConfig::default()
                },
            );
            assert!(report.gate.is_none());
            assert!(
                report.tests.tests.len() <= t.num_transitions(),
                "{name}: {} tests vs {} transitions",
                report.tests.tests.len(),
                t.num_transitions()
            );
        }
    }

    #[test]
    fn top_up_restores_complete_coverage_on_dk17() {
        // dk17's chained tests mask a handful of detectable stuck-at faults
        // (the paper's Section 2 caveat); the top-up extension appends
        // length-1 tests for exactly those and completes the coverage.
        let t = scanft_fsm::benchmarks::build("dk17").unwrap();
        let plain = run_flow(&t, &FlowConfig::default());
        let topped = run_flow(
            &t,
            &FlowConfig {
                top_up: true,
                ..FlowConfig::default()
            },
        );
        let g0 = plain.gate.expect("gate level on");
        let g1 = topped.gate.expect("gate level on");
        assert!(g1.stuck.detected >= g0.stuck.detected);
        assert!(g1.stuck.top_up_tests > 0 || g0.stuck.complete_detectable_coverage());
        assert_eq!(
            g1.stuck.detected + g1.stuck.proven_undetectable + g1.stuck.unclassified,
            g1.stuck.total_faults
        );
    }

    #[test]
    fn complete_detectable_coverage_on_small_benchmarks() {
        for name in ["bbtas", "dk15", "shiftreg"] {
            let t = scanft_fsm::benchmarks::build(name).unwrap();
            let report = run_flow(&t, &FlowConfig::default());
            let gate = report.gate.expect("gate level on");
            assert!(
                gate.stuck.complete_detectable_coverage(),
                "{name}: stuck {}/{} (+{} undet)",
                gate.stuck.detected,
                gate.stuck.total_faults,
                gate.stuck.proven_undetectable
            );
            assert!(
                gate.bridging.complete_detectable_coverage(),
                "{name}: bridging {}/{} (+{} undet)",
                gate.bridging.detected,
                gate.bridging.total_faults,
                gate.bridging.proven_undetectable
            );
        }
    }
}
