//! Tester-level scan schedules: the paper's clock-cycle formula, made
//! executable.
//!
//! The paper charges `N_SV * (N_T + 1) + N_PIC` cycles for a test set: the
//! scan-out of one test overlaps the scan-in of the next (both are `N_SV`
//! shift cycles of the same chain), so `N_T` tests need `N_T + 1` scan
//! operations. This module expands a [`TestSet`] into the explicit per-cycle
//! tester schedule — shift cycles with scan-in/scan-out bits, and capture
//! cycles with primary input/output values — and the unit tests verify that
//! the schedule length equals the formula **and** that the scanned-out bits
//! match the scan simulator's responses, tying the cost model to actual
//! data movement.

use scanft_fsm::{InputId, StateTable};
use scanft_synth::SynthesizedCircuit;

use crate::cycles::clock_cycles;
use crate::test_set::TestSet;

/// One tester clock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TesterCycle {
    /// Scan-shift cycle: drive `scan_in` into the chain head while
    /// observing `scan_out` at the chain tail (`None` while the chain
    /// contents are don't-care — the very first scan-in has nothing to
    /// observe).
    Shift {
        /// Bit shifted into the chain.
        scan_in: bool,
        /// Bit expected out of the chain, when meaningful.
        scan_out: Option<bool>,
    },
    /// Functional capture cycle: apply `inputs` at the primary inputs,
    /// expect `outputs` at the primary outputs, capture next state.
    Capture {
        /// Primary-input combination.
        inputs: InputId,
        /// Expected fault-free primary-output combination.
        outputs: u64,
    },
}

/// A complete tester schedule for a test set.
#[derive(Debug, Clone)]
pub struct ScanSchedule {
    /// The per-cycle program.
    pub cycles: Vec<TesterCycle>,
    /// Number of tests scheduled.
    pub num_tests: usize,
    /// Scan chain length (`N_SV`).
    pub chain_length: usize,
}

impl ScanSchedule {
    /// Total tester cycles — by construction equal to
    /// [`clock_cycles`]`(N_SV, N_T, total_length)`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether the schedule is empty (empty test set still scans once? No —
    /// an empty set needs no tester activity at all).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Renders the schedule in a simple line-per-cycle text format
    /// (`S <in> <out|-->` / `C <inputs> <outputs>`), convenient for diffing
    /// and for replay by external tools.
    #[must_use]
    pub fn to_text(&self, table: &StateTable) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for cycle in &self.cycles {
            match *cycle {
                TesterCycle::Shift { scan_in, scan_out } => {
                    let observed = match scan_out {
                        Some(true) => "1",
                        Some(false) => "0",
                        None => "-",
                    };
                    let _ = writeln!(out, "S {} {observed}", u8::from(scan_in));
                }
                TesterCycle::Capture { inputs, outputs } => {
                    let _ = writeln!(
                        out,
                        "C {} {}",
                        scanft_fsm::format_input(inputs, table.num_inputs()),
                        scanft_fsm::format_output(outputs, table.num_outputs())
                    );
                }
            }
        }
        out
    }
}

/// Expands `set` into the explicit tester schedule for `circuit`.
///
/// Scan chains shift most-significant state bit first (bit `N_SV - 1` at
/// the chain head), and the scan-out of each test overlaps the scan-in of
/// the next, exactly as the paper's formula assumes.
///
/// # Panics
///
/// Panics if `circuit` has a different number of state variables than the
/// machine the tests were generated for.
#[must_use]
pub fn schedule(set: &TestSet, table: &StateTable, circuit: &SynthesizedCircuit) -> ScanSchedule {
    let sv = circuit.netlist().num_ppis();
    assert_eq!(sv, table.num_state_vars(), "circuit/table mismatch");
    let mut cycles = Vec::new();
    // The code being shifted out while the next test's code shifts in.
    let mut outgoing: Option<u64> = None;

    for test in &set.tests {
        let incoming = circuit.encode_state(test.initial_state);
        push_shift(&mut cycles, sv, Some(incoming), outgoing);
        // Capture cycles with the fault-free responses.
        let (_, responses) = table.run(test.initial_state, &test.inputs);
        for (k, &input) in test.inputs.iter().enumerate() {
            cycles.push(TesterCycle::Capture {
                inputs: input,
                outputs: responses[k],
            });
        }
        outgoing = Some(circuit.encode_state(test.final_state));
    }
    // Final scan-out (nothing meaningful shifts in).
    if let Some(out) = outgoing {
        push_shift(&mut cycles, sv, None, Some(out));
    }
    ScanSchedule {
        cycles,
        num_tests: set.tests.len(),
        chain_length: sv,
    }
}

fn push_shift(
    cycles: &mut Vec<TesterCycle>,
    sv: usize,
    incoming: Option<u64>,
    outgoing: Option<u64>,
) {
    for k in (0..sv).rev() {
        cycles.push(TesterCycle::Shift {
            scan_in: incoming.is_some_and(|code| code >> k & 1 == 1),
            scan_out: outgoing.map(|code| code >> k & 1 == 1),
        });
    }
}

/// Verifies a schedule's scan-out bits and capture outputs against the
/// machine — used by tests and available for downstream validation.
///
/// Returns the index of the first inconsistent cycle, or `None` when the
/// whole schedule is consistent.
#[must_use]
pub fn verify_schedule(
    schedule: &ScanSchedule,
    set: &TestSet,
    table: &StateTable,
    circuit: &SynthesizedCircuit,
) -> Option<usize> {
    // Recompute the expected schedule and compare cycle by cycle.
    let expected = self::schedule(set, table, circuit);
    if expected.cycles.len() != schedule.cycles.len() {
        return Some(expected.cycles.len().min(schedule.cycles.len()));
    }
    expected
        .cycles
        .iter()
        .zip(&schedule.cycles)
        .position(|(a, b)| a != b)
}

/// Convenience: the formula value the schedule must match.
#[must_use]
pub fn expected_cycles(set: &TestSet, num_state_vars: usize) -> u64 {
    if set.tests.is_empty() {
        return 0;
    }
    clock_cycles(num_state_vars, set.tests.len(), set.total_length())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, per_transition_baseline, GenConfig};
    use scanft_fsm::{benchmarks, uio};
    use scanft_synth::{synthesize, SynthConfig};

    fn lion_setup() -> (scanft_fsm::StateTable, TestSet, SynthesizedCircuit) {
        let lion = benchmarks::lion();
        let uios = uio::derive_uios(&lion, 2);
        let set = generate(&lion, &uios, &GenConfig::default());
        let circuit = synthesize(&lion, &SynthConfig::default());
        (lion, set, circuit)
    }

    /// The schedule length equals the paper's formula — the formula made
    /// executable.
    #[test]
    fn schedule_length_matches_formula() {
        let (lion, set, circuit) = lion_setup();
        let sched = schedule(&set, &lion, &circuit);
        assert_eq!(sched.len() as u64, expected_cycles(&set, 2));
        assert_eq!(sched.len(), 48); // Table 7, row lion.
                                     // And for the baseline: 50 cycles.
        let base = per_transition_baseline(&lion);
        let base_sched = schedule(&base, &lion, &circuit);
        assert_eq!(base_sched.len(), 50);
    }

    /// Scan-in bits of each test deliver exactly the initial state code,
    /// and scan-out bits return the final state code.
    #[test]
    fn shift_bits_carry_the_codes() {
        let (lion, set, circuit) = lion_setup();
        let sched = schedule(&set, &lion, &circuit);
        // First 2 cycles: scan-in of test 0's initial state (0 -> bits 0,0),
        // with nothing to observe.
        match sched.cycles[0] {
            TesterCycle::Shift { scan_in, scan_out } => {
                assert!(!scan_in);
                assert_eq!(scan_out, None);
            }
            ref other => panic!("expected shift, got {other:?}"),
        }
        // The overlap property: between test 0 (final state 1) and test 1
        // (initial state 0), the shift cycles observe code 1 while driving
        // code 0. Locate the first shift after the first captures.
        let first_capture_len = set.tests[0].len();
        let boundary = 2 + first_capture_len;
        match (sched.cycles[boundary], sched.cycles[boundary + 1]) {
            (
                TesterCycle::Shift {
                    scan_in: in_hi,
                    scan_out: Some(out_hi),
                },
                TesterCycle::Shift {
                    scan_in: in_lo,
                    scan_out: Some(out_lo),
                },
            ) => {
                // Incoming code 0 (bits 0,0); outgoing code 1 (bits 0,1 —
                // MSB first).
                assert!(!in_hi && !in_lo);
                assert!(!out_hi);
                assert!(out_lo);
            }
            other => panic!("expected two shifts at the boundary, got {other:?}"),
        }
    }

    /// Capture cycles carry the fault-free output responses.
    #[test]
    fn capture_cycles_match_machine_outputs() {
        let (lion, set, circuit) = lion_setup();
        let sched = schedule(&set, &lion, &circuit);
        let mut cursor = 0usize;
        for test in &set.tests {
            cursor += 2; // scan-in shifts
            let (_, responses) = lion.run(test.initial_state, &test.inputs);
            for (k, &input) in test.inputs.iter().enumerate() {
                match sched.cycles[cursor] {
                    TesterCycle::Capture { inputs, outputs } => {
                        assert_eq!(inputs, input);
                        assert_eq!(outputs, responses[k]);
                    }
                    ref other => panic!("expected capture, got {other:?}"),
                }
                cursor += 1;
            }
        }
    }

    #[test]
    fn verify_schedule_detects_tampering() {
        let (lion, set, circuit) = lion_setup();
        let mut sched = schedule(&set, &lion, &circuit);
        assert_eq!(verify_schedule(&sched, &set, &lion, &circuit), None);
        sched.cycles[5] = TesterCycle::Capture {
            inputs: 3,
            outputs: 0,
        };
        assert_eq!(verify_schedule(&sched, &set, &lion, &circuit), Some(5));
    }

    #[test]
    fn text_format_round_shape() {
        let (lion, set, circuit) = lion_setup();
        let sched = schedule(&set, &lion, &circuit);
        let text = sched.to_text(&lion);
        assert_eq!(text.lines().count(), sched.len());
        assert!(text.lines().next().unwrap().starts_with("S "));
        assert!(text.contains("C 01 1"));
    }

    #[test]
    fn empty_set_schedules_nothing() {
        let (lion, _, circuit) = lion_setup();
        let empty = TestSet {
            tests: vec![],
            num_transitions: 16,
            elapsed_secs: 0.0,
        };
        let sched = schedule(&empty, &lion, &circuit);
        assert!(sched.is_empty());
        assert_eq!(expected_cycles(&empty, 2), 0);
    }

    /// Formula equivalence on several machines and both generators.
    #[test]
    fn formula_equivalence_across_benchmarks() {
        for name in ["bbtas", "dk15", "shiftreg", "beecount"] {
            let t = benchmarks::build(name).unwrap();
            let uios = uio::derive_uios(&t, t.num_state_vars());
            let circuit = synthesize(&t, &SynthConfig::default());
            for set in [
                generate(&t, &uios, &GenConfig::default()),
                per_transition_baseline(&t),
            ] {
                let sched = schedule(&set, &t, &circuit);
                assert_eq!(
                    sched.len() as u64,
                    expected_cycles(&set, t.num_state_vars()),
                    "{name}"
                );
            }
        }
    }
}
