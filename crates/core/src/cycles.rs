//! The paper's test-application-time model.
//!
//! For a circuit with `N_SV` state variables, a test set of `N_T` tests with
//! `N_PIC` input combinations in total costs
//!
//! ```text
//! N_SV * (N_T + 1) + N_PIC
//! ```
//!
//! clock cycles: consecutive tests share one scan operation (the scan-out of
//! a test overlaps the scan-in of the next), giving `N_T + 1` scan
//! operations of `N_SV` cycles each, plus one cycle per applied input
//! combination. A scan clock `M` times slower than the circuit clock scales
//! the scan contribution by `M`.

use crate::test_set::TestSet;

/// Clock cycles to apply `num_tests` tests of `total_length` input
/// combinations on a circuit with `num_state_vars` scan flip-flops
/// (scan clock = circuit clock).
///
/// # Examples
///
/// ```
/// // lion, per-transition baseline (Table 7): 2*(16+1) + 16 = 50.
/// assert_eq!(scanft_core::cycles::clock_cycles(2, 16, 16), 50);
/// // lion, functional tests: 2*(9+1) + 28 = 48.
/// assert_eq!(scanft_core::cycles::clock_cycles(2, 9, 28), 48);
/// ```
#[must_use]
pub fn clock_cycles(num_state_vars: usize, num_tests: usize, total_length: usize) -> u64 {
    clock_cycles_with_scan_ratio(num_state_vars, num_tests, total_length, 1)
}

/// Like [`clock_cycles`], with a scan clock `scan_ratio` times slower than
/// the circuit clock.
///
/// # Panics
///
/// Panics if `scan_ratio == 0`.
#[must_use]
pub fn clock_cycles_with_scan_ratio(
    num_state_vars: usize,
    num_tests: usize,
    total_length: usize,
    scan_ratio: u64,
) -> u64 {
    assert!(scan_ratio > 0, "scan_ratio must be positive");
    num_state_vars as u64 * (num_tests as u64 + 1) * scan_ratio + total_length as u64
}

/// Like [`clock_cycles_with_scan_ratio`], with the flip-flops distributed
/// over `num_chains` balanced scan chains: each scan operation shifts for
/// `ceil(N_SV / num_chains)` cycles.
///
/// The paper assumes a single chain; multiple chains shrink the scan
/// contribution and therefore *reduce* the relative advantage of the
/// chained functional tests (they save scan operations).
///
/// # Panics
///
/// Panics if `num_chains == 0` or `scan_ratio == 0`.
#[must_use]
pub fn clock_cycles_multi_chain(
    num_state_vars: usize,
    num_chains: usize,
    num_tests: usize,
    total_length: usize,
    scan_ratio: u64,
) -> u64 {
    assert!(num_chains > 0, "num_chains must be positive");
    assert!(scan_ratio > 0, "scan_ratio must be positive");
    let shift = num_state_vars.div_ceil(num_chains) as u64;
    shift * (num_tests as u64 + 1) * scan_ratio + total_length as u64
}

/// Clock cycles for a [`TestSet`] on a machine with `num_state_vars` state
/// variables.
#[must_use]
pub fn test_set_cycles(set: &TestSet, num_state_vars: usize) -> u64 {
    clock_cycles(num_state_vars, set.tests.len(), set.total_length())
}

/// Percentage of `cycles` relative to `baseline_cycles`, as printed in
/// Table 7 (`100 * cycles / baseline`).
#[must_use]
pub fn percent_of(cycles: u64, baseline_cycles: u64) -> f64 {
    if baseline_cycles == 0 {
        return 0.0;
    }
    100.0 * cycles as f64 / baseline_cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, per_transition_baseline, GenConfig};
    use scanft_fsm::{benchmarks, uio};

    /// Table 7, row lion: trans 50 cycles, functional tests 48 (96.00%).
    #[test]
    fn lion_table7_exact() {
        let lion = benchmarks::lion();
        let baseline = per_transition_baseline(&lion);
        let base_cycles = test_set_cycles(&baseline, lion.num_state_vars());
        assert_eq!(base_cycles, 50);
        let uios = uio::derive_uios(&lion, 2);
        let set = generate(&lion, &uios, &GenConfig::default());
        let cycles = test_set_cycles(&set, lion.num_state_vars());
        assert_eq!(cycles, 48);
        assert!((percent_of(cycles, base_cycles) - 96.0).abs() < 1e-9);
    }

    #[test]
    fn scan_ratio_scales_scan_cost_only() {
        assert_eq!(clock_cycles_with_scan_ratio(2, 9, 28, 1), 48);
        assert_eq!(clock_cycles_with_scan_ratio(2, 9, 28, 10), 228);
    }

    #[test]
    #[should_panic(expected = "scan_ratio")]
    fn zero_scan_ratio_panics() {
        let _ = clock_cycles_with_scan_ratio(2, 9, 28, 0);
    }

    #[test]
    fn multi_chain_reduces_scan_cost() {
        // One chain reproduces the base formula.
        assert_eq!(
            clock_cycles_multi_chain(4, 1, 9, 28, 1),
            clock_cycles(4, 9, 28)
        );
        // Two chains of a 4-bit state: 2 shift cycles per scan op.
        assert_eq!(clock_cycles_multi_chain(4, 2, 9, 28, 1), 2 * 10 + 28);
        // Odd split rounds up.
        assert_eq!(clock_cycles_multi_chain(5, 2, 9, 28, 1), 3 * 10 + 28);
        // More chains than flip-flops: one shift cycle per op.
        assert_eq!(clock_cycles_multi_chain(2, 8, 9, 28, 1), 10 + 28);
    }

    #[test]
    #[should_panic(expected = "num_chains")]
    fn zero_chains_panics() {
        let _ = clock_cycles_multi_chain(2, 0, 1, 1, 1);
    }

    #[test]
    fn percent_handles_zero_baseline() {
        assert!((percent_of(10, 0)).abs() < f64::EPSILON);
        assert!((percent_of(50, 100) - 50.0).abs() < 1e-12);
    }
}
