//! Non-scan functional test generation — the comparison point behind the
//! paper's concluding claim.
//!
//! The paper's introduction and conclusion argue that full scan is what
//! lets functional tests reach complete fault coverage: "earlier procedures
//! that did not use scan did not report complete fault coverage of
//! gate-level faults" (referring to its references \[2\]\[3\]). This module
//! implements the non-scan counterpart so the claim is measurable:
//!
//! - tests are input sequences applied from the **reset state** (state 0) —
//!   there is no scan-in, so only states reachable from reset can be
//!   visited;
//! - there is no scan-out, so a transition's next state can only be
//!   verified by applying a UIO sequence and watching the primary outputs;
//!   a transition whose next state has no UIO can have its *output* checked
//!   but its next state goes unverified;
//! - navigation between targets uses transfer sequences inside the
//!   reachable set (planned on the fault-free machine, the standard
//!   single-fault assumption).
//!
//! The result partitions the transitions into *verified*, *output-only*,
//! and *unreached*, and the ablation binary compares the resulting fault
//! coverage against the scan-based procedure.

use scanft_fsm::transfer::find_transfer;
use scanft_fsm::uio::UioSet;
use scanft_fsm::{graph, InputId, StateId, StateTable};

/// Configuration for non-scan generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NonScanConfig {
    /// Reset state every sequence starts from.
    pub reset_state: StateId,
    /// Cap on UIO lengths (as in [`crate::generate::GenConfig`]).
    pub uio_len_cap: Option<usize>,
    /// Maximum transfer length while navigating between targets. Non-scan
    /// transfers may be long; the default is the number of states (any
    /// reachable state can be reached within that bound).
    pub transfer_max_len: Option<usize>,
}

/// Outcome of non-scan test generation.
#[derive(Debug, Clone)]
pub struct NonScanResult {
    /// Input sequences, each applied from the reset state.
    pub sequences: Vec<Vec<InputId>>,
    /// Transitions whose output *and* next state are verified (via UIO).
    pub verified: Vec<(StateId, InputId)>,
    /// Transitions exercised with output observed, next state unverified
    /// (their next state has no UIO).
    pub output_only: Vec<(StateId, InputId)>,
    /// Transitions out of states unreachable from reset: untestable
    /// without scan.
    pub unreached: Vec<(StateId, InputId)>,
}

impl NonScanResult {
    /// Total applied input combinations across all sequences.
    #[must_use]
    pub fn total_length(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Fraction of transitions fully verified, in percent.
    #[must_use]
    pub fn percent_verified(&self, table: &StateTable) -> f64 {
        100.0 * self.verified.len() as f64 / table.num_transitions() as f64
    }

    /// The sequences as `(start, inputs)` pairs for
    /// [`scanft_fsm::sta::coverage_observing`].
    #[must_use]
    pub fn as_tests(&self, reset_state: StateId) -> Vec<(StateId, Vec<InputId>)> {
        self.sequences
            .iter()
            .map(|s| (reset_state, s.clone()))
            .collect()
    }
}

/// Generates non-scan functional tests for `table` (see module docs).
///
/// # Examples
///
/// ```
/// use scanft_core::nonscan::{generate_nonscan, NonScanConfig};
/// use scanft_fsm::{benchmarks, uio};
///
/// let lion = benchmarks::lion();
/// let uios = uio::derive_uios(&lion, 2);
/// let r = generate_nonscan(&lion, &uios, &NonScanConfig::default());
/// // Without scan, the transitions into lion's UIO-less states 1 and 3
/// // cannot have their next states verified.
/// assert!(!r.output_only.is_empty());
/// assert!(r.verified.len() < lion.num_transitions());
/// ```
#[must_use]
pub fn generate_nonscan(
    table: &StateTable,
    uios: &UioSet,
    config: &NonScanConfig,
) -> NonScanResult {
    let npic = table.num_input_combos();
    let cap = config.uio_len_cap.unwrap_or(usize::MAX);
    let transfer_len = config.transfer_max_len.unwrap_or(table.num_states());
    let uio_of = |state: StateId| uios.sequence_capped(state, cap);

    let reachable = graph::reachable_from(table, config.reset_state);
    let mut unreached = Vec::new();
    // pending[s*npic+a]: transition still needs (true = verify, output
    // observation happens on the same visit).
    let mut pending = vec![false; table.num_transitions()];
    let mut pending_per_state = vec![0usize; table.num_states()];
    for t in table.transitions() {
        if reachable[t.from as usize] {
            pending[t.from as usize * npic + t.input as usize] = true;
            pending_per_state[t.from as usize] += 1;
        } else {
            unreached.push((t.from, t.input));
        }
    }

    let mut sequences = Vec::new();
    let mut verified = Vec::new();
    let mut output_only = Vec::new();

    // Phase 1: target transitions whose next state has a UIO (fully
    // verifiable). Phase 2: remaining pending transitions (output-only).
    for phase in 0..2 {
        let eligible = |s: StateId, a: InputId, pending: &[bool]| {
            let cell = s as usize * npic + a as usize;
            pending[cell]
                && if phase == 0 {
                    uio_of(table.next_state(s, a)).is_some()
                } else {
                    true
                }
        };
        loop {
            // Start a fresh sequence from reset.
            let mut cur = config.reset_state;
            let mut seq: Vec<InputId> = Vec::new();
            let mut progressed = false;
            loop {
                // A pending transition out of the current state?
                let next_here = (0..npic as InputId).find(|&a| eligible(cur, a, &pending));
                let a = match next_here {
                    Some(a) => a,
                    None => {
                        // Transfer to a state with an eligible transition.
                        let goal =
                            |s: StateId| (0..npic as InputId).any(|a| eligible(s, a, &pending));
                        match find_transfer(table, cur, transfer_len, goal) {
                            Some(tr) => {
                                seq.extend_from_slice(&tr.inputs);
                                cur = tr.target;
                                (0..npic as InputId)
                                    .find(|&a| eligible(cur, a, &pending))
                                    .expect("transfer target has an eligible transition")
                            }
                            None => break, // nothing reachable from here
                        }
                    }
                };
                let cell = cur as usize * npic + a as usize;
                pending[cell] = false;
                pending_per_state[cur as usize] -= 1;
                progressed = true;
                seq.push(a);
                let arrived = table.next_state(cur, a);
                match uio_of(arrived) {
                    Some(u) if phase == 0 => {
                        verified.push((cur, a));
                        seq.extend_from_slice(&u.inputs);
                        cur = u.final_state;
                    }
                    _ => {
                        if phase == 0 {
                            // Should not happen: phase 0 targets only
                            // UIO-verified transitions.
                            verified.push((cur, a));
                            cur = arrived;
                        } else {
                            output_only.push((cur, a));
                            cur = arrived;
                        }
                    }
                }
            }
            if !seq.is_empty() {
                sequences.push(seq);
            }
            if !progressed {
                break;
            }
        }
    }

    NonScanResult {
        sequences,
        verified,
        output_only,
        unreached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_fsm::{benchmarks, sta, uio, StateTableBuilder};

    fn lion_result() -> (scanft_fsm::StateTable, NonScanResult) {
        let lion = benchmarks::lion();
        let uios = uio::derive_uios(&lion, 2);
        let r = generate_nonscan(&lion, &uios, &NonScanConfig::default());
        (lion, r)
    }

    #[test]
    fn lion_partition_is_complete_and_disjoint() {
        let (lion, r) = lion_result();
        let total = r.verified.len() + r.output_only.len() + r.unreached.len();
        assert_eq!(total, lion.num_transitions());
        let mut seen = vec![false; lion.num_transitions()];
        for &(s, a) in r.verified.iter().chain(&r.output_only).chain(&r.unreached) {
            let cell = s as usize * lion.num_input_combos() + a as usize;
            assert!(!seen[cell]);
            seen[cell] = true;
        }
        // lion is strongly connected: everything is reached.
        assert!(r.unreached.is_empty());
        // Transitions into UIO-less states 1 and 3 are output-only.
        for &(s, a) in &r.output_only {
            let next = lion.next_state(s, a);
            assert!(next == 1 || next == 3);
        }
    }

    #[test]
    fn sequences_replay_consistently() {
        let (lion, r) = lion_result();
        for seq in &r.sequences {
            // Must be executable from reset (no panic) — replay it.
            let _ = lion.run(0, seq);
        }
        assert!(r.total_length() > 0);
    }

    #[test]
    fn unreachable_states_are_reported() {
        // State 2 unreachable from 0.
        let mut b = StateTableBuilder::new("island", 1, 1, 3).unwrap();
        b.set(0, 0, 1, 0).unwrap();
        b.set(0, 1, 0, 1).unwrap();
        b.set(1, 0, 0, 1).unwrap();
        b.set(1, 1, 1, 0).unwrap();
        b.set(2, 0, 2, 1).unwrap();
        b.set(2, 1, 0, 0).unwrap();
        let t = b.build().unwrap();
        let uios = uio::derive_uios(&t, 2);
        let r = generate_nonscan(&t, &uios, &NonScanConfig::default());
        assert_eq!(r.unreached.len(), 2);
        assert!(r.unreached.iter().all(|&(s, _)| s == 2));
    }

    #[test]
    fn nonscan_coverage_below_scan_coverage() {
        // The paper's concluding claim at the functional level: non-scan
        // tests cannot match scan-based coverage of transition faults.
        let (lion, r) = lion_result();
        let faults = sta::enumerate(&lion, sta::StaUniverse::Full);
        let nonscan_tests = r.as_tests(0);
        let nonscan = sta::coverage_observing(&lion, &nonscan_tests, &faults, false);

        let uios = uio::derive_uios(&lion, 2);
        let set = crate::generate::generate(&lion, &uios, &crate::generate::GenConfig::default());
        let scan_tests: Vec<(u32, Vec<u32>)> = set
            .tests
            .iter()
            .map(|t| (t.initial_state, t.inputs.clone()))
            .collect();
        let scan = sta::coverage(&lion, &scan_tests, &faults);

        assert!(scan.detected() > nonscan.detected());
        // Scan-based tests detect nearly everything; quantify both.
        assert!(
            scan.coverage_percent() > 95.0,
            "{}",
            scan.coverage_percent()
        );
    }
}
