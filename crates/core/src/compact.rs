//! Static test compaction by test combining — the technique of the paper's
//! reference \[7\] (Pomeranz & Reddy, ATS 1998), implemented as an extension.
//!
//! Combining tests `τ_i` and `τ_j` whose states line up
//! (`final(τ_i) = initial(τ_j)`) removes the scan-out of `τ_i` and the
//! scan-in of `τ_j`: the combined test is
//! `(initial(τ_i), inputs_i ++ inputs_j, final(τ_j))`, saving one scan
//! operation (`N_SV` cycles). The catch is that `τ_i`'s ending scan-out also
//! *verified* `τ_i`'s final state, so combining can lose coverage; following
//! \[7\], a combination is accepted only when gate-level fault coverage is
//! preserved, which the caller checks through the provided oracle.

use scanft_fsm::StateId;

use crate::test_set::{FunctionalTest, TestSet};

/// Outcome of a compaction run.
#[derive(Debug, Clone)]
pub struct CompactionResult {
    /// The compacted test set.
    pub tests: Vec<FunctionalTest>,
    /// Number of combinations performed (scan operations saved).
    pub combinations: usize,
    /// Number of candidate combinations rejected by the coverage oracle.
    pub rejected: usize,
}

/// Greedily combines chainable tests, accepting each combination only when
/// `accept` returns `true` for the tentative test list.
///
/// `accept` receives the candidate test set (all tests, with the tentative
/// combination applied) and must say whether it still meets the caller's
/// coverage requirement — typically by gate-level fault simulation, as in
/// \[7\]. Use `|_| true` for unconditional structural chaining.
///
/// The scan is deterministic: for each test (in order), the first later
/// test whose initial state matches its final state is tried.
pub fn combine_tests<F>(set: &TestSet, mut accept: F) -> CompactionResult
where
    F: FnMut(&[FunctionalTest]) -> bool,
{
    let mut tests: Vec<FunctionalTest> = set.tests.clone();
    let mut combinations = 0usize;
    let mut rejected = 0usize;

    let mut i = 0;
    while i < tests.len() {
        let mut advanced = false;
        // Find a chainable partner after position i.
        let fin: StateId = tests[i].final_state;
        if let Some(j) = (i + 1..tests.len()).find(|&j| tests[j].initial_state == fin) {
            let mut candidate = tests.clone();
            let tail = candidate.remove(j);
            let head = &mut candidate[i];
            head.inputs.extend_from_slice(&tail.inputs);
            head.final_state = tail.final_state;
            head.targets.extend_from_slice(&tail.targets);
            if accept(&candidate) {
                tests = candidate;
                combinations += 1;
                // Stay on i: its new final state may chain again.
                advanced = true;
            } else {
                rejected += 1;
            }
        }
        if !advanced {
            i += 1;
        }
    }

    CompactionResult {
        tests,
        combinations,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenConfig};
    use scanft_fsm::{benchmarks, uio};

    fn lion_set() -> (scanft_fsm::StateTable, TestSet) {
        let lion = benchmarks::lion();
        let uios = uio::derive_uios(&lion, 2);
        let set = generate(&lion, &uios, &GenConfig::default());
        (lion, set)
    }

    #[test]
    fn unconditional_chaining_reduces_tests_and_preserves_behaviour() {
        let (lion, set) = lion_set();
        let result = combine_tests(&set, |_| true);
        assert!(result.combinations > 0);
        assert_eq!(result.tests.len(), set.tests.len() - result.combinations);
        assert_eq!(result.rejected, 0);
        // Combined tests still run consistently on the machine and keep
        // every targeted transition.
        let mut targeted = 0;
        for t in &result.tests {
            let (fin, _) = lion.run(t.initial_state, &t.inputs);
            assert_eq!(fin, t.final_state);
            targeted += t.targets.len();
        }
        assert_eq!(targeted, 16);
    }

    #[test]
    fn rejecting_oracle_blocks_all_combinations() {
        let (_, set) = lion_set();
        let result = combine_tests(&set, |_| false);
        assert_eq!(result.combinations, 0);
        assert_eq!(result.tests.len(), set.tests.len());
        assert!(result.rejected > 0);
    }

    #[test]
    fn oracle_sees_the_tentative_candidate() {
        let (_, set) = lion_set();
        let original = set.tests.len();
        let mut calls = 0;
        let result = combine_tests(&set, |candidate| {
            calls += 1;
            assert!(candidate.len() < original + 1);
            // Accept only the first combination.
            calls == 1
        });
        assert_eq!(result.combinations, 1);
        assert_eq!(result.tests.len(), original - 1);
    }

    #[test]
    fn coverage_preserving_compaction_with_fault_simulation() {
        // End-to-end: accept a combination only if gate-level stuck-at
        // coverage is preserved — the actual criterion of [7].
        let (lion, set) = lion_set();
        let circuit = scanft_synth::synthesize(&lion, &scanft_synth::SynthConfig::default());
        let stuck = scanft_sim::faults::enumerate_stuck(circuit.netlist());
        let faults = scanft_sim::faults::as_fault_list(&stuck);
        let baseline =
            scanft_sim::campaign::run(circuit.netlist(), &set.to_scan_tests(&circuit), &faults)
                .detected();
        let result = combine_tests(&set, |candidate| {
            let scan_tests: Vec<_> = candidate.iter().map(|t| t.to_scan_test(&circuit)).collect();
            scanft_sim::campaign::run(circuit.netlist(), &scan_tests, &faults).detected()
                >= baseline
        });
        // Whatever was accepted must preserve coverage.
        let scan_tests: Vec<_> = result
            .tests
            .iter()
            .map(|t| t.to_scan_test(&circuit))
            .collect();
        let after = scanft_sim::campaign::run(circuit.netlist(), &scan_tests, &faults).detected();
        assert_eq!(after, baseline);
        // Fewer scan operations than the uncompacted set.
        assert!(result.tests.len() <= set.tests.len());
    }
}
