use scanft_fsm::{format_input_seq, InputId, StateId, StateTable};
use scanft_sim::ScanTest;
use scanft_synth::SynthesizedCircuit;

/// One functional test in the paper's notation `(initial state, input
/// sequence, final state)` — e.g. lion's `τ0 = (0, (00,00,01), 1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalTest {
    /// State scanned in before the first input combination.
    pub initial_state: StateId,
    /// Input combinations applied, one per clock cycle.
    pub inputs: Vec<InputId>,
    /// Fault-free final state, verified by the ending scan-out.
    pub final_state: StateId,
    /// The transitions this test explicitly targets, in order (transitions
    /// merely traversed by UIO or transfer segments are not listed).
    pub targets: Vec<(StateId, InputId)>,
}

impl FunctionalTest {
    /// The paper's test length: number of input combinations between the
    /// scan operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the test is empty (never produced by the generator).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Renders the test in the paper's notation, e.g.
    /// `(0, (00 00 01), 1)`.
    #[must_use]
    pub fn display(&self, table: &StateTable) -> String {
        format!(
            "({}, ({}), {})",
            table.state_name(self.initial_state),
            format_input_seq(&self.inputs, table.num_inputs()),
            table.state_name(self.final_state)
        )
    }

    /// Translates the functional test into a gate-level scan test for a
    /// synthesized implementation (states become scan codes).
    #[must_use]
    pub fn to_scan_test(&self, circuit: &SynthesizedCircuit) -> ScanTest {
        ScanTest::new(
            circuit.encode_state(self.initial_state),
            self.inputs.clone(),
        )
    }
}

/// A generated set of functional tests plus generation statistics — the
/// data behind one row of Table 5.
#[derive(Debug, Clone)]
pub struct TestSet {
    /// The tests, in generation order.
    pub tests: Vec<FunctionalTest>,
    /// Number of state transitions of the machine (the `trans` column).
    pub num_transitions: usize,
    /// Wall-clock generation time in seconds (the `time` column).
    pub elapsed_secs: f64,
}

impl TestSet {
    /// Total length of all tests (the `len` column of Table 5).
    #[must_use]
    pub fn total_length(&self) -> usize {
        self.tests.iter().map(FunctionalTest::len).sum()
    }

    /// Number of transitions tested by length-1 tests. Each length-1 test
    /// targets exactly one transition.
    #[must_use]
    pub fn transitions_in_unit_tests(&self) -> usize {
        self.tests.iter().filter(|t| t.len() == 1).count()
    }

    /// The `1len` column of Table 5: percentage of state transitions tested
    /// by tests of length one.
    ///
    /// A machine with zero transitions is vacuously 100% unit-tested — the
    /// same convention as `CampaignReport::coverage_percent`, which reports
    /// 100.0 for an empty fault list ("nothing required, everything done").
    #[must_use]
    pub fn percent_unit_tested(&self) -> f64 {
        if self.num_transitions == 0 {
            return 100.0;
        }
        100.0 * self.transitions_in_unit_tests() as f64 / self.num_transitions as f64
    }

    /// Translates the whole set into gate-level scan tests.
    #[must_use]
    pub fn to_scan_tests(&self, circuit: &SynthesizedCircuit) -> Vec<ScanTest> {
        self.tests.iter().map(|t| t.to_scan_test(circuit)).collect()
    }

    /// Every transition explicitly targeted, across all tests.
    #[must_use]
    pub fn targeted_transitions(&self) -> Vec<(StateId, InputId)> {
        self.tests.iter().flat_map(|t| t.targets.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let lion = scanft_fsm::benchmarks::lion();
        let t = FunctionalTest {
            initial_state: 0,
            inputs: vec![0b00, 0b00, 0b01],
            final_state: 1,
            targets: vec![(0, 0b00), (0, 0b01)],
        };
        assert_eq!(t.display(&lion), "(0, (00 00 01), 1)");
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn test_set_statistics() {
        let set = TestSet {
            tests: vec![
                FunctionalTest {
                    initial_state: 0,
                    inputs: vec![0, 1],
                    final_state: 1,
                    targets: vec![(0, 0), (0, 1)],
                },
                FunctionalTest {
                    initial_state: 1,
                    inputs: vec![1],
                    final_state: 0,
                    targets: vec![(1, 1)],
                },
            ],
            num_transitions: 4,
            elapsed_secs: 0.0,
        };
        assert_eq!(set.total_length(), 3);
        assert_eq!(set.transitions_in_unit_tests(), 1);
        assert!((set.percent_unit_tested() - 25.0).abs() < 1e-9);
        assert_eq!(set.targeted_transitions().len(), 3);
    }

    /// Vacuous case pinned: zero transitions means 100% unit-tested, the
    /// same convention as an empty-fault-list campaign.
    #[test]
    fn percent_unit_tested_is_vacuously_full() {
        let empty = TestSet {
            tests: vec![],
            num_transitions: 0,
            elapsed_secs: 0.0,
        };
        assert!((empty.percent_unit_tested() - 100.0).abs() < 1e-12);
    }
}
