//! Coverage top-up: functional tests first, deterministic ATPG for the rest.
//!
//! The paper's position is that functional tests do most of the work and
//! deterministic test generation should only be spent on the faults they
//! miss. This module implements exactly that division of labour:
//!
//! 1. fault-simulate the functional test set with fault dropping (in the
//!    paper's decreasing-length order) over the collapsed single stuck-at
//!    universe;
//! 2. run PODEM (`scanft-atpg`) *only* on the surviving faults, walking the
//!    survivor list in reverse order;
//! 3. fault-simulate every newly generated pattern against all still-pending
//!    faults, so one deterministic pattern can drop many targets;
//! 4. report every fault as functionally detected, ATPG detected, proven
//!    redundant, or aborted — aborted is the only inconclusive verdict, and
//!    it only occurs on a budget hit (per-fault decision budget, or the
//!    run-level wall-clock/target-count [`Budget`]).
//!
//! The combined test set is the functional set followed by the ATPG
//! patterns; on an irredundancy-free budget the result covers 100% of the
//! non-redundant faults (the "complete coverage" column of the comparison
//! table).

use scanft_analyze::{is_statically_untestable_with, Analysis};
use scanft_atpg::{Atpg, AtpgConfig, AtpgOutcome};
use scanft_harness::{Budget, StopReason};
use scanft_netlist::Netlist;
use scanft_sim::faults::{self, StuckFault};
use scanft_sim::{campaign, collapse, ScanTest};
use scanft_synth::SynthesizedCircuit;

pub use scanft_atpg::Heuristic;

use crate::TestSet;

/// Knobs for a top-up run.
#[derive(Debug, Clone)]
pub struct TopUpConfig {
    /// Per-fault PODEM decision budget (see [`AtpgConfig`]).
    pub decision_budget: u64,
    /// Run-level resource budget: `deadline` caps the wall-clock time of
    /// the whole ATPG phase (each target also inherits the remaining time
    /// as its per-fault deadline), `max_units` caps the number of ATPG
    /// targets attempted. When either trips, the current and remaining
    /// survivors are reported as [`FaultStatus::Aborted`] — coverage stays
    /// a sound lower bound. Defaults to unlimited, preserving the
    /// complete-coverage behaviour.
    pub budget: Budget,
    /// Whether to collapse the stuck-at universe to equivalence-class
    /// representatives before simulation and generation.
    pub collapse: bool,
    /// Whether to classify statically untestable faults — infinite SCOAP
    /// measures, or a FIRE-style implication conflict among the fault's
    /// necessary conditions — as [`FaultStatus::StaticallyUntestable`] and
    /// exclude them from PODEM (they would each burn search effort to
    /// conclude `Redundant`).
    pub static_prune: bool,
    /// Whether PODEM runs implication-guided (see
    /// [`AtpgConfig::use_implications`]). Does not affect which faults are
    /// pruned statically, so an A/B comparison isolates the search effect.
    pub use_implications: bool,
    /// Cost model guiding PODEM's backtrace and D-frontier choices.
    pub heuristic: Heuristic,
    /// Whether to run the functional simulation phase on the
    /// certificate-checked reduced netlist from [`scanft_opt::optimize`],
    /// mapping verdicts back to the original fault universe. Off by
    /// default; when on, the per-fault verdicts are identical by
    /// construction (the differential tests pin this), only faster.
    pub optimize: bool,
}

impl Default for TopUpConfig {
    fn default() -> Self {
        TopUpConfig {
            decision_budget: AtpgConfig::default().decision_budget,
            budget: Budget::unlimited(),
            collapse: true,
            static_prune: true,
            use_implications: true,
            heuristic: Heuristic::default(),
            optimize: false,
        }
    }
}

/// How one fault ended up classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStatus {
    /// Detected by the functional test set.
    DetectedFunctional,
    /// Detected by a deterministic ATPG pattern (its own, or one generated
    /// for another fault and dropped onto this one).
    DetectedAtpg,
    /// Proven combinationally redundant by exhaustion of the PODEM search.
    Redundant,
    /// Proven undetectable *before* ATPG: the fault's SCOAP controllability
    /// or observability is structurally infinite, so no test exists. Unlike
    /// [`FaultStatus::Redundant`], this verdict costs no search at all.
    StaticallyUntestable,
    /// A budget stopped the search before a verdict: the per-fault decision
    /// budget, the per-fault wall-clock deadline, or the run-level
    /// [`TopUpConfig::budget`]. Neither detected nor proven redundant.
    Aborted,
}

/// Per-fault verdicts and aggregate counts of a top-up run.
#[derive(Debug, Clone)]
pub struct TopUpReport {
    /// The faults that were simulated and targeted (collapsed
    /// representatives when [`TopUpConfig::collapse`] is set).
    pub faults: Vec<StuckFault>,
    /// Verdict per fault, parallel to `faults`.
    pub status: Vec<FaultStatus>,
    /// Number of deterministic patterns emitted.
    pub atpg_patterns: usize,
    /// The fault each emitted pattern was generated for, in pattern order
    /// (parallel to [`TopUpOutcome::atpg_patterns`]).
    pub pattern_targets: Vec<StuckFault>,
    /// Faults detected by a pattern generated for a *different* fault
    /// (reverse-order fault dropping at work).
    pub dropped_by_atpg_patterns: usize,
    /// Total PODEM decisions across all targeted faults.
    pub decisions: u64,
    /// Total PODEM backtracks across all targeted faults.
    pub backtracks: u64,
    /// Total necessary input assignments fixed by the implication closure
    /// across all targeted faults (0 when guidance is off).
    pub implications: u64,
    /// Why the run-level [`TopUpConfig::budget`] stopped the ATPG phase
    /// early, if it did. `None` on an uninterrupted run.
    pub stopped: Option<StopReason>,
}

impl TopUpReport {
    fn count(&self, status: FaultStatus) -> usize {
        self.status.iter().filter(|&&s| s == status).count()
    }

    /// Faults detected by the functional tests alone.
    #[must_use]
    pub fn detected_functional(&self) -> usize {
        self.count(FaultStatus::DetectedFunctional)
    }

    /// Faults detected by deterministic patterns.
    #[must_use]
    pub fn detected_atpg(&self) -> usize {
        self.count(FaultStatus::DetectedAtpg)
    }

    /// Faults proven combinationally redundant.
    #[must_use]
    pub fn proven_redundant(&self) -> usize {
        self.count(FaultStatus::Redundant)
    }

    /// Faults proven untestable by static analysis, without any search.
    #[must_use]
    pub fn statically_untestable(&self) -> usize {
        self.count(FaultStatus::StaticallyUntestable)
    }

    /// Faults left unresolved by a budget hit.
    #[must_use]
    pub fn aborted(&self) -> usize {
        self.count(FaultStatus::Aborted)
    }

    /// All detected faults, by either means.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.detected_functional() + self.detected_atpg()
    }

    /// Coverage of the whole fault list in percent — 100.0 when the list is
    /// empty, the same vacuous convention as
    /// `CampaignReport::coverage_percent` and `TestSet::percent_unit_tested`.
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.faults.is_empty() {
            return 100.0;
        }
        100.0 * self.detected() as f64 / self.faults.len() as f64
    }

    /// Coverage of the *testable* faults in percent (the paper's effective
    /// coverage: faults proven untestable — by PODEM exhaustion or by
    /// static analysis — need no test). Vacuously 100.0 when every fault is
    /// untestable or the list is empty.
    #[must_use]
    pub fn effective_coverage_percent(&self) -> f64 {
        let testable = self.faults.len() - self.proven_redundant() - self.statically_untestable();
        if testable == 0 {
            return 100.0;
        }
        100.0 * self.detected() as f64 / testable as f64
    }

    /// Whether every fault was resolved: detected or proven untestable
    /// (redundant or statically untestable), with no budget aborts.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.aborted() == 0
            && self.detected() + self.proven_redundant() + self.statically_untestable()
                == self.faults.len()
    }
}

/// A topped-up test set: the functional tests followed by the deterministic
/// patterns, plus the per-fault report.
#[derive(Debug, Clone)]
pub struct TopUpOutcome {
    /// Combined test set: the input tests, then the ATPG patterns.
    pub tests: Vec<ScanTest>,
    /// How many of `tests` came from the functional set (prefix length).
    pub num_functional: usize,
    /// Verdicts and statistics.
    pub report: TopUpReport,
}

impl TopUpOutcome {
    /// The deterministic patterns appended to the functional set.
    #[must_use]
    pub fn atpg_patterns(&self) -> &[ScanTest] {
        &self.tests[self.num_functional..]
    }
}

/// Tops up a functional [`TestSet`] for a synthesized implementation.
///
/// Convenience wrapper around [`top_up_scan`] that first translates the
/// functional tests to gate-level scan tests.
#[must_use]
pub fn top_up(circuit: &SynthesizedCircuit, set: &TestSet, config: &TopUpConfig) -> TopUpOutcome {
    top_up_scan(circuit.netlist(), &set.to_scan_tests(circuit), config)
}

/// Tops up an arbitrary scan test set to complete stuck-at coverage.
///
/// See the module docs for the flow. The input tests are returned unchanged
/// as the prefix of [`TopUpOutcome::tests`]; only patterns for functionally
/// undetected faults are appended.
#[must_use]
pub fn top_up_scan(
    netlist: &Netlist,
    functional: &[ScanTest],
    config: &TopUpConfig,
) -> TopUpOutcome {
    top_up_scan_with(netlist, functional, config, None)
}

/// Like [`top_up_scan`], accepting a pre-built [`Analysis`] so a caching
/// caller (the `scanft serve` artifact cache) can share one implication/
/// dominator/SCOAP bundle across jobs on the same netlist instead of
/// recomputing it per run. Passing `None` computes the analysis internally
/// (when the config needs one), exactly like [`top_up_scan`]; the analysis
/// is pure structural data, so sharing cannot change any verdict.
#[must_use]
pub fn top_up_scan_with(
    netlist: &Netlist,
    functional: &[ScanTest],
    config: &TopUpConfig,
    prebuilt: Option<Analysis>,
) -> TopUpOutcome {
    let obs = scanft_obs::global();
    let _span = obs.timer("core.top_up").start();

    let universe = faults::enumerate_stuck(netlist);
    let targets: Vec<StuckFault> = if config.collapse {
        collapse::collapse_stuck(netlist, &universe).representatives
    } else {
        universe
    };
    obs.counter("core.top_up.faults").add(targets.len() as u64);

    // One static analysis serves the optimizer, the prune, and the guided
    // search; it is skipped entirely only when no consumer wants it.
    let analysis = if config.optimize || config.static_prune || config.use_implications {
        Some(prebuilt.unwrap_or_else(|| Analysis::new(netlist)))
    } else {
        None
    };

    // Phase 1: functional fault simulation with dropping, in the paper's
    // decreasing-length effective-test order — on the certificate-backed
    // reduced netlist when `config.optimize` is set (per-fault verdicts
    // are identical by construction; see `scanft_opt::campaign`).
    let fault_list = faults::as_fault_list(&targets);
    let functional_report = if config.optimize {
        let opt = scanft_opt::optimize_with(
            netlist,
            analysis.as_ref().expect("analysis built when optimizing"),
        );
        let order = campaign::decreasing_length_order(functional);
        scanft_opt::campaign::run_optimized(netlist, &opt, functional, &order, &fault_list, true)
    } else {
        campaign::run_decreasing_length(netlist, functional, &fault_list)
    };

    let mut status: Vec<Option<FaultStatus>> = functional_report
        .detecting_test
        .iter()
        .map(|d| d.map(|_| FaultStatus::DetectedFunctional))
        .collect();

    // Static pruning: faults with an infinite SCOAP measure or a FIRE-style
    // implication conflict are provably undetectable, so they never reach
    // PODEM. Classification is sound, so a functional detection of a pruned
    // fault is a contradiction.
    if config.static_prune {
        if let Some(analysis) = analysis.as_ref() {
            let mut num_pruned = 0u64;
            for (k, fault) in targets.iter().enumerate() {
                if is_statically_untestable_with(netlist, analysis, fault) {
                    debug_assert!(
                        status[k].is_none(),
                        "statically untestable fault detected functionally: {fault:?}"
                    );
                    status[k] = Some(FaultStatus::StaticallyUntestable);
                    num_pruned += 1;
                }
            }
            obs.counter("core.top_up.static_untestable").add(num_pruned);
        }
    }

    let survivors = functional_report.undetected_faults();
    obs.counter("core.top_up.surviving")
        .add(survivors.len() as u64);

    // Phase 2: deterministic generation on the survivors, reverse order,
    // with each fresh pattern simulated across every still-pending fault.
    // Statically untestable faults are already classified and skipped.
    let mut atpg = match analysis {
        Some(analysis) => Atpg::with_analysis(netlist, analysis),
        None => Atpg::new(netlist),
    };
    let base_config = AtpgConfig {
        decision_budget: config.decision_budget,
        budget: Budget::unlimited(),
        heuristic: config.heuristic,
        use_implications: config.use_implications,
    };
    let clock = config.budget.start();
    let mut stopped: Option<StopReason> = None;
    let mut patterns: Vec<ScanTest> = Vec::new();
    let mut pattern_targets: Vec<StuckFault> = Vec::new();
    let mut dropped = 0usize;
    let mut decisions = 0u64;
    let mut backtracks = 0u64;
    let mut implications = 0u64;
    for &f in survivors.iter().rev() {
        if status[f].is_some() {
            continue; // dropped by an earlier pattern
        }
        if let Err(reason) = clock.try_claim() {
            // Run-level budget exhausted: this target and every remaining
            // unclassified survivor becomes Aborted below.
            stopped = Some(reason);
            break;
        }
        // Each target inherits the remaining run time as its per-fault
        // wall-clock cap, so the last target cannot overshoot the run
        // deadline by its whole decision budget.
        let atpg_config = AtpgConfig {
            budget: match clock.remaining_time() {
                Some(left) => Budget::unlimited().with_deadline(left),
                None => Budget::unlimited(),
            },
            ..base_config
        };
        let result = atpg.generate(&targets[f], &atpg_config);
        decisions += result.stats.decisions;
        backtracks += result.stats.backtracks;
        implications += result.stats.implications;
        match result.outcome {
            AtpgOutcome::Test(test) => {
                // Simulate the new pattern against every pending fault so
                // its collateral detections are dropped from the queue.
                let pending: Vec<usize> = (0..targets.len())
                    .filter(|&k| status[k].is_none())
                    .collect();
                let pending_faults: Vec<scanft_sim::faults::Fault> =
                    pending.iter().map(|&k| fault_list[k]).collect();
                let report = campaign::run(netlist, std::slice::from_ref(&test), &pending_faults);
                for (slot, &k) in pending.iter().enumerate() {
                    if report.detecting_test[slot].is_some() {
                        status[k] = Some(FaultStatus::DetectedAtpg);
                        if k != f {
                            dropped += 1;
                        }
                    }
                }
                debug_assert_eq!(
                    status[f],
                    Some(FaultStatus::DetectedAtpg),
                    "a generated pattern must detect its own target"
                );
                pattern_targets.push(targets[f]);
                patterns.push(test);
            }
            AtpgOutcome::Redundant => status[f] = Some(FaultStatus::Redundant),
            AtpgOutcome::Aborted { .. } => status[f] = Some(FaultStatus::Aborted),
        }
    }

    obs.counter("core.top_up.patterns")
        .add(patterns.len() as u64);
    obs.counter("core.top_up.dropped").add(dropped as u64);
    if stopped.is_some() {
        obs.counter("core.top_up.budget_stops").inc();
    }
    let report = TopUpReport {
        faults: targets,
        status: status
            .into_iter()
            // Survivors never reached after a budget stop are inconclusive,
            // exactly like a per-fault budget hit.
            .map(|s| s.unwrap_or(FaultStatus::Aborted))
            .collect(),
        atpg_patterns: patterns.len(),
        pattern_targets,
        dropped_by_atpg_patterns: dropped,
        decisions,
        backtracks,
        implications,
        stopped,
    };
    obs.counter("core.top_up.redundant")
        .add(report.proven_redundant() as u64);
    obs.counter("core.top_up.aborted")
        .add(report.aborted() as u64);

    let num_functional = functional.len();
    let mut tests = functional.to_vec();
    tests.extend(patterns);
    TopUpOutcome {
        tests,
        num_functional,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenConfig};
    use scanft_fsm::uio;
    use scanft_netlist::{GateKind, NetlistBuilder};
    use scanft_synth::{synthesize, SynthConfig};

    /// Satellite requirement: on a netlist with zero faults, `top_up`
    /// returns the input test set unchanged and reports 100.0% coverage —
    /// the vacuous convention shared with `percent_unit_tested` and
    /// `coverage_percent`.
    #[test]
    fn vacuous_netlist_returns_input_unchanged_with_full_coverage() {
        // A single dangling PI: no gate, no output, so `enumerate_stuck`
        // skips the only net and the fault universe is empty.
        let netlist = NetlistBuilder::new(1, 0).finish(vec![], vec![]).unwrap();
        assert!(faults::enumerate_stuck(&netlist).is_empty());
        let functional = vec![ScanTest::new(0, vec![1]), ScanTest::new(0, vec![0])];
        let outcome = top_up_scan(&netlist, &functional, &TopUpConfig::default());
        assert_eq!(outcome.tests, functional);
        assert_eq!(outcome.num_functional, functional.len());
        assert!(outcome.atpg_patterns().is_empty());
        let report = &outcome.report;
        assert!(report.faults.is_empty());
        assert!((report.coverage_percent() - 100.0).abs() < 1e-12);
        assert!((report.effective_coverage_percent() - 100.0).abs() < 1e-12);
        assert!(report.is_complete());
        assert_eq!(report.atpg_patterns, 0);
    }

    /// With an empty functional set, top-up degenerates to pure ATPG and
    /// still reaches complete coverage of the non-redundant faults.
    #[test]
    fn pure_atpg_from_empty_functional_set() {
        let lion = scanft_fsm::benchmarks::lion();
        let circuit = synthesize(&lion, &SynthConfig::default());
        let outcome = top_up_scan(circuit.netlist(), &[], &TopUpConfig::default());
        let report = &outcome.report;
        assert_eq!(outcome.num_functional, 0);
        assert_eq!(report.detected_functional(), 0);
        assert!(report.is_complete());
        assert!((report.effective_coverage_percent() - 100.0).abs() < 1e-12);
        assert!(report.atpg_patterns > 0);
        assert_eq!(outcome.atpg_patterns().len(), report.atpg_patterns);
    }

    /// End-to-end on the walkthrough machine: the functional set detects
    /// most faults, ATPG resolves the remainder, nothing aborts, and the
    /// dominant share of detections is functional (the paper's argument for
    /// functional-first generation).
    #[test]
    fn functional_first_then_atpg_on_lion() {
        let lion = scanft_fsm::benchmarks::lion();
        let uios = uio::derive_uios(&lion, lion.num_state_vars());
        let set = generate(&lion, &uios, &GenConfig::default());
        let circuit = synthesize(&lion, &SynthConfig::default());
        let outcome = top_up(&circuit, &set, &TopUpConfig::default());
        let report = &outcome.report;
        assert!(report.is_complete());
        assert!(report.detected_functional() > report.detected_atpg());
        assert_eq!(
            outcome.tests.len(),
            outcome.num_functional + report.atpg_patterns
        );
        // The combined set really covers everything non-redundant: one
        // final straight simulation of the whole set must detect exactly
        // the non-redundant faults.
        let final_report = campaign::run(
            circuit.netlist(),
            &outcome.tests,
            &faults::as_fault_list(&report.faults),
        );
        assert_eq!(
            final_report.detected(),
            report.faults.len() - report.proven_redundant()
        );
    }

    /// `optimize: true` routes the functional campaign through the
    /// certificate-checked reduced netlist; every verdict, every emitted
    /// pattern, and the final report must be bit-identical to the default
    /// path (the reduction only changes *where* faults are simulated).
    #[test]
    fn optimized_functional_phase_is_bit_identical_on_lion() {
        let lion = scanft_fsm::benchmarks::lion();
        let uios = uio::derive_uios(&lion, lion.num_state_vars());
        let set = generate(&lion, &uios, &GenConfig::default());
        let circuit = synthesize(&lion, &SynthConfig::default());
        let plain = top_up(&circuit, &set, &TopUpConfig::default());
        let optimized = top_up(
            &circuit,
            &set,
            &TopUpConfig {
                optimize: true,
                ..TopUpConfig::default()
            },
        );
        assert_eq!(optimized.tests, plain.tests);
        assert_eq!(optimized.num_functional, plain.num_functional);
        assert_eq!(optimized.report.faults, plain.report.faults);
        assert_eq!(optimized.report.status, plain.report.status);
        assert_eq!(optimized.report.atpg_patterns, plain.report.atpg_patterns);
        assert_eq!(
            optimized.report.pattern_targets,
            plain.report.pattern_targets
        );
    }

    /// Collapsing on/off changes the fault count but not completeness.
    #[test]
    fn uncollapsed_universe_is_also_completed() {
        let lion = scanft_fsm::benchmarks::lion();
        let circuit = synthesize(&lion, &SynthConfig::default());
        let collapsed = top_up_scan(
            circuit.netlist(),
            &[],
            &TopUpConfig {
                collapse: true,
                ..TopUpConfig::default()
            },
        );
        let full = top_up_scan(
            circuit.netlist(),
            &[],
            &TopUpConfig {
                collapse: false,
                ..TopUpConfig::default()
            },
        );
        assert!(collapsed.report.faults.len() < full.report.faults.len());
        assert!(collapsed.report.is_complete());
        assert!(full.report.is_complete());
    }

    /// Static pruning classifies faults in a dead cone without spending any
    /// PODEM effort, and agrees with what PODEM would have proven itself.
    #[test]
    fn static_pruning_matches_podem_redundancy() {
        // g1 = AND(x1, x2) feeds only a dangling NOT: every fault on g1 and
        // on the branches into g1 is statically untestable.
        let mut b = NetlistBuilder::new(2, 0);
        let g1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let _dead = b.add_gate(GateKind::Not, &[g1]).unwrap();
        let live = b.add_gate(GateKind::Or, &[0, 1]).unwrap();
        let netlist = b.finish(vec![live], vec![]).unwrap();

        let pruned = top_up_scan(&netlist, &[], &TopUpConfig::default());
        assert!(pruned.report.statically_untestable() > 0);
        assert!(pruned.report.is_complete());
        assert!((pruned.report.effective_coverage_percent() - 100.0).abs() < 1e-12);

        let unpruned = top_up_scan(
            &netlist,
            &[],
            &TopUpConfig {
                static_prune: false,
                ..TopUpConfig::default()
            },
        );
        assert_eq!(unpruned.report.statically_untestable(), 0);
        // PODEM reaches the same partition, just by search instead of by
        // analysis: everything pruned statically is proven redundant.
        assert_eq!(
            unpruned.report.proven_redundant(),
            pruned.report.proven_redundant() + pruned.report.statically_untestable()
        );
        assert_eq!(unpruned.report.detected(), pruned.report.detected());
        assert!(unpruned.report.decisions >= pruned.report.decisions);
    }

    /// Implication guidance changes search effort, never verdicts: both
    /// configurations complete the universe with the same fault partition,
    /// and the guided run spends no more backtracks.
    #[test]
    fn implication_guidance_preserves_verdicts() {
        let bbtas = scanft_fsm::benchmarks::build("bbtas").unwrap();
        let circuit = synthesize(&bbtas, &SynthConfig::default());
        let guided = top_up_scan(circuit.netlist(), &[], &TopUpConfig::default());
        let plain = top_up_scan(
            circuit.netlist(),
            &[],
            &TopUpConfig {
                use_implications: false,
                ..TopUpConfig::default()
            },
        );
        assert!(guided.report.is_complete());
        assert!(plain.report.is_complete());
        assert_eq!(guided.report.detected(), plain.report.detected());
        assert_eq!(
            guided.report.proven_redundant() + guided.report.statically_untestable(),
            plain.report.proven_redundant() + plain.report.statically_untestable()
        );
        assert!(guided.report.backtracks <= plain.report.backtracks);
        assert_eq!(plain.report.implications, 0);
    }

    /// A zero decision budget aborts every undetected fault instead of
    /// claiming redundancy. Implication guidance is off: the necessary
    /// assignments it fixes cost no decisions and would legitimately detect
    /// some faults even at zero budget.
    #[test]
    fn zero_budget_aborts_survivors() {
        let lion = scanft_fsm::benchmarks::lion();
        let circuit = synthesize(&lion, &SynthConfig::default());
        let outcome = top_up_scan(
            circuit.netlist(),
            &[],
            &TopUpConfig {
                decision_budget: 0,
                collapse: true,
                use_implications: false,
                ..TopUpConfig::default()
            },
        );
        let report = &outcome.report;
        assert_eq!(report.detected(), 0);
        assert_eq!(report.proven_redundant(), 0);
        assert_eq!(report.aborted(), report.faults.len());
        assert!(!report.is_complete());
        assert!((report.coverage_percent() - 0.0).abs() < 1e-12);
        assert!(report.stopped.is_none(), "per-fault cap is not a run stop");
    }

    /// A zero-second run-level deadline aborts every survivor before any
    /// search: no detections are invented, no redundancy is claimed by the
    /// search, and the stop reason is recorded.
    #[test]
    fn zero_second_run_deadline_aborts_cleanly() {
        let lion = scanft_fsm::benchmarks::lion();
        let circuit = synthesize(&lion, &SynthConfig::default());
        let outcome = top_up_scan(
            circuit.netlist(),
            &[],
            &TopUpConfig {
                budget: Budget::unlimited().with_deadline(std::time::Duration::ZERO),
                ..TopUpConfig::default()
            },
        );
        let report = &outcome.report;
        assert_eq!(report.stopped, Some(StopReason::Deadline));
        assert_eq!(report.detected(), 0);
        assert_eq!(report.proven_redundant(), 0, "no search ran");
        assert!(outcome.atpg_patterns().is_empty());
        assert_eq!(
            report.aborted() + report.statically_untestable(),
            report.faults.len(),
            "static untestability proofs are kept — they are sound at any deadline"
        );
        assert!(!report.is_complete());
    }

    /// `budget.max_units` caps the number of ATPG targets attempted; the
    /// untouched tail is aborted and the run reports the unit-cap stop.
    #[test]
    fn target_cap_stops_after_the_configured_claims() {
        let lion = scanft_fsm::benchmarks::lion();
        let circuit = synthesize(&lion, &SynthConfig::default());
        let unlimited = top_up_scan(circuit.netlist(), &[], &TopUpConfig::default());
        assert!(unlimited.report.atpg_patterns > 2);
        let capped = top_up_scan(
            circuit.netlist(),
            &[],
            &TopUpConfig {
                budget: Budget::unlimited().with_max_units(2),
                ..TopUpConfig::default()
            },
        );
        let report = &capped.report;
        assert_eq!(report.stopped, Some(StopReason::UnitCap));
        assert!(report.atpg_patterns <= 2);
        assert!(report.aborted() > 0);
        assert!(!report.is_complete());
        // Everything the capped run did claim agrees with the full run.
        assert!(report.detected() <= unlimited.report.detected());
        for (k, &s) in report.status.iter().enumerate() {
            if s == FaultStatus::Redundant {
                assert_eq!(unlimited.report.status[k], FaultStatus::Redundant);
            }
        }
    }
}
