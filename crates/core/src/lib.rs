//! Functional test generation for full scan circuits — the primary
//! contribution of Pomeranz & Reddy (DATE 2000), reimplemented in full.
//!
//! The target fault model is the **single state-transition fault**: any one
//! state transition of the machine may produce a faulty next state or output
//! combination. Under full scan, each transition can be tested alone by a
//! length-1 test (scan-in, apply, observe, scan-out), but that maximizes
//! scan operations and tests nothing at speed. The procedure implemented in
//! [`generate`] chains several transitions into one test:
//!
//! - after testing a transition into state `s`, `s`'s **unique input-output
//!   sequence** (UIO) verifies `s` through the primary outputs instead of a
//!   scan-out;
//! - when the state after the UIO has no untested transitions left, a
//!   bounded **transfer sequence** moves to one that does;
//! - otherwise the test ends with a scan-out of the final state.
//!
//! The crate also provides the paper's clock-cycle cost model ([`cycles`]),
//! the one-test-per-transition baseline, the end-to-end evaluation flow
//! used by the table harness ([`flow`]), and the static test compaction of
//! the paper's reference \[7\] as an extension ([`compact`]).
//!
//! # Example
//!
//! ```
//! use scanft_core::generate::{generate, GenConfig};
//! use scanft_fsm::{benchmarks, uio};
//!
//! let lion = benchmarks::lion();
//! let uios = uio::derive_uios(&lion, lion.num_state_vars());
//! let set = generate(&lion, &uios, &GenConfig::default());
//! // Table 5 of the paper, row "lion": 9 tests of total length 28.
//! assert_eq!(set.tests.len(), 9);
//! assert_eq!(set.total_length(), 28);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod compact;
pub mod cycles;
pub mod flow;
pub mod generate;
pub mod io;
pub mod nonscan;
pub mod top_up;
pub mod vectors;

mod test_set;

pub use test_set::{FunctionalTest, TestSet};
