//! Test-set serialization: write functional tests in the paper's notation
//! and read them back, so generation and fault simulation can run as
//! separate tool invocations.
//!
//! Format, one test per line, `#` comments:
//!
//! ```text
//! # scanft tests for lion
//! .circuit lion
//! 0 | 00 00 01 | 1
//! 0 | 10 00 11 00 01 00 | 1
//! ```
//!
//! States are written by name and resolved by name (falling back to decimal
//! indices), inputs as binary combinations. On parsing, every test is
//! replayed on the machine and its final state checked, so a file that does
//! not match the circuit is rejected rather than silently accepted.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use scanft_fsm::{format_input_seq, parse_bits, InputId, StateId, StateTable};

use crate::test_set::{FunctionalTest, TestSet};

/// Error produced while parsing a test-set file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTestsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTestsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "test-set parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseTestsError {}

/// Serializes a test set in the line format above.
#[must_use]
pub fn write_tests(set: &TestSet, table: &StateTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# scanft tests for {}", table.name());
    let _ = writeln!(out, ".circuit {}", table.name());
    for t in &set.tests {
        let _ = writeln!(
            out,
            "{} | {} | {}",
            table.state_name(t.initial_state),
            format_input_seq(&t.inputs, table.num_inputs()),
            table.state_name(t.final_state)
        );
    }
    out
}

/// Parses a test-set file against `table`.
///
/// Targets are not stored in the format; parsed tests carry empty target
/// lists (coverage can be recomputed by replay).
///
/// # Errors
///
/// Returns [`ParseTestsError`] for malformed lines, unknown state names,
/// bad input combinations, a `.circuit` header naming a different machine,
/// or a final state that disagrees with replaying the inputs on `table`.
pub fn parse_tests(text: &str, table: &StateTable) -> Result<TestSet, ParseTestsError> {
    let mut tests: Vec<FunctionalTest> = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let fail = |message: String| ParseTestsError {
            line: line_no,
            message,
        };
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".circuit") {
            let name = rest.trim();
            if name != table.name() {
                return Err(fail(format!(
                    "file is for circuit `{name}`, expected `{}`",
                    table.name()
                )));
            }
            continue;
        }
        let mut parts = line.split('|');
        let (init, seq, fin) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), Some(c), None) => (a.trim(), b.trim(), c.trim()),
            _ => return Err(fail("expected `initial | inputs | final`".into())),
        };
        let initial_state =
            resolve_state(table, init).ok_or_else(|| fail(format!("unknown state `{init}`")))?;
        let final_state =
            resolve_state(table, fin).ok_or_else(|| fail(format!("unknown state `{fin}`")))?;
        let mut inputs: Vec<InputId> = Vec::new();
        for token in seq.split_whitespace() {
            let value = parse_bits(token)
                .filter(|&v| {
                    v < table.num_input_combos() as u64 && token.len() == table.num_inputs()
                })
                .ok_or_else(|| fail(format!("bad input combination `{token}`")))?;
            inputs.push(value as InputId);
        }
        if inputs.is_empty() {
            return Err(fail("a test needs at least one input combination".into()));
        }
        let replayed = table.run_state(initial_state, &inputs);
        if replayed != final_state {
            return Err(fail(format!(
                "final state `{fin}` disagrees with replay (machine reaches `{}`)",
                table.state_name(replayed)
            )));
        }
        tests.push(FunctionalTest {
            initial_state,
            inputs,
            final_state,
            targets: Vec::new(),
        });
    }
    Ok(TestSet {
        tests,
        num_transitions: table.num_transitions(),
        elapsed_secs: 0.0,
    })
}

fn resolve_state(table: &StateTable, token: &str) -> Option<StateId> {
    for s in 0..table.num_states() as StateId {
        if table.state_name(s) == token {
            return Some(s);
        }
    }
    token
        .parse::<StateId>()
        .ok()
        .filter(|&s| (s as usize) < table.num_states())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenConfig};
    use scanft_fsm::{benchmarks, uio};

    fn lion_set() -> (StateTable, TestSet) {
        let lion = benchmarks::lion();
        let uios = uio::derive_uios(&lion, 2);
        let set = generate(&lion, &uios, &GenConfig::default());
        (lion, set)
    }

    #[test]
    fn round_trip_preserves_tests() {
        let (lion, set) = lion_set();
        let text = write_tests(&set, &lion);
        let back = parse_tests(&text, &lion).expect("round trip");
        assert_eq!(back.tests.len(), set.tests.len());
        for (a, b) in back.tests.iter().zip(&set.tests) {
            assert_eq!(a.initial_state, b.initial_state);
            assert_eq!(a.inputs, b.inputs);
            assert_eq!(a.final_state, b.final_state);
        }
        assert_eq!(back.num_transitions, 16);
    }

    #[test]
    fn text_contains_paper_notation() {
        let (lion, set) = lion_set();
        let text = write_tests(&set, &lion);
        assert!(text.contains("0 | 00 00 01 | 1"));
        assert!(text.contains(".circuit lion"));
    }

    #[test]
    fn rejects_wrong_circuit_header() {
        let (lion, _) = lion_set();
        let err = parse_tests(".circuit dk15\n", &lion).unwrap_err();
        assert!(err.to_string().contains("dk15"));
    }

    #[test]
    fn rejects_inconsistent_final_state() {
        let (lion, _) = lion_set();
        // 0 under 01 reaches 1, not 3.
        let err = parse_tests("0 | 01 | 3\n", &lion).unwrap_err();
        assert!(err.to_string().contains("disagrees"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let (lion, _) = lion_set();
        assert!(parse_tests("0 | 01\n", &lion).is_err());
        assert!(parse_tests("9 | 01 | 1\n", &lion).is_err());
        assert!(parse_tests("0 | 0x | 0\n", &lion).is_err());
        assert!(parse_tests("0 | 011 | 0\n", &lion).is_err()); // wrong width
        assert!(parse_tests("0 |  | 0\n", &lion).is_err());
        assert!(parse_tests("0 | 01 | 1 | extra\n", &lion).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let (lion, _) = lion_set();
        let set = parse_tests("# header\n\n0 | 00 | 0 # self loop\n", &lion).expect("parses");
        assert_eq!(set.tests.len(), 1);
    }

    #[test]
    fn symbolic_state_names_resolve() {
        let src = ".i 1\n.o 1\n.r IDLE\n0 IDLE IDLE 0\n1 IDLE RUN 1\n- RUN IDLE 1\n.e\n";
        let t = scanft_fsm::kiss::parse_with(src, "m", scanft_fsm::kiss::Completion::SelfLoop)
            .expect("valid kiss");
        let set = parse_tests(".circuit m\nIDLE | 1 | RUN\n", &t).expect("names resolve");
        assert_eq!(set.tests[0].initial_state, 0);
        assert_eq!(set.tests[0].final_state, 1);
    }
}
