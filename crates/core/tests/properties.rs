//! Randomized property tests for the test generation procedure.
//!
//! Driven by the in-repo SplitMix64 RNG with fixed seeds so the workspace
//! builds and tests fully offline (no external `proptest`).

#![allow(clippy::unwrap_used)]
use scanft_core::generate::{generate, per_transition_baseline, GenConfig};
use scanft_core::{compact, cycles};
use scanft_fsm::benchmarks::random_machine;
use scanft_fsm::rng::SplitMix64;
use scanft_fsm::uio::derive_uios;

/// The generated test set targets every transition exactly once, and every
/// recorded final state matches machine simulation — for random machines
/// and all parameter settings.
#[test]
fn generation_covers_every_transition_once() {
    let mut rng = SplitMix64::new(0xC04E_0001);
    for _ in 0..40 {
        let pi = 1 + rng.next_below(3) as usize;
        let po = 1 + rng.next_below(2) as usize;
        let states = 2 + rng.next_below(7) as usize;
        let table = random_machine("prop", pi, po, states, rng.next_u64()).unwrap();
        let uios = derive_uios(&table, table.num_state_vars());
        let config = GenConfig {
            uio_len_cap: rng.chance(1, 2).then(|| rng.next_below(4) as usize),
            transfer_max_len: rng.next_below(3) as usize,
        };
        let set = generate(&table, &uios, &config);
        let mut seen = vec![false; table.num_transitions()];
        for t in &set.tests {
            assert!(!t.is_empty());
            let (fin, _) = table.run(t.initial_state, &t.inputs);
            assert_eq!(fin, t.final_state);
            for &(s, a) in &t.targets {
                let cell = s as usize * table.num_input_combos() + a as usize;
                assert!(!seen[cell], "transition targeted twice");
                seen[cell] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "transition never targeted");
        // Never more tests than the per-transition baseline.
        assert!(set.tests.len() <= table.num_transitions());
        // Unit-test percentage is consistent with its definition.
        let unit = set.tests.iter().filter(|t| t.len() == 1).count();
        assert_eq!(set.transitions_in_unit_tests(), unit);
    }
}

/// Functional tests never use more scan operations than the baseline, and
/// the cycle formula is internally consistent.
#[test]
fn cycle_accounting() {
    let mut rng = SplitMix64::new(0xC04E_0002);
    for _ in 0..40 {
        let pi = 1 + rng.next_below(2) as usize;
        let states = 2 + rng.next_below(7) as usize;
        let table = random_machine("prop", pi, 1, states, rng.next_u64()).unwrap();
        let uios = derive_uios(&table, table.num_state_vars());
        let set = generate(&table, &uios, &GenConfig::default());
        let base = per_transition_baseline(&table);
        let sv = table.num_state_vars();
        let set_cycles = cycles::test_set_cycles(&set, sv);
        let base_cycles = cycles::test_set_cycles(&base, sv);
        assert_eq!(
            set_cycles,
            sv as u64 * (set.tests.len() as u64 + 1) + set.total_length() as u64
        );
        // Baseline: trans tests of length 1.
        assert_eq!(
            base_cycles,
            sv as u64 * (table.num_transitions() as u64 + 1) + table.num_transitions() as u64
        );
    }
}

/// Unconditional compaction preserves the targeted transitions and the
/// run-consistency of every test.
#[test]
fn compaction_preserves_structure() {
    let mut rng = SplitMix64::new(0xC04E_0003);
    for _ in 0..40 {
        let pi = 1 + rng.next_below(2) as usize;
        let states = 2 + rng.next_below(5) as usize;
        let table = random_machine("prop", pi, 1, states, rng.next_u64()).unwrap();
        let uios = derive_uios(&table, table.num_state_vars());
        let set = generate(&table, &uios, &GenConfig::default());
        let result = compact::combine_tests(&set, |_| true);
        assert_eq!(result.tests.len() + result.combinations, set.tests.len());
        let mut targets = 0usize;
        for t in &result.tests {
            let (fin, _) = table.run(t.initial_state, &t.inputs);
            assert_eq!(fin, t.final_state);
            targets += t.targets.len();
        }
        assert_eq!(targets, table.num_transitions());
    }
}

/// Disabling UIOs entirely (cap 0) degenerates to one test per transition
/// regardless of the machine.
#[test]
fn no_uios_means_unit_tests() {
    let mut rng = SplitMix64::new(0xC04E_0004);
    for _ in 0..40 {
        let pi = 1 + rng.next_below(2) as usize;
        let states = 2 + rng.next_below(5) as usize;
        let table = random_machine("prop", pi, 1, states, rng.next_u64()).unwrap();
        let uios = derive_uios(&table, table.num_state_vars());
        let set = generate(
            &table,
            &uios,
            &GenConfig {
                uio_len_cap: Some(0),
                transfer_max_len: 1,
            },
        );
        assert_eq!(set.tests.len(), table.num_transitions());
        assert!(set.tests.iter().all(|t| t.len() == 1));
    }
}
