//! Property-based tests for the test generation procedure.

use proptest::prelude::*;
use scanft_core::generate::{generate, per_transition_baseline, GenConfig};
use scanft_core::{compact, cycles};
use scanft_fsm::benchmarks::random_machine;
use scanft_fsm::uio::derive_uios;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The generated test set targets every transition exactly once, and
    /// every recorded final state matches machine simulation — for random
    /// machines and all parameter settings.
    #[test]
    fn generation_covers_every_transition_once(
        pi in 1usize..=3,
        po in 1usize..=2,
        states in 2usize..=8,
        seed in any::<u64>(),
        transfer_len in 0usize..=2,
        uio_cap in prop::option::of(0usize..=3),
    ) {
        let table = random_machine("prop", pi, po, states, seed).unwrap();
        let uios = derive_uios(&table, table.num_state_vars());
        let config = GenConfig { uio_len_cap: uio_cap, transfer_max_len: transfer_len };
        let set = generate(&table, &uios, &config);
        let mut seen = vec![false; table.num_transitions()];
        for t in &set.tests {
            prop_assert!(!t.is_empty());
            let (fin, _) = table.run(t.initial_state, &t.inputs);
            prop_assert_eq!(fin, t.final_state);
            for &(s, a) in &t.targets {
                let cell = s as usize * table.num_input_combos() + a as usize;
                prop_assert!(!seen[cell], "transition targeted twice");
                seen[cell] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "transition never targeted");
        // Never more tests than the per-transition baseline.
        prop_assert!(set.tests.len() <= table.num_transitions());
        // Unit-test percentage is consistent with its definition.
        let unit = set.tests.iter().filter(|t| t.len() == 1).count();
        prop_assert_eq!(set.transitions_in_unit_tests(), unit);
    }

    /// Functional tests never use more scan operations than the baseline,
    /// and the cycle formula is internally consistent.
    #[test]
    fn cycle_accounting(
        pi in 1usize..=2,
        states in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let table = random_machine("prop", pi, 1, states, seed).unwrap();
        let uios = derive_uios(&table, table.num_state_vars());
        let set = generate(&table, &uios, &GenConfig::default());
        let base = per_transition_baseline(&table);
        let sv = table.num_state_vars();
        let set_cycles = cycles::test_set_cycles(&set, sv);
        let base_cycles = cycles::test_set_cycles(&base, sv);
        prop_assert_eq!(
            set_cycles,
            sv as u64 * (set.tests.len() as u64 + 1) + set.total_length() as u64
        );
        // Baseline: trans tests of length 1.
        prop_assert_eq!(
            base_cycles,
            sv as u64 * (table.num_transitions() as u64 + 1) + table.num_transitions() as u64
        );
    }

    /// Unconditional compaction preserves the targeted transitions and the
    /// run-consistency of every test, and strictly reduces scan count when
    /// it combines anything.
    #[test]
    fn compaction_preserves_structure(
        pi in 1usize..=2,
        states in 2usize..=6,
        seed in any::<u64>(),
    ) {
        let table = random_machine("prop", pi, 1, states, seed).unwrap();
        let uios = derive_uios(&table, table.num_state_vars());
        let set = generate(&table, &uios, &GenConfig::default());
        let result = compact::combine_tests(&set, |_| true);
        prop_assert_eq!(result.tests.len() + result.combinations, set.tests.len());
        let mut targets = 0usize;
        for t in &result.tests {
            let (fin, _) = table.run(t.initial_state, &t.inputs);
            prop_assert_eq!(fin, t.final_state);
            targets += t.targets.len();
        }
        prop_assert_eq!(targets, table.num_transitions());
    }

    /// Disabling UIOs entirely (cap 0) degenerates to one test per
    /// transition regardless of the machine.
    #[test]
    fn no_uios_means_unit_tests(
        pi in 1usize..=2,
        states in 2usize..=6,
        seed in any::<u64>(),
    ) {
        let table = random_machine("prop", pi, 1, states, seed).unwrap();
        let uios = derive_uios(&table, table.num_state_vars());
        let set = generate(&table, &uios, &GenConfig {
            uio_len_cap: Some(0),
            transfer_max_len: 1,
        });
        prop_assert_eq!(set.tests.len(), table.num_transitions());
        prop_assert!(set.tests.iter().all(|t| t.len() == 1));
    }
}
