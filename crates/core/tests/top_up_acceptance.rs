//! Acceptance test for the coverage top-up flow across the MCNC suite.
//!
//! On every benchmark within the gate-level size budget, `top_up` must
//! reach 100% coverage of the non-redundant collapsed stuck-at faults at
//! the default decision budget with zero aborts, every ATPG-generated
//! pattern must detect its recorded target fault in the fault-parallel
//! `FaultEngine`, and one straight simulation of the combined test set must
//! detect exactly the non-redundant faults.

use scanft_core::generate::{generate, GenConfig};
use scanft_core::top_up::{top_up, TopUpConfig};
use scanft_fsm::benchmarks::{self, CIRCUITS};
use scanft_fsm::uio;
use scanft_sim::campaign;
use scanft_sim::faults::{self, Fault};
use scanft_synth::{synthesize, SynthConfig};

/// The bench harness's gate-level budget (scanft-bench depends on this
/// crate, so the bound is restated rather than imported): small enough that
/// the whole suite simulates in seconds, large enough to span 20+ machines.
fn within_gate_level_budget(spec: &benchmarks::CircuitSpec) -> bool {
    spec.num_inputs + spec.num_state_vars <= 10 && spec.num_transitions() <= 1024
}

/// Fast default sweep: the budgeted benchmarks small enough for debug-mode
/// fault simulation. The release-mode `coverage_topup` bench binary and the
/// ignored test below cover the full gate-level budget.
#[test]
fn top_up_completes_small_mcnc_benchmarks() {
    run_acceptance(|spec| within_gate_level_budget(spec) && spec.num_transitions() <= 64);
}

/// Full budgeted sweep — debug-mode minutes, so opt-in:
/// `cargo test -p scanft-core --test top_up_acceptance -- --ignored`.
#[test]
#[ignore = "several minutes in debug; covered in release by the coverage_topup binary"]
fn top_up_completes_every_budgeted_mcnc_benchmark() {
    run_acceptance(within_gate_level_budget);
}

fn run_acceptance(filter: impl Fn(&benchmarks::CircuitSpec) -> bool) {
    let mut ran = 0usize;
    for spec in CIRCUITS.iter().filter(|s| filter(s)) {
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let uios = uio::derive_uios(&table, table.num_state_vars());
        let set = generate(&table, &uios, &GenConfig::default());
        let circuit = synthesize(&table, &SynthConfig::default());
        let outcome = top_up(&circuit, &set, &TopUpConfig::default());
        let report = &outcome.report;

        // 100% of non-redundant faults within the decision budget.
        assert_eq!(report.aborted(), 0, "{}: aborted faults", spec.name);
        assert!(
            report.is_complete(),
            "{}: {} of {} faults unresolved",
            spec.name,
            report.faults.len() - report.detected() - report.proven_redundant(),
            report.faults.len()
        );
        assert!(
            (report.effective_coverage_percent() - 100.0).abs() < 1e-9,
            "{}: effective coverage {:.4}%",
            spec.name,
            report.effective_coverage_percent()
        );

        // Every ATPG pattern detects its recorded target in the engine.
        assert_eq!(report.pattern_targets.len(), outcome.atpg_patterns().len());
        for (pattern, target) in outcome.atpg_patterns().iter().zip(&report.pattern_targets) {
            let single = campaign::run(
                circuit.netlist(),
                std::slice::from_ref(pattern),
                &[Fault::Stuck(*target)],
            );
            assert!(
                single.detecting_test[0].is_some(),
                "{}: pattern misses its target {}",
                spec.name,
                Fault::Stuck(*target).describe(circuit.netlist())
            );
        }

        // The combined set, simulated from scratch, detects exactly the
        // testable faults (everything but the search-proven-redundant and
        // statically-untestable ones).
        let final_report = campaign::run(
            circuit.netlist(),
            &outcome.tests,
            &faults::as_fault_list(&report.faults),
        );
        assert_eq!(
            final_report.detected(),
            report.faults.len() - report.proven_redundant() - report.statically_untestable(),
            "{}: straight resimulation disagrees",
            spec.name
        );
        ran += 1;
    }
    assert!(ran >= 10, "only {ran} benchmarks within budget");
}
