//! Artifact-cache correctness over the real HTTP path.
//!
//! The contract under test: the cache key covers the full canonical
//! circuit and nothing else. Same circuit twice → second submission is a
//! hit with *bit-identical* campaign results (same journal bytes, same
//! coverage); same circuit under a different upload name → still a hit;
//! one mutated transition output → a miss with a different key.

#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::time::Duration;

use scanft_server::{Client, JobKind, Server, ServerConfig};

fn start_server(tag: &str) -> Server {
    let dir =
        std::env::temp_dir().join(format!("scanft-server-cache-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        // One supervisor thread → deterministic unit completion order →
        // byte-identical journals for identical submissions.
        campaign_threads: 1,
        journal_dir: dir.to_string_lossy().into_owned(),
        ..ServerConfig::default()
    })
    .unwrap()
}

const WAIT: Duration = Duration::from_secs(120);

#[test]
fn repeat_submission_hits_and_reproduces_the_campaign_bit_for_bit() {
    let server = start_server("repeat");
    let client = Client::new(server.addr());
    let kiss = scanft_fsm::kiss::write(&scanft_fsm::benchmarks::build("bbtas").unwrap());

    let first = client
        .submit(&kiss, "bbtas", "default", JobKind::Simulate)
        .unwrap();
    let first = client.wait(&first.id, WAIT).unwrap();
    assert_eq!(first.status, "completed");
    assert_eq!(first.cache.as_deref(), Some("miss"), "cold cache");

    let second = client
        .submit(&kiss, "bbtas", "default", JobKind::Simulate)
        .unwrap();
    let second = client.wait(&second.id, WAIT).unwrap();
    assert_eq!(second.status, "completed");
    assert_eq!(second.cache.as_deref(), Some("hit"), "warm cache");

    // Identical results, not merely similar ones.
    assert_eq!(first.key, second.key);
    assert_eq!(first.coverage, second.coverage);
    assert_eq!(first.detected, second.detected);
    assert_eq!(first.faults, second.faults);
    assert_eq!(first.units, second.units);

    // Bit-identical journals: the served campaign is a pure function of
    // the circuit, so two runs write the same bytes (different paths).
    let journal1 = std::fs::read(first.journal.as_deref().unwrap()).unwrap();
    let journal2 = std::fs::read(second.journal.as_deref().unwrap()).unwrap();
    assert!(!journal1.is_empty());
    assert_eq!(journal1, journal2, "journal bytes must match exactly");

    // The events stream replays exactly the journal's lines.
    let streamed = client.events(&second.id).unwrap();
    let on_disk: Vec<String> = String::from_utf8(journal2)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(streamed, on_disk, "streamed events mirror the journal");

    server.shutdown();
}

#[test]
fn key_covers_content_not_names_and_misses_on_mutation() {
    let server = start_server("mutate");
    let client = Client::new(server.addr());
    let kiss = scanft_fsm::kiss::write(&scanft_fsm::benchmarks::build("dk27").unwrap());

    let original = client
        .submit(&kiss, "dk27", "default", JobKind::Simulate)
        .unwrap();
    let original = client.wait(&original.id, WAIT).unwrap();
    assert_eq!(original.cache.as_deref(), Some("miss"));

    // Same content uploaded under a different name: the key must not see
    // the name, so this is a hit on the same entry.
    let renamed = client
        .submit(
            &kiss,
            "totally-different-upload.kiss2",
            "default",
            JobKind::Simulate,
        )
        .unwrap();
    let renamed = client.wait(&renamed.id, WAIT).unwrap();
    assert_eq!(
        renamed.cache.as_deref(),
        Some("hit"),
        "name-independent key"
    );
    assert_eq!(renamed.key, original.key);

    // Flip one output bit of the last transition: a semantically different
    // machine must get a different key and rebuild its artifacts.
    let mut lines: Vec<String> = kiss.lines().map(str::to_owned).collect();
    let target = lines
        .iter()
        .rposition(|l| !l.starts_with('.') && !l.starts_with('#') && !l.is_empty())
        .expect("a transition line");
    let mut flipped = lines[target].clone();
    let last = flipped.pop().unwrap();
    flipped.push(if last == '0' { '1' } else { '0' });
    lines[target] = flipped;
    let mutated = lines.join("\n") + "\n";

    let mutant = client
        .submit(&mutated, "dk27", "default", JobKind::Simulate)
        .unwrap();
    let mutant = client.wait(&mutant.id, WAIT).unwrap();
    assert_eq!(mutant.status, "completed");
    assert_eq!(
        mutant.cache.as_deref(),
        Some("miss"),
        "one changed gate of behaviour must not reuse cached artifacts"
    );
    assert_ne!(mutant.key, original.key);

    server.shutdown();
}

#[test]
fn atpg_jobs_share_the_cached_analysis() {
    let server = start_server("atpg");
    let client = Client::new(server.addr());
    let kiss = scanft_fsm::kiss::write(&scanft_fsm::benchmarks::build("lion").unwrap());

    let simulate = client
        .submit(&kiss, "lion", "default", JobKind::Simulate)
        .unwrap();
    let simulate = client.wait(&simulate.id, WAIT).unwrap();
    assert_eq!(simulate.cache.as_deref(), Some("miss"));

    // The ATPG job reuses the simulate job's artifact entry (hit) and
    // completes with full coverage on lion's collapsed fault set.
    let atpg = client
        .submit(&kiss, "lion", "default", JobKind::Atpg)
        .unwrap();
    let atpg = client.wait(&atpg.id, WAIT).unwrap();
    assert_eq!(atpg.status, "completed", "{:?}", atpg.message);
    assert_eq!(atpg.cache.as_deref(), Some("hit"));
    assert!(atpg.coverage.unwrap() > 0.0);

    server.shutdown();
}
