//! Deterministic model checking of the `JobRegistry` protocol.
//!
//! Every sync op inside these closures routes through the `scanft-race`
//! virtual scheduler (the `model` dev-feature), so submit/claim,
//! cancel-vs-claim, and shutdown wakeup are checked across the whole
//! bounded schedule space instead of whatever interleaving the OS happens
//! to produce.
#![allow(clippy::unwrap_used)]

use scanft_race::model::{self, ModelConfig};
use scanft_race::sync::Arc;
use scanft_race::thread;
use scanft_server::{ContentKey, Job, JobKind, JobRegistry, JobSpec, JobStatus};

fn cfg() -> ModelConfig {
    ModelConfig {
        max_schedules: 1000,
        random_runs: 8,
        ..ModelConfig::default()
    }
}

fn job(id: String) -> Job {
    let table = scanft_fsm::benchmarks::build("lion").unwrap();
    Job::new(
        id,
        JobSpec {
            tenant: "model".to_owned(),
            circuit: "lion".to_owned(),
            kind: JobKind::Simulate,
            key: ContentKey::of_table(&table),
            table,
            tests: None,
            journal_path: String::new(),
        },
    )
}

#[test]
fn submit_claim_race_hands_out_each_job_exactly_once() {
    let report = model::check_named("registry-submit-claim", &cfg(), || {
        let registry = Arc::new(JobRegistry::new());
        let submitter = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || registry.admit(job).id.clone())
        };
        let claimer = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // The queue may be empty or full when the claimer runs;
                // claim blocks until the submit lands, in every schedule.
                registry.claim().map(|j| j.id.clone())
            })
        };
        let submitted = submitter.join().unwrap();
        let claimed = claimer.join().unwrap();
        assert_eq!(claimed.as_deref(), Some(submitted.as_str()));
        let fetched = registry.get(&submitted).unwrap();
        assert_eq!(fetched.status(), JobStatus::Running);
    });
    report.assert_ok();
    assert!(
        report.schedules >= 2,
        "expected >= 2 schedules, got {}",
        report.schedules
    );
}

#[test]
fn cancel_vs_claim_never_runs_a_cancelled_job_twice() {
    // A queued job is cancelled while a claimer races for it. In every
    // schedule the job ends either Running (claim won, cancel arrives for
    // the budget path) or Cancelled-and-skipped (cancel won) — never both,
    // and the claimer never returns a job whose cancel it already saw.
    let report = model::check_named("registry-cancel-claim", &cfg(), || {
        let registry = Arc::new(JobRegistry::new());
        let admitted = registry.admit(job);
        let canceller = {
            let cancel = admitted.cancel.clone();
            thread::spawn(move || cancel.cancel())
        };
        let claimer = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || registry.claim())
        };
        canceller.join().unwrap();
        // Shutdown releases a claimer that skipped the cancelled job and
        // went back to waiting on the (now empty) queue.
        registry.shutdown();
        match claimer.join().unwrap() {
            Some(running) => {
                assert_eq!(running.id, admitted.id);
                assert_eq!(running.status(), JobStatus::Running);
            }
            None => {
                // Either claim skipped the cancelled job, or shutdown beat
                // the claim to a still-queued job; never a running one.
                assert!(matches!(
                    admitted.status(),
                    JobStatus::Cancelled | JobStatus::Queued
                ));
            }
        }
    });
    report.assert_ok();
    assert!(report.schedules >= 2);
}

#[test]
fn drain_vs_claim_vs_late_cancel_never_loses_or_doubles_a_job() {
    // A queued job, two racing claimers, a drain request, and a late
    // cancel, across every bounded schedule. The invariants: at most one
    // claimer ever receives the job (no double execution); a job the
    // drain beat to the queue stays Queued or Cancelled — still in the
    // registry, never silently dropped (a real drain persists it in the
    // WAL for the next boot); and once drain is requested no further
    // claim can succeed.
    let report = model::check_named("registry-drain-claim-cancel", &cfg(), || {
        let registry = Arc::new(JobRegistry::new());
        let admitted = registry.admit(job);
        let claimers: Vec<_> = (0..2)
            .map(|_| {
                let registry = Arc::clone(&registry);
                thread::spawn(move || registry.claim().map(|j| j.id.clone()))
            })
            .collect();
        let drainer = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || registry.drain())
        };
        let canceller = {
            let cancel = admitted.cancel.clone();
            thread::spawn(move || cancel.cancel())
        };
        drainer.join().unwrap();
        canceller.join().unwrap();
        let winners: Vec<String> = claimers
            .into_iter()
            .filter_map(|c| c.join().unwrap())
            .collect();
        assert!(winners.len() <= 1, "job claimed twice: {winners:?}");
        match winners.first() {
            Some(id) => {
                assert_eq!(id, &admitted.id);
                assert_eq!(admitted.status(), JobStatus::Running);
            }
            None => {
                // Unclaimed: still accounted for, ready to be re-queued
                // by recovery or terminally cancelled — never vanished.
                assert!(matches!(
                    admitted.status(),
                    JobStatus::Queued | JobStatus::Cancelled
                ));
            }
        }
        assert!(registry.get(&admitted.id).is_some(), "job never vanishes");
        // Drain is in effect by now: claims fail fast, in every schedule.
        assert!(registry.claim().is_none());
    });
    report.assert_ok();
    assert!(report.schedules >= 2);
    assert!(
        report.failure.is_none(),
        "no schedule may lose or double a job"
    );
}

#[test]
fn drain_wakes_a_blocked_claimer_in_every_schedule() {
    // Same missed-wakeup shape as shutdown, for the drain flag: a claimer
    // blocked on an empty queue must observe a concurrent drain and
    // return None rather than sleep forever.
    let report = model::check_named("registry-drain-wakeup", &cfg(), || {
        let registry = Arc::new(JobRegistry::new());
        let claimer = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || registry.claim())
        };
        let drainer = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || registry.drain())
        };
        drainer.join().unwrap();
        assert!(claimer.join().unwrap().is_none());
    });
    report.assert_ok();
    assert!(report.schedules >= 2);
    assert!(
        report.failure.is_none(),
        "no schedule may lose the drain wakeup"
    );
}

#[test]
fn shutdown_wakes_a_blocked_claimer_in_every_schedule() {
    // The classic missed-wakeup shape: a claimer blocks on an empty queue
    // while shutdown flips the flag and notifies. If claim checked the
    // flag before waiting without re-checking under the lock, the model
    // would find the lost notification as a deadlock.
    let report = model::check_named("registry-shutdown-wakeup", &cfg(), || {
        let registry = Arc::new(JobRegistry::new());
        let claimer = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || registry.claim())
        };
        let stopper = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || registry.shutdown())
        };
        stopper.join().unwrap();
        assert!(claimer.join().unwrap().is_none());
    });
    report.assert_ok();
    assert!(report.schedules >= 2);
    assert!(report.failure.is_none(), "no schedule may lose the wakeup");
}
