//! Seeded real-thread stress test for the `JobRegistry` (the satellite to
//! the deterministic model tests in `model_registry.rs`): N submitters,
//! claimers and cancellers hammer one registry with SplitMix64-derived
//! per-thread behavior, and the invariants the model proves on small
//! instances are asserted at scale on real OS scheduling:
//!
//! - no job is ever claimed twice;
//! - a job cancelled while still queued is never handed to a worker;
//! - when the dust settles, every job is terminal and the per-tenant
//!   active count (the quota input) is back to zero.
#![allow(clippy::unwrap_used)]

use std::collections::HashSet;

use scanft_race::sync::{Arc, AtomicBool, Mutex, Ordering};
use scanft_race::thread;
use scanft_server::{ContentKey, Job, JobKind, JobRegistry, JobSpec, JobStatus};

/// SplitMix64: the workspace's standard seeded generator, re-derived here
/// because the test needs per-thread deterministic streams, not `rand`.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn job(id: String, tenant: &str) -> Job {
    let table = scanft_fsm::benchmarks::build("lion").unwrap();
    Job::new(
        id,
        JobSpec {
            tenant: tenant.to_owned(),
            circuit: "lion".to_owned(),
            kind: JobKind::Simulate,
            key: ContentKey::of_table(&table),
            table,
            tests: None,
            journal_path: String::new(),
        },
    )
}

#[test]
fn seeded_submit_claim_cancel_storm_preserves_invariants() {
    const SUBMITTERS: usize = 3;
    const CLAIMERS: usize = 3;
    const JOBS_PER_SUBMITTER: usize = 40;
    const SEED: u64 = 0x5ca1_ab1e_0000_0009;

    let registry = Arc::new(JobRegistry::new());
    let submitted: Arc<Mutex<Vec<Arc<Job>>>> = Arc::new(Mutex::new(Vec::new()));
    let claimed_ids: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let done_submitting = Arc::new(AtomicBool::new(false));

    thread::scope(|s| {
        for submitter in 0..SUBMITTERS {
            let registry = Arc::clone(&registry);
            let submitted = Arc::clone(&submitted);
            s.spawn(move || {
                let mut rng = SplitMix64::new(SEED ^ ((submitter as u64) << 8));
                for _ in 0..JOBS_PER_SUBMITTER {
                    let tenant = format!("t{}", rng.next_u64() % 2);
                    let admitted = registry.admit(|id| job(id, &tenant));
                    // Roughly a third of submissions are cancelled while
                    // (possibly still) queued — the canceller role.
                    if rng.next_u64().is_multiple_of(3) {
                        admitted.cancel.cancel();
                    }
                    submitted.lock().push(admitted);
                    if rng.next_u64().is_multiple_of(4) {
                        thread::yield_now();
                    }
                }
            });
        }
        for _ in 0..CLAIMERS {
            let registry = Arc::clone(&registry);
            let claimed_ids = Arc::clone(&claimed_ids);
            s.spawn(move || {
                while let Some(running) = registry.claim() {
                    // The claim contract: a handed-out job was not
                    // cancelled while queued; claim marked it Running.
                    assert_eq!(running.status(), JobStatus::Running);
                    claimed_ids.lock().push(running.id.clone());
                    running.set_status(JobStatus::Completed {
                        coverage: 100.0,
                        detected: 0,
                        faults: 0,
                        completed_units: 0,
                        units: 0,
                    });
                }
            });
        }
        // Drain: once all submitters finish, shut the registry down so the
        // claimers exit after emptying the queue. `shutdown` makes claim
        // return None immediately, so spin-wait for an empty backlog first.
        let registry = Arc::clone(&registry);
        let submitted = Arc::clone(&submitted);
        let done = Arc::clone(&done_submitting);
        s.spawn(move || {
            let total = SUBMITTERS * JOBS_PER_SUBMITTER;
            loop {
                let jobs = submitted.lock();
                let all_in = jobs.len() == total;
                let backlog = jobs
                    .iter()
                    .any(|j| matches!(j.status(), JobStatus::Queued | JobStatus::Running));
                drop(jobs);
                if all_in && !backlog {
                    break;
                }
                thread::yield_now();
            }
            done.store(true, Ordering::Release);
            registry.shutdown();
        });
    });
    assert!(done_submitting.load(Ordering::Acquire));

    let submitted = submitted.lock();
    let claimed_ids = claimed_ids.lock();
    assert_eq!(submitted.len(), SUBMITTERS * JOBS_PER_SUBMITTER);

    // No job claimed twice.
    let unique: HashSet<&String> = claimed_ids.iter().collect();
    assert_eq!(unique.len(), claimed_ids.len(), "a job was claimed twice");

    // Every job is terminal, and cancelled-while-queued jobs never ran.
    let claimed_set: HashSet<&str> = claimed_ids.iter().map(String::as_str).collect();
    for job in submitted.iter() {
        let status = job.status();
        assert!(status.is_terminal(), "job {} ended {:?}", job.id, status);
        if status == JobStatus::Cancelled {
            assert!(
                !claimed_set.contains(job.id.as_str()),
                "cancelled-while-queued job {} was handed to a worker",
                job.id
            );
        }
    }

    // Quota accounting returns to zero for every tenant.
    assert_eq!(registry.active_for("t0"), 0);
    assert_eq!(registry.active_for("t1"), 0);
    assert_eq!(registry.active_for("default"), 0);
}
