//! Pinned golden schema for the `server.*` observability surface.
//!
//! Lives alone in its own integration-test binary: the `scanft-obs`
//! registry is process-global, so only a test file with exactly one
//! scripted interaction sequence has deterministic counter values.
//!
//! The script: one malformed submission (rejected), one cold submission
//! (miss, completed), one duplicate of the cold job while it is active
//! (deduped onto it by content hash), one cancelled-while-queued job from
//! a second tenant (distinct tenant so content-hash dedup cannot merge it
//! with the active cold job), one warm submission (hit, completed), one
//! events stream. Every `server.*` counter value below is a consequence
//! of exactly that script.

#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::time::Duration;

use scanft_server::{Client, JobKind, Server, ServerConfig};

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_owned())
}

#[test]
fn server_metrics_schema_and_values_are_pinned() {
    let dir = std::env::temp_dir().join(format!("scanft-server-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        campaign_threads: 1,
        journal_dir: dir.to_string_lossy().into_owned(),
        // Delay-only chaos slows each work unit, holding the queue busy
        // long enough to cancel a queued job deterministically.
        chaos_seed: Some(11),
        ..ServerConfig::default()
    })
    .unwrap();
    let client = Client::new(server.addr());
    let wait = Duration::from_secs(120);
    let kiss = scanft_fsm::kiss::write(&scanft_fsm::benchmarks::build("bbtas").unwrap());

    // 1. One malformed submission → server.jobs.rejected.
    let refused = client.submit("not kiss2 at all\n", "bad", "default", JobKind::Simulate);
    assert!(refused.is_err());

    // 2. Cold submission → cache miss; it occupies the single worker.
    let cold = client
        .submit(&kiss, "bbtas", "default", JobKind::Simulate)
        .unwrap();

    // 3. The same content from the same tenant while the cold job is
    //    active → deduped onto it, not run twice.
    let duplicate = client
        .submit(&kiss, "bbtas", "default", JobKind::Simulate)
        .unwrap();
    assert_eq!(duplicate.id, cold.id, "active duplicate dedupes");

    // 4. A job cancelled while still queued behind the cold one. A
    //    different tenant, so the content-hash key cannot merge it with
    //    the active cold job.
    let doomed = client
        .submit(&kiss, "bbtas", "doomed", JobKind::Simulate)
        .unwrap();
    assert_ne!(doomed.id, cold.id, "tenants do not share dedup keys");
    client.cancel(&doomed.id).unwrap();

    let cold = client.wait(&cold.id, wait).unwrap();
    assert_eq!(cold.status, "completed");
    let doomed = client.wait(&doomed.id, wait).unwrap();
    assert_eq!(doomed.status, "cancelled");

    // 5. Warm submission → cache hit (the cold job is terminal, so the
    //    content-hash dedup entry has lapsed and this runs fresh).
    let warm = client
        .submit(&kiss, "bbtas", "default", JobKind::Simulate)
        .unwrap();
    assert_ne!(
        warm.id, cold.id,
        "terminal jobs do not absorb resubmissions"
    );
    let warm = client.wait(&warm.id, wait).unwrap();
    assert_eq!(warm.status, "completed");

    // 6. Stream the warm job's journal → server.bytes_streamed.
    let events = client.events(&warm.id).unwrap();
    assert!(!events.is_empty());

    let metrics = client.metrics().unwrap();
    let mut counters = std::collections::BTreeMap::new();
    let mut timers = Vec::new();
    for line in metrics.lines().filter(|l| l.contains("\"name\":\"server.")) {
        let name = field_str(line, "name").unwrap();
        match field_str(line, "kind").unwrap().as_str() {
            "counter" | "gauge" => {
                counters.insert(name, field_u64(line, "value").unwrap());
            }
            "timer" => {
                // `Timer::stats` snapshots every field under the writer
                // lock, so an exported timer line can never tear: the
                // decade buckets must sum to exactly `count`.
                let count = field_u64(line, "count").unwrap();
                let key = "\"buckets\":[";
                let start = line.find(key).unwrap() + key.len();
                let end = start + line[start..].find(']').unwrap();
                let sum: u64 = line[start..end]
                    .split(',')
                    .map(|b| b.trim().parse::<u64>().unwrap())
                    .sum();
                assert_eq!(sum, count, "torn timer snapshot in {line}");
                timers.push((name, count));
            }
            other => panic!("unknown kind `{other}` in {line}"),
        }
    }

    // The pinned script outcome. A schema change here is a deliberate,
    // reviewed event — update the script comment above alongside it.
    let expected: &[(&str, u64)] = &[
        ("server.jobs.accepted", 3),
        ("server.jobs.deduped", 1),
        ("server.jobs.rejected", 1),
        ("server.jobs.completed", 2),
        ("server.jobs.cancelled", 1),
        ("server.cache.hits", 1),
        ("server.cache.misses", 1),
        ("server.queue.depth", 0),
    ];
    for &(name, value) in expected {
        assert_eq!(counters.get(name), Some(&value), "{name}: got {counters:?}");
    }
    let streamed = counters.get("server.bytes_streamed").copied().unwrap();
    assert!(streamed > 0, "events streaming counts bytes");

    assert_eq!(
        timers,
        vec![("server.cache.build".to_owned(), 1)],
        "one artifact build for one distinct circuit"
    );

    server.shutdown();
}
