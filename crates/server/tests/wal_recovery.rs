//! Property test: WAL recovery over randomly damaged tails.
//!
//! The durability contract is that a crash can damage at most the line
//! being appended, and that reading the damaged file recovers *exactly*
//! the state of the longest valid prefix — nothing dropped before the
//! tear, nothing invented after it. This drives that property over a few
//! hundred seeded random cuts: truncate the WAL at an arbitrary byte
//! offset (optionally appending a garbage tail, the shape a torn
//! half-append leaves behind), and assert the parsed events and the
//! replayed per-job state equal those of the intact-line prefix.

#![cfg_attr(test, allow(clippy::unwrap_used))]

use scanft_fsm::rng::SplitMix64;
use scanft_server::{read_wal, replay, JobKind, JobStatus, WalAdmit, WalEvent, WalWriter};

fn admit(n: u64, sticky: bool) -> WalAdmit {
    WalAdmit {
        id: format!("job-{n}"),
        tenant: if n.is_multiple_of(2) { "even" } else { "odd" }.to_owned(),
        circuit: format!("circ-{n}"),
        kind: if n.is_multiple_of(3) {
            JobKind::Atpg
        } else {
            JobKind::Simulate
        },
        idem: format!("key \"{n}\"\twith\nescapes"),
        sticky,
        journal_path: format!("/tmp/job-{n}.jsonl"),
        // Multi-line content with every escape class the journal format
        // handles, so a cut can land inside escaped text.
        kiss: format!(".i 2\n.o 1\n.p {n}\n-- s0 s1 0\n\"quoted\"\tand\\back\n"),
        tests: n
            .is_multiple_of(2)
            .then(|| format!(".circuit circ-{n}\na | 0{n} | b\n")),
    }
}

/// Builds a WAL file with a realistic mixed event sequence and returns its
/// raw text.
fn build_wal(path: &str) -> String {
    std::fs::remove_file(path).ok();
    let wal = WalWriter::open(path).unwrap();
    for n in 1..=6u64 {
        wal.log_admit(&admit(n, n % 2 == 1)).unwrap();
    }
    wal.log_claim("job-1").unwrap();
    wal.log_claim("job-2").unwrap();
    wal.log_cancel("job-3").unwrap();
    wal.log_done(
        "job-1",
        &JobStatus::Completed {
            coverage: 97.25,
            detected: 389,
            faults: 400,
            completed_units: 7,
            units: 7,
        },
    )
    .unwrap();
    wal.log_done("job-3", &JobStatus::Cancelled).unwrap();
    wal.log_done("job-2", &JobStatus::Failed("boom \"quoted\"\nline".into()))
        .unwrap();
    wal.log_claim("job-4").unwrap();
    std::fs::read_to_string(path).unwrap()
}

/// The longest prefix of `text[..cut]` made of complete lines: every line
/// whose content ends at or before the cut survives whole.
fn intact_prefix(text: &str, cut: usize) -> String {
    let mut kept = String::new();
    let mut offset = 0;
    for line in text.lines() {
        let end = offset + line.len();
        if end > cut {
            break;
        }
        kept.push_str(line);
        kept.push('\n');
        offset = end + 1; // the '\n'
    }
    kept
}

#[test]
fn recovery_from_random_tail_damage_equals_the_longest_valid_prefix() {
    let path = std::env::temp_dir()
        .join(format!("scanft-wal-prop-{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let text = build_wal(&path);
    std::fs::remove_file(&path).ok();
    let header_end = text.find('\n').unwrap();
    let mut rng = SplitMix64::new(0x77a1_7e57);

    for case in 0..400u64 {
        // Cut anywhere from "just the header" to "nothing lost".
        let span = (text.len() - header_end) as u64;
        let cut = header_end + usize::try_from(rng.next_below(span + 1)).unwrap();
        let mut damaged = text[..cut].to_owned();
        // Half the cases also carry a garbage tail: the bytes a torn
        // half-append leaves after the truncation point.
        if rng.chance(1, 2) {
            damaged.push_str("{\"event\":\"adm\x01it\",garbage");
        }

        let torn = read_wal(&damaged);
        let expected = read_wal(&intact_prefix(&text, cut));
        assert!(torn.header_ok, "case {case}: header survives every cut");
        assert_eq!(
            torn.events, expected.events,
            "case {case} (cut {cut}): recovered events differ from the intact prefix"
        );
        assert!(
            torn.skipped_lines <= 1,
            "case {case}: a single tear damages at most one line, got {}",
            torn.skipped_lines
        );

        let torn_state = replay(&torn);
        let expected_state = replay(&expected);
        assert_eq!(
            format!("{torn_state:?}"),
            format!("{expected_state:?}"),
            "case {case} (cut {cut}): replayed job state diverges"
        );
        // next_id never runs backwards past the admitted prefix, so the
        // restarted server can only assign fresh ids.
        assert_eq!(torn_state.next_id, expected_state.next_id, "case {case}");
    }
}

/// The append-after-damage half of the durability contract: restarting on
/// a torn WAL must first truncate the fragment, so post-restart events
/// land on fresh lines and the *next* replay still equals the intact
/// prefix plus exactly the new events. Without the truncation the first
/// new event merges with the fragment and is lost — and its later events
/// become orphans that refuse startup forever.
#[test]
fn appending_after_random_tail_damage_preserves_prefix_plus_new_events() {
    let path = std::env::temp_dir()
        .join(format!("scanft-wal-prop-append-{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let text = build_wal(&path);
    let header_end = text.find('\n').unwrap();
    let mut rng = SplitMix64::new(0x5eed_ba5e);

    for case in 0..200u64 {
        let span = (text.len() - header_end) as u64;
        let cut = header_end + usize::try_from(rng.next_below(span + 1)).unwrap();
        let mut damaged = text[..cut].to_owned();
        if rng.chance(1, 2) {
            damaged.push_str("{\"event\":\"adm\x01it\",garbage");
        }
        std::fs::write(&path, &damaged).unwrap();
        // The binding invariant: `recover()` replays `read_wal` of the
        // damaged file, so reopening must preserve *exactly* those events
        // — truncating more would delete restored events from disk,
        // truncating less would fuse the fragment with the next append.
        let expected = read_wal(&damaged);

        // Restart: reopen the damaged WAL and acknowledge new work.
        {
            let wal = WalWriter::open(&path).unwrap();
            wal.log_admit(&admit(90, false)).unwrap();
            wal.log_claim("job-90").unwrap();
        }
        let reopened = read_wal(&std::fs::read_to_string(&path).unwrap());
        assert!(reopened.header_ok, "case {case}");
        assert_eq!(
            reopened.skipped_lines, 0,
            "case {case} (cut {cut}): the torn fragment must be truncated away"
        );
        let mut want = expected.events.clone();
        want.push(WalEvent::Admit(admit(90, false)));
        want.push(WalEvent::Claim("job-90".to_owned()));
        assert_eq!(
            reopened.events, want,
            "case {case} (cut {cut}): prefix + new events, nothing fused or lost"
        );
        assert_eq!(replay(&reopened).orphan_events, 0, "case {case}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn full_file_replays_every_job_with_its_final_state() {
    let path = std::env::temp_dir()
        .join(format!("scanft-wal-prop-full-{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let text = build_wal(&path);
    std::fs::remove_file(&path).ok();
    let state = replay(&read_wal(&text));
    assert_eq!(state.jobs.len(), 6);
    assert_eq!(state.next_id, 6);
    assert_eq!(state.orphan_events, 0);
    // Admit payloads round-trip byte-exact through escaping.
    for (i, job) in state.jobs.iter().enumerate() {
        assert_eq!(job.admit, admit(i as u64 + 1, (i as u64 + 1) % 2 == 1));
    }
    assert!(state.jobs[0].claimed);
    assert!(matches!(
        state.jobs[0].done,
        Some(JobStatus::Completed { detected: 389, .. })
    ));
    assert!(matches!(state.jobs[1].done, Some(JobStatus::Failed(ref m)) if m.contains('\n')));
    assert!(state.jobs[2].cancelled);
    assert_eq!(state.jobs[2].done, Some(JobStatus::Cancelled));
    assert!(state.jobs[3].claimed && state.jobs[3].done.is_none());
    assert!(!state.jobs[4].claimed && !state.jobs[5].claimed);
}

#[test]
fn mid_file_damage_that_orphans_events_refuses_to_start() {
    // A torn tail damages only the last line; a claim whose admit line is
    // gone means a record *mid-file* was destroyed — acknowledged work
    // would silently vanish, so startup must fail with the recovery code
    // (exit 9) instead of serving.
    let root = std::env::temp_dir().join(format!("scanft-wal-orphan-{}", std::process::id()));
    let state_dir = root.join("state");
    std::fs::create_dir_all(&state_dir).unwrap();
    std::fs::write(
        state_dir.join("jobs.wal"),
        "{\"wal\":\"scanft-server\",\"version\":1}\n\
         {\"event\":\"admit\",\"id\":\"job-1\",\"broken\":true}\n\
         {\"event\":\"claim\",\"id\":\"job-1\"}\n",
    )
    .unwrap();
    let err = scanft_server::Server::start(scanft_server::ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        journal_dir: root.join("journals").to_string_lossy().into_owned(),
        state_dir: Some(state_dir.to_string_lossy().into_owned()),
        ..scanft_server::ServerConfig::default()
    })
    .unwrap_err();
    assert_eq!(err.exit_code(), 9, "{err}");
    assert!(err.to_string().contains("torn tail"), "{err}");
    std::fs::remove_dir_all(&root).ok();
}
