//! Protocol conformance: the server's refusal paths, pinned.
//!
//! Each case drives a real `Server` over a real socket — the same code
//! path production traffic takes — and asserts both the HTTP status and
//! the structured error body. The taxonomy cases additionally pin the
//! `code` field to the CLI exit code, which is the contract that lets a
//! client treat API errors and local `scanft` failures uniformly.

#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use scanft_server::{Server, ServerConfig, TenantQuota};

fn temp_dir(tag: &str) -> String {
    let dir =
        std::env::temp_dir().join(format!("scanft-server-proto-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.to_string_lossy().into_owned()
}

fn start(tag: &str, mutate: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        campaign_threads: 1,
        read_timeout: Duration::from_secs(2),
        journal_dir: temp_dir(tag),
        ..ServerConfig::default()
    };
    mutate(&mut config);
    Server::start(config).unwrap()
}

/// One raw HTTP exchange; returns (status, head, body).
fn raw_full(server: &Server, request: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("full response");
    let status = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, head.to_owned(), body.to_owned())
}

/// One raw HTTP exchange; returns (status, body).
fn raw(server: &Server, request: &[u8]) -> (u16, String) {
    let (status, _, body) = raw_full(server, request);
    (status, body)
}

#[test]
fn oversized_body_is_413_before_the_body_is_read() {
    let server = start("413", |c| c.max_body_bytes = 64);
    // Declare a huge body but never send it: the server must refuse on the
    // Content-Length alone instead of waiting for bytes.
    let (status, body) = raw(
        &server,
        b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 1048576\r\n\r\n",
    );
    assert_eq!(status, 413);
    assert!(body.contains("\"class\":\"http\""), "{body}");
    assert!(body.contains("exceeds the 64-byte limit"), "{body}");
    server.shutdown();
}

#[test]
fn malformed_kiss2_is_the_fsm_taxonomy_code() {
    let server = start("fsm", |_| {});
    let garbage = ".i 1\n.o 1\nthis is not a kiss2 transition line\n";
    let request = format!(
        "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{garbage}",
        garbage.len()
    );
    let (status, body) = raw(&server, request.as_bytes());
    assert_eq!(status, 400);
    // Exactly the `scanft` exit-code numbering: fsm failures are code 3.
    assert!(body.contains("\"code\":3"), "{body}");
    assert!(body.contains("\"class\":\"fsm\""), "{body}");
    server.shutdown();
}

#[test]
fn malformed_test_section_is_the_test_format_taxonomy_code() {
    let server = start("tests", |_| {});
    let kiss = scanft_fsm::kiss::write(&scanft_fsm::benchmarks::build("lion").unwrap());
    let body = format!("{kiss}.tests\n.circuit lion\nnot | a | test | line | at all\n");
    let request = format!(
        "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, response) = raw(&server, request.as_bytes());
    assert_eq!(status, 400);
    assert!(response.contains("\"code\":7"), "{response}");
    assert!(response.contains("\"class\":\"test-format\""), "{response}");
    server.shutdown();
}

#[test]
fn unknown_routes_are_404() {
    let server = start("404", |_| {});
    let (status, body) = raw(&server, b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 404);
    assert!(body.contains("\"class\":\"http\""), "{body}");

    let (status, _) = raw(&server, b"GET /jobs/job-999 HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 404, "unknown job id");

    let (status, _) = raw(&server, b"PUT /jobs HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 404, "unsupported method on a known path");
    server.shutdown();
}

#[test]
fn stalled_connection_is_timed_out_with_408() {
    let server = start("408", |c| c.read_timeout = Duration::from_millis(100));
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Send half a request line and stall.
    stream.write_all(b"GET /jo").unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    server.shutdown();
}

#[test]
fn drain_flips_readiness_and_refuses_submissions_with_retry_after() {
    let server = start("drain", |_| {});

    // Healthy and ready before the drain.
    let (status, body) = raw(&server, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"draining\":false"), "{body}");
    let (status, _) = raw(&server, b"GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);

    // Request the drain.
    let (status, body) = raw(
        &server,
        b"POST /admin/drain HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"drain\":\"requested\""), "{body}");

    // Readiness flips to 503 with a Retry-After; liveness stays 200.
    let (status, head, _) = raw_full(&server, b"GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 503);
    assert!(head.contains("Retry-After:"), "{head}");
    let (status, body) = raw(&server, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("\"draining\":true"), "{body}");

    // New submissions are refused 503 + Retry-After, not half-accepted.
    let kiss = scanft_fsm::kiss::write(&scanft_fsm::benchmarks::build("lion").unwrap());
    let request = format!(
        "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{kiss}",
        kiss.len()
    );
    let (status, head, body) = raw_full(&server, request.as_bytes());
    assert_eq!(status, 503);
    assert!(head.contains("Retry-After:"), "{head}");
    assert!(body.contains("\"class\":\"unavailable\""), "{body}");
    server.shutdown();
}

#[test]
fn idempotency_key_duplicates_return_the_original_job() {
    let server = start("idem", |_| {});
    let kiss = scanft_fsm::kiss::write(&scanft_fsm::benchmarks::build("lion").unwrap());
    let request = format!(
        "POST /jobs HTTP/1.1\r\nHost: x\r\nIdempotency-Key: drill-1\r\nContent-Length: {}\r\n\r\n{kiss}",
        kiss.len()
    );
    let (status, body) = raw(&server, request.as_bytes());
    assert_eq!(status, 202, "{body}");
    let id = body
        .split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap()
        .to_owned();

    // Wait for the job to finish: a *sticky* key must keep mapping to the
    // original job even after it is terminal.
    let client = scanft_server::Client::new(server.addr());
    let done = client.wait(&id, Duration::from_secs(120)).unwrap();
    assert_eq!(done.status, "completed");

    let (status, body) = raw(&server, request.as_bytes());
    assert_eq!(status, 200, "duplicate answers 200, not 202: {body}");
    assert!(
        body.contains(&format!("\"id\":\"{id}\"")),
        "duplicate returns the original job: {body}"
    );
    assert!(body.contains("\"status\":\"completed\""), "{body}");
    server.shutdown();
}

#[test]
fn tenant_quota_rejects_with_429() {
    let server = start("429", |c| {
        c.quota = TenantQuota {
            max_active: 0,
            max_units: None,
        };
    });
    let kiss = scanft_fsm::kiss::write(&scanft_fsm::benchmarks::build("lion").unwrap());
    let request = format!(
        "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{kiss}",
        kiss.len()
    );
    let (status, body) = raw(&server, request.as_bytes());
    assert_eq!(status, 429);
    assert!(body.contains("\"class\":\"quota\""), "{body}");
    server.shutdown();
}
