//! Capped exponential backoff with seeded jitter, shared by the client's
//! retry layer and its status polling ([`Client::wait`]).
//!
//! The old `Client::wait` polled on a fixed 20 ms interval: cheap for one
//! caller, but N clients polling a busy server synchronize into thundering
//! herds, and a fixed interval retried failed submissions as fast as they
//! failed. Backoff here is the textbook shape — delay doubles per attempt
//! up to a cap, jittered uniformly over `[delay/2, delay]` — but the jitter
//! is drawn from the workspace's seeded SplitMix64, so any drill or test
//! that pins a seed replays the exact same retry schedule.
//!
//! [`Client::wait`]: crate::client::Client::wait

use std::time::Duration;

use scanft_fsm::rng::SplitMix64;

/// How a client call is retried: attempt count and backoff shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = no retry).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub cap: Duration,
    /// Seed for the jitter stream; a fixed seed replays the schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            seed: 0x5caf_f7e7,
        }
    }
}

impl RetryPolicy {
    /// The polling shape used by `Client::wait`: effectively unbounded
    /// attempts (the wait deadline bounds them), starting fast and backing
    /// off to a gentle cap so long campaigns are not hammered.
    #[must_use]
    pub fn polling() -> Self {
        RetryPolicy {
            max_retries: u32::MAX,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            seed: 0x5caf_f7e7,
        }
    }

    /// Overrides the jitter seed (drills pin this for replayable schedules).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Starts a backoff schedule under this policy.
    #[must_use]
    pub fn backoff(&self) -> Backoff {
        Backoff {
            policy: self.clone(),
            attempt: 0,
            rng: SplitMix64::new(self.seed),
        }
    }
}

/// An in-progress backoff schedule: each [`Backoff::next_delay`] yields the
/// jittered delay before the next retry, or `None` once the policy's
/// attempts are exhausted.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// Number of delays handed out so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The delay to sleep before the next retry: `min(cap, base << n)`
    /// jittered uniformly over `[delay/2, delay]`. Returns `None` when the
    /// policy's `max_retries` is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.policy.max_retries {
            return None;
        }
        let exp = self.attempt.min(30);
        self.attempt += 1;
        let raw = self
            .policy
            .base
            .saturating_mul(1u32 << exp)
            .min(self.policy.cap)
            .max(Duration::from_micros(1));
        let raw_micros = u64::try_from(raw.as_micros()).unwrap_or(u64::MAX);
        let half = raw_micros / 2;
        let jittered = half + self.rng.next_below(raw_micros - half + 1);
        Some(Duration::from_micros(jittered))
    }

    /// Like [`Backoff::next_delay`], but never shorter than `floor` — the
    /// shape used when the server sent `Retry-After: <seconds>`.
    pub fn next_delay_at_least(&mut self, floor: Duration) -> Option<Duration> {
        self.next_delay().map(|d| d.max(floor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let mut a = RetryPolicy::default().with_seed(7).backoff();
        let mut b = RetryPolicy::default().with_seed(7).backoff();
        for _ in 0..5 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
        assert!(a.next_delay().is_none(), "max_retries exhausts");
    }

    #[test]
    fn delays_grow_and_respect_the_cap() {
        let policy = RetryPolicy {
            max_retries: 20,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            seed: 3,
        };
        let mut backoff = policy.backoff();
        let delays: Vec<Duration> = std::iter::from_fn(|| backoff.next_delay()).collect();
        assert_eq!(delays.len(), 20);
        // Every delay is within [base/2, cap] and the tail saturates near
        // the cap (jitter keeps it in [cap/2, cap]).
        for d in &delays {
            assert!(*d >= Duration::from_millis(5), "{d:?}");
            assert!(*d <= Duration::from_millis(100), "{d:?}");
        }
        assert!(delays[19] >= Duration::from_millis(50));
        // Different seeds give a different schedule somewhere.
        let mut other = policy.with_seed(4).backoff();
        let other: Vec<Duration> = std::iter::from_fn(|| other.next_delay()).collect();
        assert_ne!(delays, other);
    }

    #[test]
    fn retry_after_floor_is_honored() {
        let mut backoff = RetryPolicy::default().with_seed(1).backoff();
        let floor = Duration::from_secs(3);
        let d = backoff.next_delay_at_least(floor).unwrap();
        assert!(d >= floor);
    }

    #[test]
    fn polling_policy_never_exhausts_soon() {
        let mut backoff = RetryPolicy::polling().backoff();
        for _ in 0..1000 {
            let d = backoff.next_delay().unwrap();
            assert!(d <= Duration::from_millis(200));
        }
    }
}
