//! The daemon: accept loop, campaign worker pool, and the route table.
//!
//! Threading model (all real threads via the `scanft-race` facade, no
//! async):
//!
//! - one **accept thread** takes connections off the `TcpListener` and
//!   spawns a short-lived **connection thread** per request (the server is
//!   strictly one-request-per-connection, `Connection: close`);
//! - a fixed pool of **job workers** blocks on the [`JobRegistry`] queue
//!   and drives one campaign at a time through
//!   [`scanft_sim::campaign::run_supervised`] (each campaign itself fans
//!   out over [`ServerConfig::campaign_threads`] supervisor workers);
//! - cancellation and shutdown are cooperative: `DELETE /jobs/:id` flips
//!   the job's [`CancelToken`](scanft_harness::CancelToken) and the
//!   campaign stops at its next work-unit claim via the ordinary
//!   [`Budget`] stop path.
//!
//! Submission body format for `POST /jobs`: a KISS2 circuit, optionally
//! followed by a line containing exactly `.tests` and then a functional
//! test set in `scanft_core::io` format. Without a test section the server
//! generates the paper's functional set (UIO-based, `scanft generate`
//! defaults) — so a bare KISS2 upload behaves like the one-shot CLI flow.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::time::Duration;

use scanft_race::sync::{Arc, AtomicBool, Ordering};
use scanft_race::thread;

use scanft_core::generate::{generate, GenConfig};
use scanft_core::top_up::{top_up_scan_with, TopUpConfig};
use scanft_fsm::kiss;
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use scanft_harness::{
    repair_journal, Budget, FailurePlan, JournalTailer, JournalWriter, ScanftError, StopReason,
};
use scanft_sim::campaign::{self, Kernel, SupervisedConfig};
use scanft_sim::ScanTest;

use crate::cache::{ArtifactCache, Artifacts};
use crate::hash::ContentKey;
use crate::http::{self, HttpError, Request};
use crate::job::{AdmitOutcome, Job, JobKind, JobRegistry, JobSpec, JobStatus, TenantQuota};
use crate::wal::{self, WalWriter};

/// Marker line separating the KISS2 section from the test section in a
/// `POST /jobs` body.
pub const TESTS_MARKER: &str = ".tests";

/// Everything tunable about a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Number of job workers (concurrent campaigns).
    pub workers: usize,
    /// Supervisor threads *per campaign*.
    pub campaign_threads: usize,
    /// Maximum `POST /jobs` body size in bytes (413 beyond).
    pub max_body_bytes: usize,
    /// Per-socket read timeout (408 beyond).
    pub read_timeout: Duration,
    /// Per-tenant admission limits.
    pub quota: TenantQuota,
    /// Simulation kernel for campaigns (wide by default — the server
    /// exists to amortize the arena the wide kernel wants).
    pub kernel: Kernel,
    /// Directory campaign journals are written into.
    pub journal_dir: String,
    /// Artifact-cache capacity in circuits.
    pub cache_capacity: usize,
    /// When set, campaigns run under a delay-only chaos plan (no induced
    /// panics) seeded here — used by drills to hold a cancellation window
    /// open; never set in production serving.
    pub chaos_seed: Option<u64>,
    /// Run simulate campaigns on the certificate-backed reduced netlist
    /// from `scanft-opt`, mapping verdicts back to the original fault
    /// universe. Reports and journals are identical to unoptimized runs by
    /// construction; the optimized bundle is cached per content key.
    pub optimize: bool,
    /// Durable state directory. When set, the server keeps a job WAL at
    /// `<state_dir>/jobs.wal` — every admission/claim/cancel/terminal
    /// transition is flushed before it is acknowledged — and replays it on
    /// startup: pending jobs are re-queued, interrupted campaigns resume
    /// their on-disk journals, finished jobs stay queryable. `None` keeps
    /// the registry memory-only (the pre-WAL behavior).
    pub state_dir: Option<String>,
    /// Queue-depth bound: admissions beyond this many queued jobs are shed
    /// with 503 + `Retry-After` (same refusal shape as draining).
    pub max_queue_depth: usize,
    /// The `Retry-After` value (seconds) sent with 503 refusals.
    pub retry_after_secs: u64,
    /// Maximum per-unit artificial delay (µs) of the chaos plan enabled by
    /// [`ServerConfig::chaos_seed`]. Drills widen this to hold a
    /// cancellation or kill window open on small circuits.
    pub chaos_delay_micros: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            campaign_threads: 2,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            quota: TenantQuota::default(),
            kernel: Kernel::Wide,
            journal_dir: std::env::temp_dir()
                .join("scanft-serve")
                .to_string_lossy()
                .into_owned(),
            cache_capacity: 8,
            chaos_seed: None,
            optimize: false,
            state_dir: None,
            max_queue_depth: 256,
            retry_after_secs: 2,
            chaos_delay_micros: 20_000,
        }
    }
}

/// What startup recovery found in the state directory's WAL.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoverySummary {
    /// Intact WAL events replayed.
    pub wal_records: usize,
    /// Damaged WAL lines skipped (torn tail from the crash).
    pub wal_torn: usize,
    /// Jobs re-queued (queued or mid-flight at crash time).
    pub jobs_requeued: usize,
    /// Jobs restored in a terminal state (still queryable, never re-run).
    pub jobs_terminal: usize,
}

/// A running campaign server. Dropping the handle does *not* stop the
/// daemon; call [`Server::shutdown`].
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    registry: Arc<JobRegistry>,
    recovery: RecoverySummary,
    accept_handle: Option<thread::JoinHandle<()>>,
    worker_handles: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and accept loop, and returns. With
    /// [`ServerConfig::state_dir`] set, the state directory's WAL is
    /// replayed into the registry first — pending jobs re-queued, terminal
    /// jobs restored queryable — and every subsequent registry transition
    /// is logged durably.
    ///
    /// # Errors
    ///
    /// Returns the bind/journal-directory error as [`ScanftError::Io`],
    /// and an unreplayable WAL (an admitted job whose recorded submission
    /// no longer parses) as [`ScanftError::Recovery`] — starting fresh
    /// would silently drop acknowledged work.
    pub fn start(config: ServerConfig) -> Result<Server, ScanftError> {
        std::fs::create_dir_all(&config.journal_dir).map_err(|e| ScanftError::Io {
            path: config.journal_dir.clone(),
            source: e,
        })?;
        let registry = Arc::new(JobRegistry::new());
        let mut recovery = RecoverySummary::default();
        if let Some(state_dir) = &config.state_dir {
            std::fs::create_dir_all(state_dir).map_err(|e| ScanftError::Io {
                path: state_dir.clone(),
                source: e,
            })?;
            let wal_path = format!("{state_dir}/jobs.wal");
            recovery = recover(&registry, &wal_path)?;
            // Attach the writer only after replay: restored jobs must not
            // be re-logged, and new events append after the survivors.
            registry.set_wal(Arc::new(WalWriter::open(&wal_path)?));
        }
        let listener = TcpListener::bind(&config.addr).map_err(|e| ScanftError::Io {
            path: config.addr.clone(),
            source: e,
        })?;
        let addr = listener.local_addr().map_err(|e| ScanftError::Io {
            path: config.addr.clone(),
            source: e,
        })?;

        let shared = Arc::new(Shared {
            registry,
            cache: ArtifactCache::new(config.cache_capacity),
            recovery,
            config,
        });
        let stop = Arc::new(AtomicBool::new(false));

        let mut worker_handles = Vec::new();
        for worker in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            worker_handles.push(
                thread::spawn_named(format!("scanft-job-worker-{worker}"), move || {
                    while let Some(job) = shared.registry.claim() {
                        run_job(&shared, &job);
                    }
                })
                .map_err(|e| ScanftError::Io {
                    path: "job worker".to_owned(),
                    source: e,
                })?,
            );
        }

        let accept_shared = Arc::clone(&shared);
        let accept_stop = Arc::clone(&stop);
        let accept_handle = thread::spawn_named("scanft-accept", move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let shared = Arc::clone(&accept_shared);
                // Connection threads are detached: each one answers a
                // single request under the read timeout and exits.
                let _ =
                    thread::spawn_named("scanft-conn", move || handle_connection(&shared, stream));
            }
        })
        .map_err(|e| ScanftError::Io {
            path: "accept loop".to_owned(),
            source: e,
        })?;

        let registry = Arc::clone(&shared.registry);
        Ok(Server {
            addr,
            stop,
            registry,
            recovery,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What startup recovery replayed from the WAL (all zeros without a
    /// state directory).
    #[must_use]
    pub fn recovery(&self) -> RecoverySummary {
        self.recovery
    }

    /// Blocks until a drain has been requested (`POST /admin/drain`, or
    /// [`JobRegistry::drain`] directly). The CLI serve loop parks here,
    /// then calls [`Server::drain_and_shutdown`].
    pub fn wait_drain_requested(&self) {
        self.registry.wait_drain_requested();
    }

    /// Graceful drain: stops admission and claiming (503 + `Retry-After`
    /// for new submissions), lets in-flight campaigns finish — status and
    /// events queries keep being answered meanwhile — then stops the
    /// accept loop and joins everything. Queued jobs stay `Queued` in the
    /// WAL for the next boot.
    pub fn drain_and_shutdown(mut self) {
        self.registry.drain();
        scanft_obs::global().counter("server.drain.requests").inc();
        // In-flight campaigns run to completion (their terminal states are
        // WAL-logged); the accept loop stays up so clients can poll them.
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        self.registry.shutdown();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, drains the worker pool, and joins all threads.
    /// Queued jobs are abandoned; running campaigns finish their current
    /// run (cancel them first for a fast stop).
    pub fn shutdown(mut self) {
        // Release/Acquire pairing with the accept loop's stop check: the
        // accept thread that sees the flag also sees the shutdown intent
        // recorded before the throwaway connection below.
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.registry.shutdown();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Replays the WAL at `wal_path` into `registry`: terminal jobs are
/// restored queryable, everything else is re-queued in admission order
/// (cancelled-but-not-done jobs re-queued pre-cancelled so the ordinary
/// claim path drops them and logs their terminal state).
fn recover(registry: &JobRegistry, wal_path: &str) -> Result<RecoverySummary, ScanftError> {
    let parsed = wal::read_wal_file(wal_path)?;
    let state = wal::replay(&parsed);
    // A torn tail can only damage the *last* line, which orphans nothing.
    // An event whose admit line is missing means a record mid-file was
    // destroyed — acknowledged work would be dropped, so refuse to start.
    if state.orphan_events > 0 {
        return Err(ScanftError::Recovery {
            message: format!(
                "{} WAL event(s) in {wal_path} reference a job whose admit \
                 record did not survive; the WAL is damaged beyond a torn tail",
                state.orphan_events
            ),
        });
    }
    let mut summary = RecoverySummary {
        wal_records: parsed.events.len(),
        wal_torn: parsed.skipped_lines,
        ..RecoverySummary::default()
    };
    let obs = scanft_obs::global();
    for recovered in &state.jobs {
        let admit = &recovered.admit;
        // The submission text was validated at admission, so a parse
        // failure here means the WAL (not just its tail) is damaged:
        // refuse to start rather than silently dropping accepted work.
        let table = kiss::parse_with(&admit.kiss, &admit.circuit, kiss::Completion::SelfLoop)
            .map_err(|err| ScanftError::Recovery {
                message: format!(
                    "WAL admit record for `{}` no longer parses as KISS2: {err}",
                    admit.id
                ),
            })?;
        let tests = match &admit.tests {
            None => None,
            Some(text) => Some(scanft_core::io::parse_tests(text, &table).map_err(|err| {
                ScanftError::Recovery {
                    message: format!(
                        "WAL admit record for `{}` has an unparseable test section: {err}",
                        admit.id
                    ),
                }
            })?),
        };
        let mut job = Job::new(
            admit.id.clone(),
            JobSpec {
                tenant: admit.tenant.clone(),
                circuit: admit.circuit.clone(),
                kind: admit.kind,
                key: ContentKey::of_table(&table),
                table,
                tests,
                journal_path: admit.journal_path.clone(),
            },
        );
        match &recovered.done {
            Some(status) => {
                job.set_status(status.clone());
                registry.restore(job, false, Some((&admit.idem, admit.sticky)));
                summary.jobs_terminal += 1;
            }
            None => {
                // Claimed-but-unfinished jobs resume their journal; the
                // claim is not replayed as `Running` — the job waits its
                // turn in the queue again.
                job.resume = recovered.claimed;
                if recovered.cancelled {
                    job.cancel.cancel();
                }
                registry.restore(job, true, Some((&admit.idem, admit.sticky)));
                summary.jobs_requeued += 1;
            }
        }
    }
    obs.counter("server.recovery.wal_records")
        .add(summary.wal_records as u64);
    obs.counter("server.recovery.wal_torn")
        .add(summary.wal_torn as u64);
    obs.counter("server.recovery.jobs_requeued")
        .add(summary.jobs_requeued as u64);
    obs.counter("server.recovery.jobs_terminal")
        .add(summary.jobs_terminal as u64);
    Ok(summary)
}

/// State shared by the accept loop, connection threads, and job workers.
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    registry: Arc<JobRegistry>,
    cache: ArtifactCache,
    recovery: RecoverySummary,
}

/// Renders the uniform error body:
/// `{"error":{"code":N,"class":"...","message":"..."}}`.
fn error_body(code: u16, class: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"code\":{code},\"class\":\"{}\",\"message\":\"{}\"}}}}",
        scanft_obs::escape_json_string(class),
        scanft_obs::escape_json_string(message),
    )
}

/// Error body for a workspace-taxonomy failure: `code` is the CLI exit
/// code ([`ScanftError::exit_code`]), `class` the stable class name, so
/// clients treat API errors and CLI exits uniformly.
fn taxonomy_body(err: &ScanftError) -> String {
    error_body(u16::from(err.exit_code()), err.class(), &err.to_string())
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    let _ = http::write_response(stream, status, "application/json", body.as_bytes());
}

/// A 503 refusal with `Retry-After` — the uniform shape for drain and
/// queue shedding.
fn respond_unavailable(shared: &Shared, stream: &mut TcpStream, message: &str) {
    let retry_after = shared.config.retry_after_secs;
    let _ = http::write_response_with(
        stream,
        503,
        "application/json",
        &[("Retry-After", retry_after.to_string())],
        error_body(503, "unavailable", message).as_bytes(),
    );
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let request = match http::read_request(
        &mut stream,
        shared.config.read_timeout,
        shared.config.max_body_bytes,
    ) {
        Ok(request) => request,
        Err(HttpError::Closed) => return,
        Err(err) => {
            scanft_obs::global().counter("server.jobs.rejected").inc();
            respond(
                &mut stream,
                err.status(),
                &error_body(err.status(), "http", &err.to_string()),
            );
            return;
        }
    };
    route(shared, &request, &mut stream);
}

fn route(shared: &Shared, request: &Request, stream: &mut TcpStream) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => submit(shared, request, stream),
        ("GET", ["jobs", id]) => match shared.registry.get(id) {
            Some(job) => respond(stream, 200, &job.to_json()),
            None => respond(
                stream,
                404,
                &error_body(404, "http", &format!("no such job `{id}`")),
            ),
        },
        ("DELETE", ["jobs", id]) => match shared.registry.get(id) {
            Some(job) => {
                job.cancel.cancel();
                // Durable: a restart must re-drop this job, not re-run it.
                shared.registry.log_cancel(&job.id);
                respond(
                    stream,
                    200,
                    &format!(
                        "{{\"id\":\"{}\",\"cancel\":\"requested\",\"status\":\"{}\"}}",
                        scanft_obs::escape_json_string(&job.id),
                        job.status().name()
                    ),
                );
            }
            None => respond(
                stream,
                404,
                &error_body(404, "http", &format!("no such job `{id}`")),
            ),
        },
        ("POST", ["admin", "drain"]) => {
            // Respond before flipping the flag: the drain wakes the serve
            // loop, which may tear the whole process down — the
            // acknowledgement must already be on the wire by then.
            scanft_obs::global().counter("server.drain.requests").inc();
            respond(
                stream,
                200,
                &format!(
                    "{{\"drain\":\"requested\",\"queued\":{},\"running\":{}}}",
                    shared.registry.queue_depth(),
                    shared.registry.running_count(),
                ),
            );
            shared.registry.drain();
        }
        ("GET", ["healthz"]) => {
            respond(stream, 200, &health_body(shared));
        }
        ("GET", ["readyz"]) => {
            if shared.registry.is_draining() {
                respond_unavailable(shared, stream, "draining: not accepting new jobs");
            } else {
                respond(stream, 200, "{\"ready\":true}");
            }
        }
        ("GET", ["jobs", id, "events"]) => match shared.registry.get(id) {
            Some(job) => stream_events(&job, stream),
            None => respond(
                stream,
                404,
                &error_body(404, "http", &format!("no such job `{id}`")),
            ),
        },
        ("GET", ["metrics"]) => {
            respond(stream, 200, &scanft_obs::global().to_jsonl());
        }
        (method, _) => {
            respond(
                stream,
                404,
                &error_body(
                    404,
                    "http",
                    &format!("no route for {method} {}", request.path),
                ),
            );
        }
    }
}

/// `POST /jobs`: validate, enforce the tenant quota, enqueue.
fn submit(shared: &Shared, request: &Request, stream: &mut TcpStream) {
    let obs = scanft_obs::global();
    let tenant = request
        .header("x-scanft-tenant")
        .unwrap_or("default")
        .to_owned();
    let name = request
        .header("x-scanft-circuit")
        .unwrap_or("submitted")
        .to_owned();
    let kind = match kind_of(&request.query) {
        Ok(kind) => kind,
        Err(message) => {
            obs.counter("server.jobs.rejected").inc();
            respond(stream, 400, &taxonomy_body(&ScanftError::usage(message)));
            return;
        }
    };

    let body = String::from_utf8_lossy(&request.body).into_owned();
    let (kiss_text, tests_text) = split_submission(&body);
    let table = match kiss::parse_with(kiss_text, &name, kiss::Completion::SelfLoop) {
        Ok(table) => table,
        Err(err) => {
            obs.counter("server.jobs.rejected").inc();
            respond(stream, 400, &taxonomy_body(&ScanftError::from(err)));
            return;
        }
    };
    let tests = match tests_text {
        None => None,
        Some(text) => match scanft_core::io::parse_tests(text, &table) {
            Ok(set) => Some(set),
            Err(err) => {
                obs.counter("server.jobs.rejected").inc();
                respond(
                    stream,
                    400,
                    &taxonomy_body(&ScanftError::TestFormat {
                        message: err.to_string(),
                    }),
                );
                return;
            }
        },
    };

    if shared.registry.active_for(&tenant) >= shared.config.quota.max_active {
        obs.counter("server.jobs.rejected").inc();
        respond(
            stream,
            429,
            &error_body(
                429,
                "quota",
                &format!(
                    "tenant `{tenant}` already has {} active job(s)",
                    shared.config.quota.max_active
                ),
            ),
        );
        return;
    }

    let key = ContentKey::of_table(&table);
    // Idempotency: an explicit `Idempotency-Key` header maps to its job
    // forever (a retried POST returns the original id even after it
    // finished); without one, the content hash of (tenant, kind, circuit)
    // dedupes only while the original job is active, so a deliberate warm
    // resubmission still re-runs and exercises the artifact cache.
    let (idem_key, sticky) = match request.header("idempotency-key") {
        Some(user_key) => (format!("user:{tenant}:{user_key}"), true),
        None => (format!("auto:{tenant}:{}:{key}", kind.name()), false),
    };
    let journal_dir = shared.config.journal_dir.clone();
    let circuit_name = table.name().to_owned();
    let outcome =
        shared
            .registry
            .admit_guarded(&idem_key, sticky, shared.config.max_queue_depth, |id| {
                let job = Job::new(
                    id.clone(),
                    JobSpec {
                        tenant,
                        circuit: circuit_name.clone(),
                        kind,
                        key,
                        table,
                        tests,
                        journal_path: format!("{journal_dir}/{id}.jsonl"),
                    },
                );
                (job, kiss_text.to_owned(), tests_text.map(str::to_owned))
            });
    match outcome {
        Ok(AdmitOutcome::Fresh(job)) => {
            obs.counter("server.jobs.accepted").inc();
            respond(stream, 202, &job.to_json());
        }
        Ok(AdmitOutcome::Deduped(job)) => {
            obs.counter("server.jobs.deduped").inc();
            respond(stream, 200, &job.to_json());
        }
        Ok(AdmitOutcome::Draining) => {
            obs.counter("server.drain.rejected").inc();
            respond_unavailable(shared, stream, "draining: not accepting new jobs");
        }
        Ok(AdmitOutcome::QueueFull(depth)) => {
            obs.counter("server.drain.shed").inc();
            respond_unavailable(
                shared,
                stream,
                &format!("queue depth {depth} at its bound; retry later"),
            );
        }
        Err(err) => {
            obs.counter("server.jobs.rejected").inc();
            respond(stream, 500, &taxonomy_body(&err));
        }
    }
}

/// The `/healthz` body: liveness plus drain/recovery state.
fn health_body(shared: &Shared) -> String {
    format!(
        "{{\"status\":\"ok\",\"draining\":{},\"queued\":{},\"running\":{},\"recovered_requeued\":{},\"recovered_terminal\":{},\"wal_torn\":{}}}",
        shared.registry.is_draining(),
        shared.registry.queue_depth(),
        shared.registry.running_count(),
        shared.recovery.jobs_requeued,
        shared.recovery.jobs_terminal,
        shared.recovery.wal_torn,
    )
}

fn kind_of(query: &str) -> Result<JobKind, String> {
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == "kind" {
            return JobKind::from_param(v)
                .ok_or_else(|| format!("kind must be `simulate` or `atpg`, got `{v}`"));
        }
    }
    Ok(JobKind::default())
}

/// Splits a submission body at the first line that is exactly
/// [`TESTS_MARKER`]; returns the KISS2 text and the optional test text.
fn split_submission(body: &str) -> (&str, Option<&str>) {
    let mut offset = 0;
    for line in body.split_inclusive('\n') {
        if line.trim_end() == TESTS_MARKER && line.trim_start().starts_with('.') {
            let kiss_end = offset;
            let tests_start = offset + line.len();
            return (&body[..kiss_end], Some(&body[tests_start..]));
        }
        offset += line.len();
    }
    (body, None)
}

/// `GET /jobs/:id/events`: stream new journal lines until the job is
/// terminal and the journal is drained. Close-delimited JSONL.
fn stream_events(job: &Job, stream: &mut TcpStream) {
    if http::write_stream_head(stream, 200, "application/jsonl").is_err() {
        return;
    }
    let obs = scanft_obs::global();
    let mut tailer = JournalTailer::new(&job.journal_path);
    loop {
        let terminal = job.status().is_terminal();
        let lines = tailer.poll().unwrap_or_default();
        for line in &lines {
            let mut framed = line.clone();
            framed.push('\n');
            if stream.write_all(framed.as_bytes()).is_err() {
                return; // client went away
            }
            obs.counter("server.bytes_streamed")
                .add(framed.len() as u64);
        }
        if !lines.is_empty() && stream.flush().is_err() {
            return;
        }
        if terminal && lines.is_empty() {
            return; // drained after the campaign ended
        }
        thread::sleep(Duration::from_millis(10));
    }
}

/// Runs one claimed job to a terminal state, counting the outcome.
fn run_job(shared: &Shared, job: &Arc<Job>) {
    let obs = scanft_obs::global();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| execute(shared, job)));
    let status = match outcome {
        Ok(Ok(status)) => status,
        Ok(Err(err)) => JobStatus::Failed(err.to_string()),
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            JobStatus::Failed(format!("job panicked: {message}"))
        }
    };
    match &status {
        JobStatus::Completed { .. } => obs.counter("server.jobs.completed").inc(),
        JobStatus::Cancelled => obs.counter("server.jobs.cancelled").inc(),
        JobStatus::Failed(_) => obs.counter("server.jobs.failed").inc(),
        _ => {}
    }
    job.set_status(status);
    // Log whatever actually stuck (terminal states are sticky, so a racing
    // cancel may have won): a restart restores this exact state.
    shared.registry.log_done(&job.id, &job.status());
}

/// The campaign body of a job: artifacts from the cache, tests from the
/// submission (or the paper's functional generator), then the supervised
/// run or the ATPG top-up.
fn execute(shared: &Shared, job: &Arc<Job>) -> Result<JobStatus, ScanftError> {
    let (artifacts, hit) = shared.cache.get_or_build(job.key, &job.table);
    job.set_cache_hit(hit);
    let scan_tests = scan_tests_for(job, &artifacts);
    let budget = tenant_budget(&shared.config.quota, job);

    match job.kind {
        JobKind::Simulate => {
            let fault_list = scanft_sim::faults::as_fault_list(
                &scanft_sim::faults::enumerate_stuck(artifacts.circuit.netlist()),
            );
            let order = campaign::decreasing_length_order(&scan_tests);
            let config = SupervisedConfig {
                num_threads: shared.config.campaign_threads.max(1),
                observe_scan_out: true,
                budget,
                label: job.circuit.clone(),
                kernel: shared.config.kernel,
                arena: Some(Arc::clone(&artifacts.arena)),
            };
            // Delay-only chaos (panic and truncation rates zero): drills
            // use it to hold a cancellation window open without exercising
            // quarantine or torn writes. Deliberately NOT attached to the
            // journal writer — served journals are never chaos-truncated.
            let chaos = shared.config.chaos_seed.map(|seed| {
                FailurePlan::new(seed)
                    .with_panic_rate(0, 1)
                    .with_truncate_rate(0, 1)
                    .with_delay_rate(1, 1, shared.config.chaos_delay_micros)
            });
            // Recovery resume: repair the crash-torn journal down to its
            // intact prefix, then append the missing units via the
            // ordinary resume path — the finished journal is byte-identical
            // to an uninterrupted run. Any doubt (no file, no intact
            // header) falls back to a fresh truncating run, which is
            // trivially identical too.
            let (writer, resume) = if job.resume {
                match repair_journal(&job.journal_path) {
                    Ok(journal) if journal.header.is_some() => {
                        scanft_obs::global()
                            .counter("server.recovery.jobs_resumed")
                            .inc();
                        (JournalWriter::append_to(&job.journal_path)?, Some(journal))
                    }
                    _ => (JournalWriter::create(&job.journal_path)?, None),
                }
            } else {
                (JournalWriter::create(&job.journal_path)?, None)
            };
            // Optimized runs preserve the journal and report contract
            // bit-for-bit (see `scanft_opt::campaign`), so this branch is
            // invisible to clients and to resume.
            let partial = if shared.config.optimize {
                scanft_opt::campaign::run_supervised_optimized(
                    artifacts.circuit.netlist(),
                    &artifacts.optimized(),
                    &scan_tests,
                    &order,
                    &fault_list,
                    &config,
                    Some(&writer),
                    resume.as_ref(),
                    chaos.as_ref(),
                )?
            } else {
                campaign::run_supervised(
                    artifacts.circuit.netlist(),
                    &scan_tests,
                    &order,
                    &fault_list,
                    &config,
                    Some(&writer),
                    resume.as_ref(),
                    chaos.as_ref(),
                )?
            };
            if !partial.resumed_units.is_empty() {
                scanft_obs::global()
                    .counter("server.recovery.units_resumed")
                    .add(partial.resumed_units.len() as u64);
            }
            if partial.stopped == Some(StopReason::Cancelled) {
                return Ok(JobStatus::Cancelled);
            }
            Ok(JobStatus::Completed {
                coverage: partial.coverage_lower_bound_percent(),
                detected: partial.report.detected(),
                faults: fault_list.len(),
                completed_units: partial.completed_units.len(),
                units: partial.num_units,
            })
        }
        JobKind::Atpg => {
            let config = TopUpConfig {
                budget,
                ..TopUpConfig::default()
            };
            let outcome = top_up_scan_with(
                artifacts.circuit.netlist(),
                &scan_tests,
                &config,
                Some((*artifacts.analysis()).clone()),
            );
            let report = &outcome.report;
            if report.stopped == Some(StopReason::Cancelled) {
                return Ok(JobStatus::Cancelled);
            }
            Ok(JobStatus::Completed {
                coverage: report.coverage_percent(),
                detected: report.detected_functional() + report.detected_atpg(),
                faults: report.faults.len(),
                completed_units: report.atpg_patterns,
                units: report.atpg_patterns,
            })
        }
    }
}

/// The submission's tests, or the paper's UIO-based functional set.
fn scan_tests_for(job: &Job, artifacts: &Artifacts) -> Vec<ScanTest> {
    match &job.tests {
        Some(set) => set.to_scan_tests(&artifacts.circuit),
        None => {
            let uios = derive_uios_with(
                &job.table,
                &UioConfig::with_max_len(job.table.num_state_vars()),
            );
            generate(&job.table, &uios, &GenConfig::default()).to_scan_tests(&artifacts.circuit)
        }
    }
}

/// The per-campaign budget: the tenant's work-unit cap plus this job's
/// cancel token, so `DELETE` rides the ordinary stop path.
fn tenant_budget(quota: &TenantQuota, job: &Job) -> Budget {
    let mut budget = Budget::unlimited().with_cancel(job.cancel.clone());
    if let Some(max_units) = quota.max_units {
        budget = budget.with_max_units(max_units);
    }
    budget
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_splits_at_the_tests_marker() {
        let body = ".i 1\n.o 1\n.tests\n.circuit lion\ns0 | 0 | s0\n";
        let (kiss, tests) = split_submission(body);
        assert_eq!(kiss, ".i 1\n.o 1\n");
        assert_eq!(tests.unwrap(), ".circuit lion\ns0 | 0 | s0\n");
        let (all, none) = split_submission(".i 1\n.o 1\n");
        assert_eq!(all, ".i 1\n.o 1\n");
        assert!(none.is_none());
    }

    #[test]
    fn kind_parses_from_the_query_string() {
        assert_eq!(kind_of("").unwrap(), JobKind::Simulate);
        assert_eq!(kind_of("kind=simulate").unwrap(), JobKind::Simulate);
        assert_eq!(kind_of("kind=atpg&x=1").unwrap(), JobKind::Atpg);
        assert!(kind_of("kind=nope").is_err());
    }

    #[test]
    fn error_bodies_reuse_the_exit_code_taxonomy() {
        let err = ScanftError::TestFormat {
            message: "line 2: bad".into(),
        };
        let body = taxonomy_body(&err);
        assert!(body.contains("\"code\":7"));
        assert!(body.contains("\"class\":\"test-format\""));
    }
}
