//! `scanft serve` — the ATPG-as-a-service campaign server.
//!
//! Every one-shot `scanft` invocation rebuilds the same expensive pipeline
//! stages — synthesis, gate arena, implication/dominator/SCOAP analysis —
//! and throws them away on exit. This crate turns the resilient supervisor
//! (`scanft-harness`) and the wide PPSFP kernel (`scanft-sim`) into a
//! long-running daemon:
//!
//! - [`http`]: a minimal hand-rolled HTTP/1.1 layer on
//!   `std::net::TcpListener` — blocking, thread-per-connection, with
//!   request-size limits and read timeouts. The workspace is offline and
//!   dependency-free, so there is no hyper/tokio; a campaign server's
//!   concurrency is worker-pool shaped anyway.
//! - [`cache`]: a content-addressed artifact cache keyed by a hash of the
//!   *canonicalized* KISS2 input (never the file name), sharing synthesis
//!   output, the gate arena, and the `Analysis` implication/dominator/SCOAP
//!   bundle across jobs and tenants, with hit/miss/eviction counters in
//!   `scanft-obs`.
//! - [`job`]: the job registry and queue with per-tenant quotas (max
//!   queued jobs, work-unit budget) riding the PR 5 [`Budget`] types;
//!   cancellation flips the job's [`CancelToken`] so a running campaign
//!   stops through the ordinary budget claim path.
//! - [`server`]: the daemon — accept loop, sharded campaign worker pool
//!   (`--kernel wide` by default), and the route table:
//!
//!   | endpoint | behaviour |
//!   |---|---|
//!   | `POST /jobs` | submit a KISS2 circuit (+ optional `.tests` section); idempotent under `Idempotency-Key` (sticky) or the content-hash default (while active) |
//!   | `GET /jobs/:id` | job status/result JSON |
//!   | `GET /jobs/:id/events` | live JSONL progress streamed from the campaign journal |
//!   | `DELETE /jobs/:id` | cancel via the budget stop path (WAL-logged) |
//!   | `POST /admin/drain` | stop admission (503 + `Retry-After`), finish in-flight work, let the serve loop exit |
//!   | `GET /healthz` | liveness + drain/recovery state, always 200 |
//!   | `GET /readyz` | 200 while accepting, 503 + `Retry-After` while draining |
//!   | `GET /metrics` | the `scanft-obs` JSON-lines export |
//!
//! - [`wal`]: the durable job write-ahead log behind `serve --state-dir`.
//!   Admission, claim, cancellation, and terminal transitions are flushed
//!   (in the harness's torn-write-tolerant JSONL shape) before they are
//!   acknowledged; startup replay re-queues pending jobs and resumes
//!   interrupted campaigns from their on-disk journals via the ordinary
//!   checkpoint/resume path, byte-identical to an uninterrupted run. A WAL
//!   that cannot be replayed is [`ScanftError::Recovery`] (exit code 9) —
//!   the server refuses to start rather than drop acknowledged work.
//! - [`client`]: a tiny blocking client used by `scanft submit` /
//!   `scanft status` / `scanft cancel` and the CI drills, with a
//!   [`retry`] layer: capped exponential backoff + seeded jitter,
//!   honoring `Retry-After` on 503/429.
//!
//! [`ScanftError::Recovery`]: scanft_harness::ScanftError::Recovery
//!
//! Structured errors reuse the workspace error taxonomy: the JSON body is
//! `{"error":{"code":N,"class":"...","message":"..."}}` where `code` and
//! `class` are exactly [`ScanftError::exit_code`] / [`ScanftError::class`],
//! so a client can treat API errors and CLI exit codes uniformly.
//!
//! [`Budget`]: scanft_harness::Budget
//! [`CancelToken`]: scanft_harness::CancelToken
//! [`ScanftError::exit_code`]: scanft_harness::ScanftError::exit_code
//! [`ScanftError::class`]: scanft_harness::ScanftError::class

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cache;
pub mod client;
pub mod hash;
pub mod http;
pub mod job;
mod json;
pub mod retry;
pub mod server;
pub mod wal;

pub use cache::{ArtifactCache, Artifacts};
pub use client::{Client, ClientError, JobView};
pub use hash::ContentKey;
pub use job::{AdmitOutcome, Job, JobKind, JobRegistry, JobSpec, JobStatus, TenantQuota};
pub use retry::{Backoff, RetryPolicy};
pub use server::{RecoverySummary, Server, ServerConfig};
pub use wal::{read_wal, read_wal_file, replay, Wal, WalAdmit, WalEvent, WalJob, WalWriter};
