//! A tiny blocking client for the job API.
//!
//! Used by `scanft submit` / `scanft status` / `scanft cancel` / `scanft
//! events` and the CI drills. One TCP connection per call (mirroring the
//! server's one-request-per-connection contract); responses are read to
//! EOF, which is exactly the close-delimited framing the server emits.
//!
//! With [`Client::with_retry`], unit calls retry transparently on
//! transport errors and on 503/429 refusals, sleeping a capped
//! exponential backoff with seeded jitter ([`RetryPolicy`]) and honoring
//! the server's `Retry-After` as a floor. Retries are safe because the
//! API is idempotent: submissions dedupe on `Idempotency-Key` (or the
//! content hash), and status/cancel/drain are idempotent by nature.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::job::JobKind;
use crate::json::{field_f64, field_str, field_u64};
use crate::retry::RetryPolicy;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP round trip itself failed.
    Io(
        /// The underlying I/O error.
        std::io::Error,
    ),
    /// The server answered with a structured error body.
    Api {
        /// HTTP status.
        status: u16,
        /// Workspace taxonomy code (a CLI exit code) or the HTTP status for
        /// transport-level refusals.
        code: u64,
        /// Stable class name (`fsm`, `test-format`, `quota`, `http`, ...).
        class: String,
        /// Human-readable message.
        message: String,
    },
    /// The response did not parse as the protocol promises.
    Protocol(
        /// What was malformed.
        String,
    ),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport: {err}"),
            ClientError::Api {
                status,
                code,
                class,
                message,
            } => write!(f, "server refused ({status}, {class}/{code}): {message}"),
            ClientError::Protocol(what) => write!(f, "bad response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// A parsed job-status object (`POST /jobs` and `GET /jobs/:id` bodies).
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id (`job-<n>`).
    pub id: String,
    /// Lifecycle state name (`queued`, `running`, `completed`, `cancelled`,
    /// `failed`).
    pub status: String,
    /// Circuit name as the server parsed it.
    pub circuit: String,
    /// Content key (hex) of the canonicalized circuit.
    pub key: String,
    /// Coverage percent, present once completed.
    pub coverage: Option<f64>,
    /// Detected faults, present once completed.
    pub detected: Option<u64>,
    /// Total faults, present once completed.
    pub faults: Option<u64>,
    /// Completed work units, present once completed.
    pub completed_units: Option<u64>,
    /// Total work units, present once completed.
    pub units: Option<u64>,
    /// `"hit"` / `"miss"` once the artifact cache was consulted.
    pub cache: Option<String>,
    /// Failure message when `status == "failed"`.
    pub message: Option<String>,
    /// Server-side journal path.
    pub journal: Option<String>,
}

impl JobView {
    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self.status.as_str(), "completed" | "cancelled" | "failed")
    }

    fn parse(body: &str) -> Result<JobView, ClientError> {
        let id = field_str(body, "id")
            .ok_or_else(|| ClientError::Protocol(format!("job body without id: {body}")))?;
        let status = field_str(body, "status")
            .ok_or_else(|| ClientError::Protocol(format!("job body without status: {body}")))?;
        Ok(JobView {
            id,
            status,
            circuit: field_str(body, "circuit").unwrap_or_default(),
            key: field_str(body, "key").unwrap_or_default(),
            coverage: field_f64(body, "coverage"),
            detected: field_u64(body, "detected"),
            faults: field_u64(body, "faults"),
            completed_units: field_u64(body, "completed_units"),
            units: field_u64(body, "units"),
            cache: field_str(body, "cache"),
            message: field_str(body, "message"),
            journal: field_str(body, "journal"),
        })
    }
}

/// The blocking client: one connection per call.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    retry: Option<RetryPolicy>,
}

impl Client {
    /// A client for the server at `addr`. Retries are off until
    /// [`Client::with_retry`] enables them.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Duration::from_secs(30),
            retry: None,
        }
    }

    /// Overrides the per-call socket timeout (default 30 s). Streaming
    /// calls ([`Client::events`]) use it as a read-inactivity bound.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Enables retries: transport errors and 503/429 refusals are retried
    /// up to `policy.max_retries` times with capped exponential backoff
    /// and seeded jitter, honoring `Retry-After` as a delay floor.
    /// Streaming calls ([`Client::events`]) never retry — a resumed
    /// stream could replay journal lines the caller already consumed.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Submits a circuit (a `POST /jobs` body: KISS2, optionally followed
    /// by a `.tests` section). Returns the queued job's view.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] carries the server's structured refusal.
    pub fn submit(
        &self,
        body: &str,
        circuit_name: &str,
        tenant: &str,
        kind: JobKind,
    ) -> Result<JobView, ClientError> {
        self.submit_with_key(body, circuit_name, tenant, kind, None)
    }

    /// Like [`Client::submit`], with an explicit `Idempotency-Key`. The
    /// server maps the key to the admitted job *forever*, so a retried or
    /// duplicated submission returns the original job instead of running
    /// the campaign twice.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] carries the server's structured refusal.
    pub fn submit_with_key(
        &self,
        body: &str,
        circuit_name: &str,
        tenant: &str,
        kind: JobKind,
        idempotency_key: Option<&str>,
    ) -> Result<JobView, ClientError> {
        let key_header = idempotency_key
            .map(|key| format!("Idempotency-Key: {key}\r\n"))
            .unwrap_or_default();
        let request = format!(
            "POST /jobs?kind={} HTTP/1.1\r\nHost: scanft\r\nX-Scanft-Circuit: {}\r\nX-Scanft-Tenant: {}\r\n{}Content-Length: {}\r\n\r\n",
            kind.name(),
            circuit_name,
            tenant,
            key_header,
            body.len(),
        );
        let (status, response) = self.call(&request, Some(body.as_bytes()))?;
        expect_ok(status, &response)?;
        JobView::parse(&response)
    }

    /// Fetches a job's status/result.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with class `http` / status 404 for unknown ids.
    pub fn status(&self, id: &str) -> Result<JobView, ClientError> {
        let (status, response) = self.call(
            &format!("GET /jobs/{id} HTTP/1.1\r\nHost: scanft\r\n\r\n"),
            None,
        )?;
        expect_ok(status, &response)?;
        JobView::parse(&response)
    }

    /// Requests cancellation of a job (queued or running).
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] for unknown ids.
    pub fn cancel(&self, id: &str) -> Result<(), ClientError> {
        let (status, response) = self.call(
            &format!("DELETE /jobs/{id} HTTP/1.1\r\nHost: scanft\r\n\r\n"),
            None,
        )?;
        expect_ok(status, &response)?;
        Ok(())
    }

    /// Asks the server to drain: admission stops (503 + `Retry-After`),
    /// in-flight jobs finish, and the serve loop exits. Returns the
    /// `(queued, running)` counts at the moment the drain was requested.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure.
    pub fn drain(&self) -> Result<(u64, u64), ClientError> {
        let (status, response) = self.call(
            "POST /admin/drain HTTP/1.1\r\nHost: scanft\r\nContent-Length: 0\r\n\r\n",
            None,
        )?;
        expect_ok(status, &response)?;
        Ok((
            field_u64(&response, "queued").unwrap_or(0),
            field_u64(&response, "running").unwrap_or(0),
        ))
    }

    /// Fetches `GET /healthz` (always 200, even while draining); returns
    /// the raw JSON body.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure. Health checks never
    /// retry — a probe wants the current answer, not an eventual one.
    pub fn health(&self) -> Result<String, ClientError> {
        let (status, _, body) =
            self.round_trip("GET /healthz HTTP/1.1\r\nHost: scanft\r\n\r\n", None)?;
        expect_ok(status, &body)?;
        Ok(body)
    }

    /// Probes `GET /readyz`: `Ok(true)` while the server accepts work,
    /// `Ok(false)` when it answers 503 (draining).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure; never retries.
    pub fn ready(&self) -> Result<bool, ClientError> {
        let (status, _, body) =
            self.round_trip("GET /readyz HTTP/1.1\r\nHost: scanft\r\n\r\n", None)?;
        match status {
            200 => Ok(true),
            503 => Ok(false),
            _ => {
                expect_ok(status, &body)?;
                Ok(false)
            }
        }
    }

    /// Streams the job's journal events until the server closes the
    /// connection (job terminal and journal drained); returns every JSONL
    /// line received.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the stream stalls past the client timeout.
    pub fn events(&self, id: &str) -> Result<Vec<String>, ClientError> {
        // Deliberately no retry: a replayed stream would duplicate lines.
        let (status, _, body) = self.round_trip(
            &format!("GET /jobs/{id}/events HTTP/1.1\r\nHost: scanft\r\n\r\n"),
            None,
        )?;
        expect_ok(status, &body)?;
        Ok(body.lines().map(str::to_owned).collect())
    }

    /// Fetches the server's `scanft-obs` metrics export (JSON lines).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure.
    pub fn metrics(&self) -> Result<String, ClientError> {
        let (status, body) = self.call("GET /metrics HTTP/1.1\r\nHost: scanft\r\n\r\n", None)?;
        expect_ok(status, &body)?;
        Ok(body)
    }

    /// Polls [`Client::status`] until the job is terminal or `deadline`
    /// elapses; returns the final view. Poll intervals follow
    /// [`RetryPolicy::polling`] — capped exponential backoff with seeded
    /// jitter — so a fleet of waiting clients does not hammer the server
    /// in lockstep the way a fixed interval would.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the deadline passes first.
    pub fn wait(&self, id: &str, deadline: Duration) -> Result<JobView, ClientError> {
        let started = Instant::now();
        let mut backoff = RetryPolicy::polling().backoff();
        loop {
            let view = self.status(id)?;
            if view.is_terminal() {
                return Ok(view);
            }
            if started.elapsed() > deadline {
                return Err(ClientError::Protocol(format!(
                    "job {id} still `{}` after {deadline:?}",
                    view.status
                )));
            }
            // The polling policy never exhausts; the deadline above bounds us.
            let delay = backoff.next_delay().unwrap_or(Duration::from_millis(200));
            scanft_race::thread::sleep(delay);
        }
    }

    /// One exchange with the retry loop around it: transport errors and
    /// 503/429 answers are retried (sleeping at least the server's
    /// `Retry-After`) until the policy is exhausted; the last answer or
    /// error is returned as-is so callers see the genuine refusal.
    fn call(&self, head: &str, body: Option<&[u8]>) -> Result<(u16, String), ClientError> {
        let Some(policy) = self.retry.clone() else {
            let (status, _, text) = self.round_trip(head, body)?;
            return Ok((status, text));
        };
        let mut backoff = policy.backoff();
        loop {
            // Only transport errors and 503/429 are retryable; anything
            // else (including other errors) is the genuine answer.
            let (result, retry_after) = match self.round_trip(head, body) {
                Ok((status, retry_after, text)) if matches!(status, 503 | 429) => {
                    (Ok((status, text)), retry_after)
                }
                Ok((status, _, text)) => return Ok((status, text)),
                Err(ClientError::Io(err)) => (Err(ClientError::Io(err)), None),
                Err(other) => return Err(other),
            };
            let delay = match retry_after {
                Some(secs) => backoff.next_delay_at_least(Duration::from_secs(secs)),
                None => backoff.next_delay(),
            };
            // Exhausted: surface the last refusal or transport error as-is.
            let Some(delay) = delay else { return result };
            scanft_obs::global().counter("client.retries").inc();
            scanft_race::thread::sleep(delay);
        }
    }

    /// One request/response exchange; returns (status, `Retry-After`
    /// seconds if present, body).
    fn round_trip(
        &self,
        head: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Option<u64>, String), ClientError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout)).ok();
        stream.set_write_timeout(Some(self.timeout)).ok();
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body)?;
        }
        stream.flush()?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        let text = String::from_utf8_lossy(&raw).into_owned();
        let Some((head, body)) = text.split_once("\r\n\r\n") else {
            return Err(ClientError::Protocol(format!(
                "response without header terminator: {text}"
            )));
        };
        let status = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line: {head}")))?;
        let retry_after = head
            .lines()
            .filter_map(|line| line.split_once(':'))
            .find(|(name, _)| name.trim().eq_ignore_ascii_case("retry-after"))
            .and_then(|(_, value)| value.trim().parse::<u64>().ok());
        Ok((status, retry_after, body.to_owned()))
    }
}

/// Turns a non-2xx response into [`ClientError::Api`] using the uniform
/// error body.
fn expect_ok(status: u16, body: &str) -> Result<(), ClientError> {
    if (200..300).contains(&status) {
        return Ok(());
    }
    Err(ClientError::Api {
        status,
        code: field_u64(body, "code").unwrap_or(u64::from(status)),
        class: field_str(body, "class").unwrap_or_else(|| "unknown".to_owned()),
        message: field_str(body, "message").unwrap_or_else(|| body.to_owned()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_view_parses_a_completed_body() {
        let body = "{\"id\":\"job-2\",\"tenant\":\"t\",\"circuit\":\"bbtas\",\"kind\":\"simulate\",\"key\":\"ab\",\"status\":\"completed\",\"coverage\":97.2500,\"detected\":389,\"faults\":400,\"completed_units\":7,\"units\":7,\"cache\":\"hit\",\"journal\":\"/tmp/j.jsonl\"}";
        let view = JobView::parse(body).unwrap();
        assert_eq!(view.id, "job-2");
        assert!(view.is_terminal());
        assert!((view.coverage.unwrap() - 97.25).abs() < 1e-9);
        assert_eq!(view.detected, Some(389));
        assert_eq!(view.cache.as_deref(), Some("hit"));
    }

    #[test]
    fn api_errors_surface_the_taxonomy() {
        let body = "{\"error\":{\"code\":3,\"class\":\"fsm\",\"message\":\"line 1: bad\"}}";
        let err = expect_ok(400, body).unwrap_err();
        match err {
            ClientError::Api {
                status,
                code,
                class,
                ..
            } => {
                assert_eq!(status, 400);
                assert_eq!(code, 3);
                assert_eq!(class, "fsm");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }
}
