//! A tiny blocking client for the job API.
//!
//! Used by `scanft submit` / `scanft status` / `scanft cancel` / `scanft
//! events` and the `serve_drill` CI drill. One TCP connection per call
//! (mirroring the server's one-request-per-connection contract); responses
//! are read to EOF, which is exactly the close-delimited framing the
//! server emits.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::job::JobKind;
use crate::json::{field_f64, field_str, field_u64};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP round trip itself failed.
    Io(
        /// The underlying I/O error.
        std::io::Error,
    ),
    /// The server answered with a structured error body.
    Api {
        /// HTTP status.
        status: u16,
        /// Workspace taxonomy code (a CLI exit code) or the HTTP status for
        /// transport-level refusals.
        code: u64,
        /// Stable class name (`fsm`, `test-format`, `quota`, `http`, ...).
        class: String,
        /// Human-readable message.
        message: String,
    },
    /// The response did not parse as the protocol promises.
    Protocol(
        /// What was malformed.
        String,
    ),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport: {err}"),
            ClientError::Api {
                status,
                code,
                class,
                message,
            } => write!(f, "server refused ({status}, {class}/{code}): {message}"),
            ClientError::Protocol(what) => write!(f, "bad response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// A parsed job-status object (`POST /jobs` and `GET /jobs/:id` bodies).
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id (`job-<n>`).
    pub id: String,
    /// Lifecycle state name (`queued`, `running`, `completed`, `cancelled`,
    /// `failed`).
    pub status: String,
    /// Circuit name as the server parsed it.
    pub circuit: String,
    /// Content key (hex) of the canonicalized circuit.
    pub key: String,
    /// Coverage percent, present once completed.
    pub coverage: Option<f64>,
    /// Detected faults, present once completed.
    pub detected: Option<u64>,
    /// Total faults, present once completed.
    pub faults: Option<u64>,
    /// Completed work units, present once completed.
    pub completed_units: Option<u64>,
    /// Total work units, present once completed.
    pub units: Option<u64>,
    /// `"hit"` / `"miss"` once the artifact cache was consulted.
    pub cache: Option<String>,
    /// Failure message when `status == "failed"`.
    pub message: Option<String>,
    /// Server-side journal path.
    pub journal: Option<String>,
}

impl JobView {
    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self.status.as_str(), "completed" | "cancelled" | "failed")
    }

    fn parse(body: &str) -> Result<JobView, ClientError> {
        let id = field_str(body, "id")
            .ok_or_else(|| ClientError::Protocol(format!("job body without id: {body}")))?;
        let status = field_str(body, "status")
            .ok_or_else(|| ClientError::Protocol(format!("job body without status: {body}")))?;
        Ok(JobView {
            id,
            status,
            circuit: field_str(body, "circuit").unwrap_or_default(),
            key: field_str(body, "key").unwrap_or_default(),
            coverage: field_f64(body, "coverage"),
            detected: field_u64(body, "detected"),
            faults: field_u64(body, "faults"),
            completed_units: field_u64(body, "completed_units"),
            units: field_u64(body, "units"),
            cache: field_str(body, "cache"),
            message: field_str(body, "message"),
            journal: field_str(body, "journal"),
        })
    }
}

/// The blocking client: one connection per call.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for the server at `addr`.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the per-call socket timeout (default 30 s). Streaming
    /// calls ([`Client::events`]) use it as a read-inactivity bound.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Submits a circuit (a `POST /jobs` body: KISS2, optionally followed
    /// by a `.tests` section). Returns the queued job's view.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] carries the server's structured refusal.
    pub fn submit(
        &self,
        body: &str,
        circuit_name: &str,
        tenant: &str,
        kind: JobKind,
    ) -> Result<JobView, ClientError> {
        let request = format!(
            "POST /jobs?kind={} HTTP/1.1\r\nHost: scanft\r\nX-Scanft-Circuit: {}\r\nX-Scanft-Tenant: {}\r\nContent-Length: {}\r\n\r\n",
            kind.name(),
            circuit_name,
            tenant,
            body.len(),
        );
        let (status, response) = self.round_trip(&request, Some(body.as_bytes()))?;
        expect_ok(status, &response)?;
        JobView::parse(&response)
    }

    /// Fetches a job's status/result.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with class `http` / status 404 for unknown ids.
    pub fn status(&self, id: &str) -> Result<JobView, ClientError> {
        let (status, response) = self.round_trip(
            &format!("GET /jobs/{id} HTTP/1.1\r\nHost: scanft\r\n\r\n"),
            None,
        )?;
        expect_ok(status, &response)?;
        JobView::parse(&response)
    }

    /// Requests cancellation of a job (queued or running).
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] for unknown ids.
    pub fn cancel(&self, id: &str) -> Result<(), ClientError> {
        let (status, response) = self.round_trip(
            &format!("DELETE /jobs/{id} HTTP/1.1\r\nHost: scanft\r\n\r\n"),
            None,
        )?;
        expect_ok(status, &response)?;
        Ok(())
    }

    /// Streams the job's journal events until the server closes the
    /// connection (job terminal and journal drained); returns every JSONL
    /// line received.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the stream stalls past the client timeout.
    pub fn events(&self, id: &str) -> Result<Vec<String>, ClientError> {
        let (status, body) = self.round_trip(
            &format!("GET /jobs/{id}/events HTTP/1.1\r\nHost: scanft\r\n\r\n"),
            None,
        )?;
        expect_ok(status, &body)?;
        Ok(body.lines().map(str::to_owned).collect())
    }

    /// Fetches the server's `scanft-obs` metrics export (JSON lines).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure.
    pub fn metrics(&self) -> Result<String, ClientError> {
        let (status, body) =
            self.round_trip("GET /metrics HTTP/1.1\r\nHost: scanft\r\n\r\n", None)?;
        expect_ok(status, &body)?;
        Ok(body)
    }

    /// Polls [`Client::status`] until the job is terminal or `deadline`
    /// elapses; returns the final view.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the deadline passes first.
    pub fn wait(&self, id: &str, deadline: Duration) -> Result<JobView, ClientError> {
        let started = Instant::now();
        loop {
            let view = self.status(id)?;
            if view.is_terminal() {
                return Ok(view);
            }
            if started.elapsed() > deadline {
                return Err(ClientError::Protocol(format!(
                    "job {id} still `{}` after {deadline:?}",
                    view.status
                )));
            }
            scanft_race::thread::sleep(Duration::from_millis(20));
        }
    }

    /// One request/response exchange; returns (status, body).
    fn round_trip(&self, head: &str, body: Option<&[u8]>) -> Result<(u16, String), ClientError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout)).ok();
        stream.set_write_timeout(Some(self.timeout)).ok();
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body)?;
        }
        stream.flush()?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        let text = String::from_utf8_lossy(&raw).into_owned();
        let Some((head, body)) = text.split_once("\r\n\r\n") else {
            return Err(ClientError::Protocol(format!(
                "response without header terminator: {text}"
            )));
        };
        let status = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line: {head}")))?;
        Ok((status, body.to_owned()))
    }
}

/// Turns a non-2xx response into [`ClientError::Api`] using the uniform
/// error body.
fn expect_ok(status: u16, body: &str) -> Result<(), ClientError> {
    if (200..300).contains(&status) {
        return Ok(());
    }
    Err(ClientError::Api {
        status,
        code: field_u64(body, "code").unwrap_or(u64::from(status)),
        class: field_str(body, "class").unwrap_or_else(|| "unknown".to_owned()),
        message: field_str(body, "message").unwrap_or_else(|| body.to_owned()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_view_parses_a_completed_body() {
        let body = "{\"id\":\"job-2\",\"tenant\":\"t\",\"circuit\":\"bbtas\",\"kind\":\"simulate\",\"key\":\"ab\",\"status\":\"completed\",\"coverage\":97.2500,\"detected\":389,\"faults\":400,\"completed_units\":7,\"units\":7,\"cache\":\"hit\",\"journal\":\"/tmp/j.jsonl\"}";
        let view = JobView::parse(body).unwrap();
        assert_eq!(view.id, "job-2");
        assert!(view.is_terminal());
        assert!((view.coverage.unwrap() - 97.25).abs() < 1e-9);
        assert_eq!(view.detected, Some(389));
        assert_eq!(view.cache.as_deref(), Some("hit"));
    }

    #[test]
    fn api_errors_surface_the_taxonomy() {
        let body = "{\"error\":{\"code\":3,\"class\":\"fsm\",\"message\":\"line 1: bad\"}}";
        let err = expect_ok(400, body).unwrap_err();
        match err {
            ClientError::Api {
                status,
                code,
                class,
                ..
            } => {
                assert_eq!(status, 400);
                assert_eq!(code, 3);
                assert_eq!(class, "fsm");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }
}
