//! Hand-rolled JSON field extraction for the server and client.
//!
//! The workspace policy is no serde; the server's JSON bodies are all flat
//! single-line objects built with `format!` + `escape_json_string`, so the
//! reader side only needs keyed field extraction (the same idiom as the
//! harness journal parser and the metrics golden tests).

/// Extracts an unsigned integer field `"key":123`.
pub(crate) fn field_u64(text: &str, key: &str) -> Option<u64> {
    let rest = after_key(text, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts a float field `"key":12.5` (also accepts plain integers).
pub(crate) fn field_f64(text: &str, key: &str) -> Option<f64> {
    let rest = after_key(text, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-' && c != 'e' && c != 'E')
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts a string field `"key":"value"`, decoding every escape
/// `escape_json_string` can emit — including `\uXXXX`, which it uses for
/// control characters below 0x20. A submission containing, say, a vertical
/// tab must round-trip through the WAL, or the admit record would stop
/// parsing on restart.
pub(crate) fn field_str(text: &str, key: &str) -> Option<String> {
    let rest = after_key(text, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'b' => out.push('\u{0008}'),
                'f' => out.push('\u{000c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}

fn after_key<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\":");
    let start = text.find(&pattern)? + pattern.len();
    Some(&text[start..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_typed_fields() {
        let text = r#"{"id":"job-3","n":42,"pct":99.5,"msg":"a \"b\"\nc"}"#;
        assert_eq!(field_str(text, "id").unwrap(), "job-3");
        assert_eq!(field_u64(text, "n"), Some(42));
        assert!((field_f64(text, "pct").unwrap() - 99.5).abs() < 1e-12);
        assert_eq!(field_str(text, "msg").unwrap(), "a \"b\"\nc");
        assert_eq!(field_u64(text, "missing"), None);
        assert_eq!(field_str(text, "n"), None, "numbers are not strings");
    }

    #[test]
    fn every_control_character_round_trips_through_the_escaper() {
        // escape_json_string emits \u00XX for control chars it has no
        // short escape for; field_str must decode all of them or a WAL'd
        // submission containing one poisons recovery.
        let raw: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let line = format!("{{\"msg\":\"{}\"}}", scanft_obs::escape_json_string(&raw));
        assert_eq!(field_str(&line, "msg").unwrap(), raw);
    }

    #[test]
    fn unicode_escapes_decode_and_malformed_ones_fail_cleanly() {
        assert_eq!(field_str("{\"m\":\"a\\u000bz\"}", "m").unwrap(), "a\u{000b}z");
        assert_eq!(field_str("{\"m\":\"\\u0041\"}", "m").unwrap(), "A");
        assert_eq!(field_str("{\"m\":\"x\\b\\f\"}", "m").unwrap(), "x\u{8}\u{c}");
        // Truncated hex digits or a lone surrogate: the field (and thus
        // the WAL line) is treated as damaged, not mis-decoded.
        assert_eq!(field_str("{\"m\":\"\\u00\"}", "m"), None);
        assert_eq!(field_str("{\"m\":\"\\ud800x\"}", "m"), None);
    }
}
