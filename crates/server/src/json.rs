//! Hand-rolled JSON field extraction for the server and client.
//!
//! The workspace policy is no serde; the server's JSON bodies are all flat
//! single-line objects built with `format!` + `escape_json_string`, so the
//! reader side only needs keyed field extraction (the same idiom as the
//! harness journal parser and the metrics golden tests).

/// Extracts an unsigned integer field `"key":123`.
pub(crate) fn field_u64(text: &str, key: &str) -> Option<u64> {
    let rest = after_key(text, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts a float field `"key":12.5` (also accepts plain integers).
pub(crate) fn field_f64(text: &str, key: &str) -> Option<f64> {
    let rest = after_key(text, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-' && c != 'e' && c != 'E')
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts a string field `"key":"value"` (unescaping `\"` and `\\`).
pub(crate) fn field_str(text: &str, key: &str) -> Option<String> {
    let rest = after_key(text, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}

fn after_key<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\":");
    let start = text.find(&pattern)? + pattern.len();
    Some(&text[start..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_typed_fields() {
        let text = r#"{"id":"job-3","n":42,"pct":99.5,"msg":"a \"b\"\nc"}"#;
        assert_eq!(field_str(text, "id").unwrap(), "job-3");
        assert_eq!(field_u64(text, "n"), Some(42));
        assert!((field_f64(text, "pct").unwrap() - 99.5).abs() < 1e-12);
        assert_eq!(field_str(text, "msg").unwrap(), "a \"b\"\nc");
        assert_eq!(field_u64(text, "missing"), None);
        assert_eq!(field_str(text, "n"), None, "numbers are not strings");
    }
}
