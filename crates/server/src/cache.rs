//! The content-addressed artifact cache.
//!
//! Synthesis, the gate arena, and the implication/dominator/SCOAP bundle
//! are pure functions of the circuit, so the server computes them once per
//! [`ContentKey`] and shares them across jobs and tenants. The cache is a
//! bounded LRU under one mutex — artifact *construction* happens outside
//! the lock, so a slow synthesis cannot stall unrelated lookups — and every
//! hit, miss and eviction is counted in `scanft-obs` (`server.cache.*`).
//!
//! What is cached eagerly vs lazily follows what jobs actually pay for:
//! the synthesized circuit and the wide-kernel [`GateArena`] are built on
//! first use of a key (every simulate job needs both), while the
//! [`Analysis`] bundle is built behind a `OnceLock` only when the first
//! ATPG job on that circuit asks for it — a simulate-only tenant never pays
//! the implication-closure cost. The certificate-backed reduced netlist
//! ([`scanft_opt::Optimized`]) sits behind a second `OnceLock`, built from
//! the cached analysis only when the server runs with `--optimize`, and is
//! then shared by every campaign on the same content key.

use scanft_race::sync::{Arc, Mutex, OnceLock};
use std::collections::HashMap;

use scanft_analyze::Analysis;
use scanft_fsm::StateTable;
use scanft_netlist::GateArena;
use scanft_synth::{synthesize, SynthConfig, SynthesizedCircuit};

use crate::hash::ContentKey;

/// The shared per-circuit artifact bundle.
#[derive(Debug)]
pub struct Artifacts {
    /// The parsed state table (canonical source of the artifacts).
    pub table: StateTable,
    /// Synthesized gate-level implementation.
    pub circuit: SynthesizedCircuit,
    /// Wide-kernel gate arena over `circuit.netlist()`.
    pub arena: Arc<GateArena>,
    analysis: OnceLock<Arc<Analysis>>,
    optimized: OnceLock<Arc<scanft_opt::Optimized>>,
}

impl Artifacts {
    /// Builds the eager artifacts (synthesis + arena) for a table.
    #[must_use]
    pub fn build(table: StateTable) -> Self {
        let circuit = synthesize(&table, &SynthConfig::default());
        let arena = Arc::new(GateArena::build(circuit.netlist()));
        Artifacts {
            table,
            circuit,
            arena,
            analysis: OnceLock::new(),
            optimized: OnceLock::new(),
        }
    }

    /// The implication/dominator/SCOAP bundle, built on first request and
    /// shared afterwards.
    #[must_use]
    pub fn analysis(&self) -> Arc<Analysis> {
        Arc::clone(
            self.analysis
                .get_or_init(|| Arc::new(Analysis::new(self.circuit.netlist()))),
        )
    }

    /// Whether the analysis bundle has been built yet.
    #[must_use]
    pub fn has_analysis(&self) -> bool {
        self.analysis.get().is_some()
    }

    /// The certificate-backed reduced netlist, built on first request from
    /// the (also cached) analysis and shared afterwards — so every
    /// `--optimize` campaign on the same [`ContentKey`] reuses one
    /// optimization. Like the analysis, this is a pure function of the
    /// circuit, so sharing cannot change any verdict.
    #[must_use]
    pub fn optimized(&self) -> Arc<scanft_opt::Optimized> {
        Arc::clone(self.optimized.get_or_init(|| {
            Arc::new(scanft_opt::optimize_with(
                self.circuit.netlist(),
                &self.analysis(),
            ))
        }))
    }

    /// Whether the optimized bundle has been built yet.
    #[must_use]
    pub fn has_optimized(&self) -> bool {
        self.optimized.get().is_some()
    }
}

/// A bounded LRU cache of [`Artifacts`] keyed by [`ContentKey`].
#[derive(Debug)]
pub struct ArtifactCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<ContentKey, Arc<Artifacts>>,
    /// Keys from least- to most-recently used.
    order: Vec<ContentKey>,
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` circuits (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Looks up `key`, building (and inserting) the artifacts from `table`
    /// on a miss. Returns the shared bundle and whether it was a hit.
    ///
    /// Construction runs outside the cache lock; two racing misses on the
    /// same key both build, and the first insert wins (the loser's build is
    /// discarded — wasteful but correct, and only possible in the first
    /// instant of a key's life).
    pub fn get_or_build(&self, key: ContentKey, table: &StateTable) -> (Arc<Artifacts>, bool) {
        let obs = scanft_obs::global();
        if let Some(found) = self.touch(key) {
            obs.counter("server.cache.hits").inc();
            return (found, true);
        }
        obs.counter("server.cache.misses").inc();
        let _span = obs.timer("server.cache.build").start();
        let built = Arc::new(Artifacts::build(table.clone()));
        let mut inner = self.inner.lock();
        let entry = inner
            .entries
            .entry(key)
            .or_insert_with(|| Arc::clone(&built))
            .clone();
        inner.order.retain(|&k| k != key);
        inner.order.push(key);
        while inner.entries.len() > self.capacity {
            let victim = inner.order.remove(0);
            inner.entries.remove(&victim);
            obs.counter("server.cache.evictions").inc();
        }
        drop(inner);
        (entry, false)
    }

    /// Looks up `key` and refreshes its recency; `None` on a miss (no
    /// counters touched — this is the internal probe).
    fn touch(&self, key: ContentKey) -> Option<Arc<Artifacts>> {
        let mut inner = self.inner.lock();
        let found = inner.entries.get(&key).cloned()?;
        inner.order.retain(|&k| k != key);
        inner.order.push(key);
        Some(found)
    }

    /// Number of circuits currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(name: &str) -> StateTable {
        scanft_fsm::benchmarks::build(name).unwrap()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_bundle() {
        let cache = ArtifactCache::new(4);
        let lion = table("lion");
        let key = ContentKey::of_table(&lion);
        let (first, hit1) = cache.get_or_build(key, &lion);
        let (second, hit2) = cache.get_or_build(key, &lion);
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second), "hit returns the same bundle");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn analysis_is_lazy_and_then_shared() {
        let cache = ArtifactCache::new(4);
        let lion = table("lion");
        let (bundle, _) = cache.get_or_build(ContentKey::of_table(&lion), &lion);
        assert!(!bundle.has_analysis(), "simulate jobs never pay for this");
        let a = bundle.analysis();
        let b = bundle.analysis();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(bundle.has_analysis());
    }

    #[test]
    fn optimized_is_lazy_and_then_shared() {
        let cache = ArtifactCache::new(4);
        let lion = table("lion");
        let (bundle, _) = cache.get_or_build(ContentKey::of_table(&lion), &lion);
        assert!(!bundle.has_optimized(), "plain jobs never pay for this");
        let a = bundle.optimized();
        let b = bundle.optimized();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(bundle.has_optimized());
        assert!(
            bundle.has_analysis(),
            "optimizing reuses the cached closure"
        );
        assert_eq!(a.stats.original_gates, bundle.circuit.netlist().num_gates());
    }

    #[test]
    fn lru_evicts_the_coldest_key() {
        let cache = ArtifactCache::new(2);
        let (lion, bbtas, dk27) = (table("lion"), table("bbtas"), table("dk27"));
        let (k1, k2, k3) = (
            ContentKey::of_table(&lion),
            ContentKey::of_table(&bbtas),
            ContentKey::of_table(&dk27),
        );
        cache.get_or_build(k1, &lion);
        cache.get_or_build(k2, &bbtas);
        // Touch k1 so k2 is now the coldest, then overflow.
        cache.get_or_build(k1, &lion);
        cache.get_or_build(k3, &dk27);
        assert_eq!(cache.len(), 2);
        let (_, hit1) = cache.get_or_build(k1, &lion);
        assert!(hit1, "recently-touched key survives");
        let (_, hit2) = cache.get_or_build(k2, &bbtas);
        assert!(!hit2, "coldest key was evicted");
    }
}
