//! Jobs: validated submissions queued for the campaign worker pool.
//!
//! A job is born `Queued` by `POST /jobs` (after its KISS2 and optional
//! test-set sections parse — malformed submissions never enter the queue),
//! claimed by a worker into `Running`, and ends `Completed`, `Cancelled` or
//! `Failed`. Cancellation is level-triggered through the job's
//! [`CancelToken`]: `DELETE /jobs/:id` flips the token, a queued job is
//! dropped at claim time, and a running campaign stops at its next work-unit
//! claim through the ordinary [`Budget`](scanft_harness::Budget) path.
//!
//! Tenant quotas are enforced at admission: each tenant (the
//! `X-Scanft-Tenant` header, `default` otherwise) may hold at most
//! [`TenantQuota::max_active`] queued-or-running jobs, and each of its
//! campaigns runs under [`TenantQuota::max_units`] work units. Admission
//! failures are 429s and never consume a job id.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use scanft_race::sync::{Arc, Condvar, Mutex};

use scanft_core::TestSet;
use scanft_fsm::StateTable;
use scanft_harness::{CancelToken, ScanftError};

use crate::hash::ContentKey;
use crate::wal::{WalAdmit, WalWriter};

/// What kind of campaign a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobKind {
    /// Supervised stuck-at fault simulation (journaled; the default).
    #[default]
    Simulate,
    /// Functional-then-PODEM coverage top-up using the cached `Analysis`.
    Atpg,
}

impl JobKind {
    /// Parses the `kind` query parameter.
    #[must_use]
    pub fn from_param(value: &str) -> Option<Self> {
        match value {
            "simulate" => Some(JobKind::Simulate),
            "atpg" => Some(JobKind::Atpg),
            _ => None,
        }
    }

    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Simulate => "simulate",
            JobKind::Atpg => "atpg",
        }
    }
}

/// Lifecycle state of a job, with the terminal states carrying results.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Waiting for a worker.
    Queued,
    /// A worker is driving the campaign.
    Running,
    /// The campaign finished (all units done or budget-stopped).
    Completed {
        /// Coverage over the full fault list, percent (a lower bound when
        /// the run was budget-stopped).
        coverage: f64,
        /// Detected faults.
        detected: usize,
        /// Total faults simulated/targeted.
        faults: usize,
        /// Completed work units out of `units`.
        completed_units: usize,
        /// Total work units.
        units: usize,
    },
    /// `DELETE /jobs/:id` stopped it (queued or mid-flight).
    Cancelled,
    /// The campaign itself errored (journal I/O, poisoned worker, ...).
    Failed(
        /// What went wrong.
        String,
    ),
}

impl JobStatus {
    /// Stable lowercase name for JSON.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed { .. } => "completed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed(_) => "failed",
        }
    }

    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Completed { .. } | JobStatus::Cancelled | JobStatus::Failed(_)
        )
    }
}

/// One validated submission.
#[derive(Debug)]
pub struct Job {
    /// Stable id (`job-<n>`).
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Circuit name (the KISS2 parse name; journal label).
    pub circuit: String,
    /// Campaign kind.
    pub kind: JobKind,
    /// Content key of the canonicalized circuit.
    pub key: ContentKey,
    /// Parsed state table.
    pub table: StateTable,
    /// Parsed functional test set (`None` → per-transition length-1 tests).
    pub tests: Option<TestSet>,
    /// Cancellation hook shared with `DELETE /jobs/:id`.
    pub cancel: CancelToken,
    /// Journal file this job's campaign writes (simulate jobs).
    pub journal_path: String,
    /// When the job was admitted.
    pub submitted_at: Instant,
    /// Recovery flag: the job was re-queued from the WAL after a crash, so
    /// its worker should try to resume the on-disk journal instead of
    /// truncating it.
    pub resume: bool,
    state: Mutex<JobState>,
}

#[derive(Debug)]
struct JobState {
    status: JobStatus,
    /// Whether this job's artifacts came from the cache.
    cache_hit: Option<bool>,
}

/// Everything needed to construct a [`Job`] (besides its assigned id).
#[derive(Debug)]
pub struct JobSpec {
    /// Owning tenant.
    pub tenant: String,
    /// Circuit name (journal label).
    pub circuit: String,
    /// Campaign kind.
    pub kind: JobKind,
    /// Content key of the canonicalized circuit.
    pub key: ContentKey,
    /// Parsed state table.
    pub table: StateTable,
    /// Parsed functional test set, if the submission carried one.
    pub tests: Option<TestSet>,
    /// Journal file the campaign will write.
    pub journal_path: String,
}

impl Job {
    /// Builds a fresh `Queued` job from a validated spec.
    #[must_use]
    pub fn new(id: String, spec: JobSpec) -> Self {
        Job {
            id,
            tenant: spec.tenant,
            circuit: spec.circuit,
            kind: spec.kind,
            key: spec.key,
            table: spec.table,
            tests: spec.tests,
            cancel: CancelToken::new(),
            journal_path: spec.journal_path,
            submitted_at: Instant::now(),
            resume: false,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                cache_hit: None,
            }),
        }
    }

    /// Current status (cloned snapshot).
    #[must_use]
    pub fn status(&self) -> JobStatus {
        self.state.lock().status.clone()
    }

    /// Whether the artifact cache served this job (`None` until it ran).
    #[must_use]
    pub fn cache_hit(&self) -> Option<bool> {
        self.state.lock().cache_hit
    }

    /// Moves the job to a new status; terminal states are sticky (a cancel
    /// racing a completion keeps whichever landed first).
    pub fn set_status(&self, status: JobStatus) {
        let mut state = self.state.lock();
        if !state.status.is_terminal() {
            state.status = status;
        }
    }

    /// Records whether the artifact cache hit for this job.
    pub fn set_cache_hit(&self, hit: bool) {
        self.state.lock().cache_hit = Some(hit);
    }

    /// Renders the status/result JSON object served by `GET /jobs/:id`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let status = self.status();
        let mut out = format!(
            "{{\"id\":\"{}\",\"tenant\":\"{}\",\"circuit\":\"{}\",\"kind\":\"{}\",\"key\":\"{}\",\"status\":\"{}\"",
            scanft_obs::escape_json_string(&self.id),
            scanft_obs::escape_json_string(&self.tenant),
            scanft_obs::escape_json_string(&self.circuit),
            self.kind.name(),
            self.key,
            status.name(),
        );
        match &status {
            JobStatus::Completed {
                coverage,
                detected,
                faults,
                completed_units,
                units,
            } => {
                out.push_str(&format!(
                    ",\"coverage\":{coverage:.4},\"detected\":{detected},\"faults\":{faults},\"completed_units\":{completed_units},\"units\":{units}"
                ));
            }
            JobStatus::Failed(message) => {
                out.push_str(&format!(
                    ",\"message\":\"{}\"",
                    scanft_obs::escape_json_string(message)
                ));
            }
            _ => {}
        }
        if let Some(hit) = self.cache_hit() {
            out.push_str(if hit {
                ",\"cache\":\"hit\""
            } else {
                ",\"cache\":\"miss\""
            });
        }
        out.push_str(&format!(
            ",\"journal\":\"{}\"}}",
            scanft_obs::escape_json_string(&self.journal_path)
        ));
        out
    }
}

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum queued-or-running jobs per tenant.
    pub max_active: usize,
    /// Work-unit cap applied to each campaign (`None` = unlimited).
    pub max_units: Option<u64>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_active: 8,
            max_units: None,
        }
    }
}

/// How an admission attempt resolved (the guarded path used by
/// `POST /jobs`).
#[derive(Debug)]
pub enum AdmitOutcome {
    /// A new job was admitted and enqueued.
    Fresh(
        /// The admitted job.
        Arc<Job>,
    ),
    /// The idempotency key matched an existing job; nothing was enqueued.
    Deduped(
        /// The original job the key maps to.
        Arc<Job>,
    ),
    /// The registry is draining (or shut down); admission refused.
    Draining,
    /// The queue is at its depth bound; admission shed.
    QueueFull(
        /// The queue depth at refusal time.
        usize,
    ),
}

/// The registry: all jobs by id, plus the FIFO work queue the campaign
/// workers block on.
#[derive(Debug, Default)]
pub struct JobRegistry {
    inner: Mutex<RegistryInner>,
    wakeup: Condvar,
}

#[derive(Debug, Default)]
struct RegistryInner {
    jobs: HashMap<String, Arc<Job>>,
    queue: VecDeque<Arc<Job>>,
    next_id: u64,
    shutdown: bool,
    draining: bool,
    /// Idempotency key → (job id, sticky). Sticky entries (client-supplied
    /// `Idempotency-Key`) dedupe forever; content-hash entries dedupe only
    /// while the mapped job is non-terminal, so deliberate warm
    /// resubmissions still re-run (and hit the artifact cache).
    idem: HashMap<String, (String, bool)>,
    /// When set, admissions/claims/cancels/terminal transitions are logged
    /// (and flushed) before they take effect.
    wal: Option<Arc<WalWriter>>,
}

impl RegistryInner {
    /// Best-effort WAL append: a failed event write is counted, not fatal —
    /// except at admission, which is handled separately (an unlogged job
    /// must not be acknowledged).
    fn wal_log(&self, write: impl FnOnce(&WalWriter) -> std::io::Result<()>) {
        if let Some(wal) = &self.wal {
            if write(wal).is_err() {
                scanft_obs::global().counter("server.wal.errors").inc();
            }
        }
    }
}

impl JobRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        JobRegistry::default()
    }

    /// Attaches the durable WAL. Call before serving; recovery restores
    /// jobs first, then attaches the writer, so replayed events are not
    /// re-logged.
    pub fn set_wal(&self, wal: Arc<WalWriter>) {
        self.inner.lock().wal = Some(wal);
    }

    /// Number of jobs a tenant currently has queued or running.
    #[must_use]
    pub fn active_for(&self, tenant: &str) -> usize {
        let inner = self.inner.lock();
        inner
            .jobs
            .values()
            .filter(|j| {
                j.tenant == tenant && matches!(j.status(), JobStatus::Queued | JobStatus::Running)
            })
            .count()
    }

    /// Admits a job: assigns the next id, registers it, and enqueues it.
    /// The caller has already enforced quotas and parsed the submission.
    ///
    /// This is the unguarded path (tests and internal tools): no
    /// idempotency, no queue bound, no drain refusal, no WAL admit record.
    /// `POST /jobs` goes through [`JobRegistry::admit_guarded`].
    pub fn admit(&self, build: impl FnOnce(String) -> Job) -> Arc<Job> {
        let mut inner = self.inner.lock();
        inner.next_id += 1;
        let id = format!("job-{}", inner.next_id);
        let job = Arc::new(build(id.clone()));
        inner.jobs.insert(id, Arc::clone(&job));
        inner.queue.push_back(Arc::clone(&job));
        scanft_obs::global().gauge("server.queue.depth").add(1);
        drop(inner);
        // notify_all, not notify_one: the condvar is shared with
        // `wait_drain_requested`, and a single wakeup could land on a
        // drain waiter instead of a claimer (lost-wakeup hazard).
        self.wakeup.notify_all();
        job
    }

    /// The `POST /jobs` admission path: drain refusal, queue-depth bound,
    /// idempotent dedup, WAL logging — all under one registry lock so a
    /// concurrent duplicate cannot slip between the check and the insert.
    ///
    /// `build` constructs the job (given its assigned id) plus the
    /// canonical submission text `(kiss, tests)` recorded in the WAL admit
    /// event.
    ///
    /// # Errors
    ///
    /// [`ScanftError::Io`] when the WAL admit append fails — the job is
    /// *not* admitted (an unlogged admission would vanish on restart
    /// despite its 202).
    pub fn admit_guarded(
        &self,
        idem_key: &str,
        sticky: bool,
        max_queue: usize,
        build: impl FnOnce(String) -> (Job, String, Option<String>),
    ) -> Result<AdmitOutcome, ScanftError> {
        let mut inner = self.inner.lock();
        // Dedupe before the drain and queue-depth refusals: returning the
        // existing job enqueues nothing, so neither bound applies — and a
        // client retrying its POST during a drain or a saturated queue
        // (exactly when retries happen) must still recover the original
        // job id instead of looping on 503 forever.
        if let Some((job_id, entry_sticky)) = inner.idem.get(idem_key) {
            if let Some(job) = inner.jobs.get(job_id) {
                if *entry_sticky || !job.status().is_terminal() {
                    return Ok(AdmitOutcome::Deduped(Arc::clone(job)));
                }
            }
        }
        if inner.shutdown || inner.draining {
            return Ok(AdmitOutcome::Draining);
        }
        if inner.queue.len() >= max_queue {
            return Ok(AdmitOutcome::QueueFull(inner.queue.len()));
        }
        inner.next_id += 1;
        let id = format!("job-{}", inner.next_id);
        let (job, kiss, tests) = build(id.clone());
        let job = Arc::new(job);
        if let Some(wal) = &inner.wal {
            let admit = WalAdmit {
                id: id.clone(),
                tenant: job.tenant.clone(),
                circuit: job.circuit.clone(),
                kind: job.kind,
                idem: idem_key.to_owned(),
                sticky,
                journal_path: job.journal_path.clone(),
                kiss,
                tests,
            };
            if let Err(source) = wal.log_admit(&admit) {
                // Roll the id back so the WAL's ordinals stay dense.
                inner.next_id -= 1;
                return Err(ScanftError::Io {
                    path: "jobs.wal".to_owned(),
                    source,
                });
            }
        }
        inner.jobs.insert(id.clone(), Arc::clone(&job));
        inner.idem.insert(idem_key.to_owned(), (id, sticky));
        inner.queue.push_back(Arc::clone(&job));
        scanft_obs::global().gauge("server.queue.depth").add(1);
        drop(inner);
        self.wakeup.notify_all();
        Ok(AdmitOutcome::Fresh(job))
    }

    /// Recovery-time restore: registers a job replayed from the WAL under
    /// its original id (bumping the id counter past it), optionally
    /// re-enqueueing it, and re-establishing its idempotency mapping.
    /// Never WAL-logged — the events being replayed are already durable.
    pub fn restore(&self, job: Job, enqueue: bool, idem: Option<(&str, bool)>) -> Arc<Job> {
        let mut inner = self.inner.lock();
        if let Some(n) = job.id.strip_prefix("job-").and_then(|s| s.parse().ok()) {
            inner.next_id = inner.next_id.max(n);
        }
        let job = Arc::new(job);
        inner.jobs.insert(job.id.clone(), Arc::clone(&job));
        if let Some((key, sticky)) = idem {
            inner.idem.insert(key.to_owned(), (job.id.clone(), sticky));
        }
        if enqueue {
            inner.queue.push_back(Arc::clone(&job));
            scanft_obs::global().gauge("server.queue.depth").add(1);
        }
        drop(inner);
        self.wakeup.notify_all();
        job
    }

    /// Looks up a job by id.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        self.inner.lock().jobs.get(id).cloned()
    }

    /// Blocks until a job is available (or shutdown), then claims it.
    /// Cancelled-while-queued jobs are marked `Cancelled` and skipped.
    /// Returns `None` on shutdown.
    ///
    /// The facade mutex never poisons, so a worker that panicked while
    /// holding the registry lock (a quarantined campaign bug, say) cannot
    /// wedge every later `claim` — the old `expect("registry poisoned")`
    /// here turned one bad request into a dead worker pool.
    pub fn claim(&self) -> Option<Arc<Job>> {
        let mut inner = self.inner.lock();
        loop {
            if inner.shutdown || inner.draining {
                return None;
            }
            if let Some(job) = inner.queue.pop_front() {
                scanft_obs::global().gauge("server.queue.depth").sub(1);
                if job.cancel.is_cancelled() {
                    job.set_status(JobStatus::Cancelled);
                    inner.wal_log(|wal| wal.log_done(&job.id, &JobStatus::Cancelled));
                    scanft_obs::global().counter("server.jobs.cancelled").inc();
                    continue;
                }
                job.set_status(JobStatus::Running);
                inner.wal_log(|wal| wal.log_claim(&job.id));
                return Some(job);
            }
            inner = self.wakeup.wait(inner);
        }
    }

    /// WAL-logs a cancellation request (the `DELETE /jobs/:id` handler
    /// flips the token, then calls this so a restart re-drops the job).
    pub fn log_cancel(&self, id: &str) {
        let inner = self.inner.lock();
        inner.wal_log(|wal| wal.log_cancel(id));
    }

    /// WAL-logs a job's terminal transition (called by the worker after
    /// `set_status`).
    pub fn log_done(&self, id: &str, status: &JobStatus) {
        let inner = self.inner.lock();
        inner.wal_log(|wal| wal.log_done(id, status));
    }

    /// Stops admission and claiming without discarding state: subsequent
    /// [`JobRegistry::admit_guarded`] calls return
    /// [`AdmitOutcome::Draining`], [`JobRegistry::claim`] returns `None`
    /// (queued jobs stay `Queued` in the WAL for the next boot), and
    /// [`JobRegistry::wait_drain_requested`] waiters wake.
    pub fn drain(&self) {
        self.inner.lock().draining = true;
        self.wakeup.notify_all();
    }

    /// Whether [`JobRegistry::drain`] (or shutdown) has been requested.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        let inner = self.inner.lock();
        inner.draining || inner.shutdown
    }

    /// Blocks until drain or shutdown is requested.
    pub fn wait_drain_requested(&self) {
        let mut inner = self.inner.lock();
        while !inner.draining && !inner.shutdown {
            inner = self.wakeup.wait(inner);
        }
    }

    /// Current queue depth (jobs admitted but not yet claimed).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Number of jobs currently `Running`.
    #[must_use]
    pub fn running_count(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .jobs
            .values()
            .filter(|j| matches!(j.status(), JobStatus::Running))
            .count()
    }

    /// Wakes every worker and makes subsequent [`JobRegistry::claim`]
    /// calls return `None`. Queued jobs are left `Queued` (a restart could
    /// resubmit them); running campaigns are not interrupted here — the
    /// server cancels them separately when shutting down.
    pub fn shutdown(&self) {
        self.inner.lock().shutdown = true;
        self.wakeup.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: String, tenant: &str) -> Job {
        let table = scanft_fsm::benchmarks::build("lion").unwrap();
        Job::new(
            id,
            JobSpec {
                tenant: tenant.to_owned(),
                circuit: "lion".to_owned(),
                kind: JobKind::Simulate,
                key: ContentKey::of_table(&table),
                table,
                tests: None,
                journal_path: String::new(),
            },
        )
    }

    #[test]
    fn admit_claim_complete_round_trip() {
        let registry = JobRegistry::new();
        let admitted = registry.admit(|id| job(id, "t1"));
        assert_eq!(admitted.id, "job-1");
        assert_eq!(admitted.status(), JobStatus::Queued);
        assert_eq!(registry.active_for("t1"), 1);
        assert_eq!(registry.active_for("t2"), 0);

        let claimed = registry.claim().unwrap();
        assert_eq!(claimed.id, "job-1");
        assert_eq!(claimed.status(), JobStatus::Running);
        claimed.set_status(JobStatus::Completed {
            coverage: 99.5,
            detected: 199,
            faults: 200,
            completed_units: 4,
            units: 4,
        });
        assert_eq!(registry.active_for("t1"), 0);
        let json = claimed.to_json();
        assert!(json.contains("\"status\":\"completed\""));
        assert!(json.contains("\"coverage\":99.5000"));
    }

    #[test]
    fn cancelled_while_queued_is_skipped_by_claim() {
        let registry = JobRegistry::new();
        let first = registry.admit(|id| job(id, "t"));
        let second = registry.admit(|id| job(id, "t"));
        first.cancel.cancel();
        let claimed = registry.claim().unwrap();
        assert_eq!(claimed.id, second.id);
        assert_eq!(first.status(), JobStatus::Cancelled);
    }

    #[test]
    fn terminal_states_are_sticky() {
        let registry = JobRegistry::new();
        let job = registry.admit(|id| job(id, "t"));
        job.set_status(JobStatus::Cancelled);
        job.set_status(JobStatus::Completed {
            coverage: 1.0,
            detected: 1,
            faults: 1,
            completed_units: 1,
            units: 1,
        });
        assert_eq!(job.status(), JobStatus::Cancelled);
    }

    #[test]
    fn shutdown_unblocks_claim() {
        let registry = Arc::new(JobRegistry::new());
        let clone = Arc::clone(&registry);
        let waiter = std::thread::spawn(move || clone.claim());
        std::thread::sleep(std::time::Duration::from_millis(20));
        registry.shutdown();
        assert!(waiter.join().unwrap().is_none());
    }

    fn guarded(registry: &JobRegistry, key: &str, sticky: bool, max_queue: usize) -> AdmitOutcome {
        registry
            .admit_guarded(key, sticky, max_queue, |id| {
                (job(id, "t"), ".i 1\n".to_owned(), None)
            })
            .unwrap()
    }

    #[test]
    fn sticky_keys_dedupe_forever_content_keys_only_while_active() {
        let registry = JobRegistry::new();
        let AdmitOutcome::Fresh(first) = guarded(&registry, "sticky-k", true, 100) else {
            panic!("first admission must be fresh")
        };
        // Duplicate while queued: deduped either way.
        assert!(matches!(
            guarded(&registry, "sticky-k", true, 100),
            AdmitOutcome::Deduped(j) if j.id == first.id
        ));
        first.set_status(JobStatus::Cancelled);
        // Sticky: still deduped after the job is terminal.
        assert!(matches!(
            guarded(&registry, "sticky-k", true, 100),
            AdmitOutcome::Deduped(j) if j.id == first.id
        ));

        let AdmitOutcome::Fresh(content) = guarded(&registry, "hash-k", false, 100) else {
            panic!("fresh")
        };
        assert!(matches!(
            guarded(&registry, "hash-k", false, 100),
            AdmitOutcome::Deduped(j) if j.id == content.id
        ));
        content.set_status(JobStatus::Cancelled);
        // Content-hash default: a terminal job no longer blocks rerun.
        assert!(matches!(
            guarded(&registry, "hash-k", false, 100),
            AdmitOutcome::Fresh(j) if j.id != content.id
        ));
    }

    #[test]
    fn queue_bound_sheds_and_drain_refuses_admission() {
        let registry = JobRegistry::new();
        assert!(matches!(
            guarded(&registry, "a", false, 1),
            AdmitOutcome::Fresh(_)
        ));
        assert!(matches!(
            guarded(&registry, "b", false, 1),
            AdmitOutcome::QueueFull(1)
        ));
        registry.drain();
        assert!(registry.is_draining());
        assert!(matches!(
            guarded(&registry, "c", false, 100),
            AdmitOutcome::Draining
        ));
        // Drain leaves queued work queued and stops claiming.
        assert_eq!(registry.queue_depth(), 1);
        assert!(registry.claim().is_none());
        assert_eq!(registry.get("job-1").unwrap().status(), JobStatus::Queued);
    }

    /// The retry-during-drain regression: a duplicate POST must be deduped
    /// to its original job even while the registry is draining or the
    /// queue is full — those refusals only bound *new* work, and 503ing
    /// the retry would strand the client without its job id exactly when
    /// clients retry.
    #[test]
    fn dedupe_wins_over_drain_and_queue_full_refusals() {
        let registry = JobRegistry::new();
        let AdmitOutcome::Fresh(first) = guarded(&registry, "k", true, 1) else {
            panic!("fresh")
        };
        // Queue is at its bound of 1: fresh keys shed, duplicates dedupe.
        assert!(matches!(
            guarded(&registry, "other", false, 1),
            AdmitOutcome::QueueFull(1)
        ));
        assert!(matches!(
            guarded(&registry, "k", true, 1),
            AdmitOutcome::Deduped(j) if j.id == first.id
        ));
        registry.drain();
        assert!(matches!(
            guarded(&registry, "fresh-during-drain", false, 100),
            AdmitOutcome::Draining
        ));
        assert!(matches!(
            guarded(&registry, "k", true, 100),
            AdmitOutcome::Deduped(j) if j.id == first.id
        ));
    }

    #[test]
    fn wait_drain_requested_wakes_on_drain() {
        let registry = Arc::new(JobRegistry::new());
        let clone = Arc::clone(&registry);
        let waiter = std::thread::spawn(move || clone.wait_drain_requested());
        std::thread::sleep(std::time::Duration::from_millis(20));
        registry.drain();
        waiter.join().unwrap();
    }

    #[test]
    fn restore_bumps_the_id_counter_and_reestablishes_idempotency() {
        let registry = JobRegistry::new();
        let restored = registry.restore(job("job-7".into(), "t"), true, Some(("k7", true)));
        assert_eq!(restored.status(), JobStatus::Queued);
        assert_eq!(registry.queue_depth(), 1);
        // The idempotency mapping survives restore.
        assert!(matches!(
            guarded(&registry, "k7", true, 100),
            AdmitOutcome::Deduped(j) if j.id == "job-7"
        ));
        // Fresh ids start above the restored ordinal.
        let fresh = registry.admit(|id| job(id, "t"));
        assert_eq!(fresh.id, "job-8");
    }

    /// Satellite regression for the old `expect("registry poisoned")`:
    /// a panic inside `admit`'s build closure unwinds while the registry
    /// lock is held. With the non-poisoning facade mutex the registry
    /// stays usable; before the fix every later call died on poisoning.
    #[test]
    fn registry_survives_a_panicking_admit_closure() {
        let registry = JobRegistry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.admit(|_| panic!("submission validation bug"));
        }));
        assert!(result.is_err(), "the panic propagates to the submitter");

        // The registry is not wedged: admission and claim still work.
        let admitted = registry.admit(|id| job(id, "t"));
        assert_eq!(admitted.status(), JobStatus::Queued);
        let claimed = registry.claim().unwrap();
        assert_eq!(claimed.id, admitted.id);
        registry.shutdown();
        assert!(registry.claim().is_none());
    }
}
