//! The server's durable job write-ahead log.
//!
//! Every admission, claim, cancellation, and terminal transition is
//! appended (and flushed) to `<state-dir>/jobs.wal` *before* the action is
//! acknowledged, in the harness's torn-write-tolerant JSONL shape: one
//! header line, then one event per line, each written whole under a lock.
//! A crash can therefore damage at most the line being written, and replay
//! of the surviving prefix reconstructs the registry exactly:
//!
//! ```text
//! {"wal":"scanft-server","version":1}
//! {"event":"admit","id":"job-1","tenant":"default","circuit":"bbtas","kind":"simulate","idem":"...","sticky":false,"journal":"/x/job-1.jsonl","kiss":".i 2\n..."}
//! {"event":"claim","id":"job-1"}
//! {"event":"done","id":"job-1","status":"completed","coverage":97.25,"detected":389,"faults":400,"completed_units":7,"units":7}
//! ```
//!
//! The admit event embeds the canonical submission itself (KISS2 text and
//! the optional test section, JSON-escaped onto one line), so recovery
//! needs nothing but the state directory: no job body ever exists only in
//! memory once its 202 has been sent.
//!
//! race-lint: deterministic-replay — WAL replay must be a pure function of
//! the log bytes; nothing here may read a wall clock.

use crate::job::{JobKind, JobStatus};
use crate::json::{field_f64, field_str, field_u64};
use scanft_harness::{FailurePlan, JsonlWriter, ScanftError};

/// Magic value identifying a server WAL header line.
const MAGIC: &str = "scanft-server";
/// Format version, bumped on incompatible event changes.
const VERSION: u64 = 1;

/// The payload of an admission event: everything recovery needs to rebuild
/// the job, including the submission text itself.
#[derive(Debug, Clone, PartialEq)]
pub struct WalAdmit {
    /// Assigned job id (`job-<n>`).
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Circuit name (the KISS2 parse name).
    pub circuit: String,
    /// Campaign kind.
    pub kind: JobKind,
    /// Idempotency key the job was admitted under.
    pub idem: String,
    /// Whether the key is sticky (client-supplied `Idempotency-Key`,
    /// deduped forever) or the content-hash default (deduped only while
    /// the job is active).
    pub sticky: bool,
    /// Journal file the campaign writes.
    pub journal_path: String,
    /// The KISS2 section of the submission body.
    pub kiss: String,
    /// The `.tests` section of the submission body, when present.
    pub tests: Option<String>,
}

/// One replayed WAL event.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEvent {
    /// A job was admitted (logged before the 202 was sent).
    Admit(
        /// The admission payload.
        WalAdmit,
    ),
    /// A worker claimed the job (logged before it starts running).
    Claim(
        /// The job id.
        String,
    ),
    /// `DELETE /jobs/:id` requested cancellation.
    Cancel(
        /// The job id.
        String,
    ),
    /// The job reached a terminal status.
    Done(
        /// The job id.
        String,
        /// The terminal status (completed / cancelled / failed).
        JobStatus,
    ),
}

impl WalEvent {
    /// The id of the job the event concerns.
    #[must_use]
    pub fn id(&self) -> &str {
        match self {
            WalEvent::Admit(admit) => &admit.id,
            WalEvent::Claim(id) | WalEvent::Cancel(id) | WalEvent::Done(id, _) => id,
        }
    }
}

/// A parsed WAL: header validity, intact events in file order, and damage
/// counters.
#[derive(Debug, Clone, Default)]
pub struct Wal {
    /// Whether an intact header line was seen.
    pub header_ok: bool,
    /// Every event that parsed back intact, in file order.
    pub events: Vec<WalEvent>,
    /// Non-empty lines that failed to parse (torn writes).
    pub skipped_lines: usize,
}

/// The per-job outcome of replaying a WAL.
#[derive(Debug, Clone)]
pub struct WalJob {
    /// The admission payload.
    pub admit: WalAdmit,
    /// A claim event was logged (the job was running or about to run).
    pub claimed: bool,
    /// A cancel event was logged.
    pub cancelled: bool,
    /// The terminal status, when a done event was logged.
    pub done: Option<JobStatus>,
}

/// The registry state a WAL replays into.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Jobs in admission order.
    pub jobs: Vec<WalJob>,
    /// Highest assigned `job-<n>` ordinal (the id counter resumes above it).
    pub next_id: u64,
    /// Claim/cancel/done events whose admit line did not survive. Only a
    /// torn admit line can orphan events, so in practice this is 0 or
    /// tail-adjacent damage.
    pub orphan_events: usize,
}

/// Parses a WAL from its textual contents. Never fails: damaged lines are
/// counted in [`Wal::skipped_lines`] and otherwise ignored, exactly like
/// the campaign journal reader.
#[must_use]
pub fn read_wal(text: &str) -> Wal {
    let mut wal = Wal::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if parse_wal_header(line) {
            wal.header_ok = true;
        } else if let Some(event) = parse_event(line) {
            wal.events.push(event);
        } else {
            wal.skipped_lines += 1;
        }
    }
    wal
}

/// Reads and parses a WAL file. A missing file is an empty WAL (first boot).
pub fn read_wal_file(path: &str) -> Result<Wal, ScanftError> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(read_wal(&text)),
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(Wal::default()),
        Err(source) => Err(ScanftError::Io {
            path: path.to_owned(),
            source,
        }),
    }
}

/// Replays parsed events into per-job state plus the resumed id counter.
#[must_use]
pub fn replay(wal: &Wal) -> WalReplay {
    let mut out = WalReplay::default();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for event in &wal.events {
        if let Some(n) = event
            .id()
            .strip_prefix("job-")
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.next_id = out.next_id.max(n);
        }
        match event {
            WalEvent::Admit(admit) => {
                index.insert(admit.id.clone(), out.jobs.len());
                out.jobs.push(WalJob {
                    admit: admit.clone(),
                    claimed: false,
                    cancelled: false,
                    done: None,
                });
            }
            WalEvent::Claim(id) => match index.get(id) {
                Some(&i) => out.jobs[i].claimed = true,
                None => out.orphan_events += 1,
            },
            WalEvent::Cancel(id) => match index.get(id) {
                Some(&i) => out.jobs[i].cancelled = true,
                None => out.orphan_events += 1,
            },
            WalEvent::Done(id, status) => match index.get(id) {
                Some(&i) => out.jobs[i].done = Some(status.clone()),
                None => out.orphan_events += 1,
            },
        }
    }
    out
}

fn parse_wal_header(line: &str) -> bool {
    line.starts_with('{')
        && field_str(line, "wal").as_deref() == Some(MAGIC)
        && field_u64(line, "version") == Some(VERSION)
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    let pattern = format!("\"{key}\":");
    let rest = &line[line.find(&pattern)? + pattern.len()..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn parse_event(line: &str) -> Option<WalEvent> {
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    let id = field_str(line, "id")?;
    match field_str(line, "event")?.as_str() {
        "admit" => Some(WalEvent::Admit(WalAdmit {
            id,
            tenant: field_str(line, "tenant")?,
            circuit: field_str(line, "circuit")?,
            kind: JobKind::from_param(&field_str(line, "kind")?)?,
            idem: field_str(line, "idem")?,
            sticky: field_bool(line, "sticky")?,
            journal_path: field_str(line, "journal")?,
            kiss: field_str(line, "kiss")?,
            tests: field_str(line, "tests"),
        })),
        "claim" => Some(WalEvent::Claim(id)),
        "cancel" => Some(WalEvent::Cancel(id)),
        "done" => {
            let status = match field_str(line, "status")?.as_str() {
                "completed" => JobStatus::Completed {
                    coverage: field_f64(line, "coverage")?,
                    detected: usize::try_from(field_u64(line, "detected")?).ok()?,
                    faults: usize::try_from(field_u64(line, "faults")?).ok()?,
                    completed_units: usize::try_from(field_u64(line, "completed_units")?).ok()?,
                    units: usize::try_from(field_u64(line, "units")?).ok()?,
                },
                "cancelled" => JobStatus::Cancelled,
                "failed" => JobStatus::Failed(field_str(line, "message")?),
                _ => return None,
            };
            Some(WalEvent::Done(id, status))
        }
        _ => None,
    }
}

fn admit_json(admit: &WalAdmit) -> String {
    let esc = scanft_obs::escape_json_string;
    let mut out = format!(
        "{{\"event\":\"admit\",\"id\":\"{}\",\"tenant\":\"{}\",\"circuit\":\"{}\",\"kind\":\"{}\",\"idem\":\"{}\",\"sticky\":{},\"journal\":\"{}\",\"kiss\":\"{}\"",
        esc(&admit.id),
        esc(&admit.tenant),
        esc(&admit.circuit),
        admit.kind.name(),
        esc(&admit.idem),
        admit.sticky,
        esc(&admit.journal_path),
        esc(&admit.kiss),
    );
    if let Some(tests) = &admit.tests {
        out.push_str(&format!(",\"tests\":\"{}\"", esc(tests)));
    }
    out.push('}');
    out
}

fn done_json(id: &str, status: &JobStatus) -> String {
    let esc = scanft_obs::escape_json_string;
    let mut out = format!(
        "{{\"event\":\"done\",\"id\":\"{}\",\"status\":\"{}\"",
        esc(id),
        status.name()
    );
    match status {
        JobStatus::Completed {
            coverage,
            detected,
            faults,
            completed_units,
            units,
        } => out.push_str(&format!(
            ",\"coverage\":{coverage},\"detected\":{detected},\"faults\":{faults},\"completed_units\":{completed_units},\"units\":{units}"
        )),
        JobStatus::Failed(message) => {
            out.push_str(&format!(",\"message\":\"{}\"", esc(message)));
        }
        _ => {}
    }
    out.push('}');
    out
}

/// The append side of the WAL: one flushed line per event, written whole
/// under the writer's lock so concurrent admissions never interleave.
#[derive(Debug)]
pub struct WalWriter {
    inner: JsonlWriter,
}

impl WalWriter {
    /// Opens (appending) the WAL at `path`, writing the header line first
    /// when the file is new or empty.
    ///
    /// A crash can leave a torn final line (no trailing newline). That
    /// fragment must be truncated away *before* the first append: writing
    /// onto it would merge the garbage with the next event onto one line,
    /// so an acknowledged event would fail to parse on the following
    /// replay — and its later claim/done events would become orphans that
    /// make startup refuse forever.
    pub fn open(path: &str) -> Result<Self, ScanftError> {
        let io_err = |source| ScanftError::Io {
            path: path.to_owned(),
            source,
        };
        let existing = match std::fs::read(path) {
            Ok(bytes) => {
                if bytes.last().is_some_and(|&b| b != b'\n') {
                    let start = bytes
                        .iter()
                        .rposition(|&b| b == b'\n')
                        .map_or(0, |p| p + 1);
                    // The unterminated tail must be judged exactly the way
                    // `read_wal` judges it, so repair and replay agree on
                    // which events exist.
                    let tail = String::from_utf8_lossy(&bytes[start..]);
                    let tail = tail.trim();
                    if parse_wal_header(tail) || parse_event(tail).is_some() {
                        // The line made it out whole; only its newline was
                        // lost. Terminate it — truncating would delete an
                        // event the replay just restored.
                        use std::io::Write as _;
                        let mut file = std::fs::OpenOptions::new()
                            .append(true)
                            .open(path)
                            .map_err(io_err)?;
                        file.write_all(b"\n")
                            .and_then(|()| file.sync_data())
                            .map_err(io_err)?;
                        bytes.len() as u64 + 1
                    } else {
                        // Garbage fragment: drop it, keeping the longest
                        // prefix of complete lines (possibly empty, if
                        // even the header write was torn).
                        std::fs::OpenOptions::new()
                            .write(true)
                            .open(path)
                            .and_then(|file| file.set_len(start as u64))
                            .map_err(io_err)?;
                        start as u64
                    }
                } else {
                    bytes.len() as u64
                }
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => 0,
            Err(source) => return Err(io_err(source)),
        };
        // The WAL is the server's source of truth across restarts, so it
        // takes the fsync-per-event grade: an acknowledged admission must
        // survive an OS crash, not just a killed process.
        let writer = WalWriter {
            inner: JsonlWriter::append_to(path)?.with_fsync(),
        };
        if existing == 0 {
            writer
                .inner
                .write_line_whole(&format!("{{\"wal\":\"{MAGIC}\",\"version\":{VERSION}}}"))
                .map_err(|source| ScanftError::Io {
                    path: path.to_owned(),
                    source,
                })?;
        }
        Ok(writer)
    }

    /// Attaches a chaos plan (crash drills tear/kill WAL appends too).
    #[must_use]
    pub fn with_chaos(mut self, plan: FailurePlan) -> Self {
        self.inner = self.inner.with_chaos(plan);
        self
    }

    /// Logs an admission. Called (and flushed) before the 202 is sent.
    pub fn log_admit(&self, admit: &WalAdmit) -> std::io::Result<()> {
        self.inner.write_line(&admit_json(admit))
    }

    /// Logs a claim. Called before the worker starts the campaign.
    pub fn log_claim(&self, id: &str) -> std::io::Result<()> {
        self.inner.write_line(&format!(
            "{{\"event\":\"claim\",\"id\":\"{}\"}}",
            scanft_obs::escape_json_string(id)
        ))
    }

    /// Logs a cancellation request.
    pub fn log_cancel(&self, id: &str) -> std::io::Result<()> {
        self.inner.write_line(&format!(
            "{{\"event\":\"cancel\",\"id\":\"{}\"}}",
            scanft_obs::escape_json_string(id)
        ))
    }

    /// Logs a terminal transition.
    pub fn log_done(&self, id: &str, status: &JobStatus) -> std::io::Result<()> {
        self.inner.write_line(&done_json(id, status))
    }

    /// Number of event lines appended by this writer.
    #[must_use]
    pub fn events_written(&self) -> u64 {
        self.inner.lines_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(id: &str, idem: &str) -> WalAdmit {
        WalAdmit {
            id: id.to_owned(),
            tenant: "default".to_owned(),
            circuit: "bbtas".to_owned(),
            kind: JobKind::Simulate,
            idem: idem.to_owned(),
            sticky: false,
            journal_path: format!("/tmp/{id}.jsonl"),
            kiss: ".i 2\n.o 2\n-- 0 a a 00\n".to_owned(),
            tests: Some(".circuit bbtas\na | 00 | a\n".to_owned()),
        }
    }

    fn temp_wal(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("scanft-wal-{tag}-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn events_round_trip_through_the_file() {
        let path = temp_wal("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let wal = WalWriter::open(&path).unwrap();
            wal.log_admit(&admit("job-1", "k1")).unwrap();
            wal.log_claim("job-1").unwrap();
            wal.log_admit(&admit("job-2", "k2")).unwrap();
            wal.log_cancel("job-2").unwrap();
            wal.log_done(
                "job-1",
                &JobStatus::Completed {
                    coverage: 97.25,
                    detected: 389,
                    faults: 400,
                    completed_units: 7,
                    units: 7,
                },
            )
            .unwrap();
            assert_eq!(wal.events_written(), 5);
        }
        // Reopening an existing WAL appends without a second header.
        {
            let wal = WalWriter::open(&path).unwrap();
            wal.log_done("job-2", &JobStatus::Cancelled).unwrap();
        }
        let parsed = read_wal_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(parsed.header_ok);
        assert_eq!(parsed.skipped_lines, 0);
        assert_eq!(parsed.events.len(), 6);
        assert_eq!(parsed.events[0], WalEvent::Admit(admit("job-1", "k1")));
        assert_eq!(parsed.events[1], WalEvent::Claim("job-1".into()));

        let state = replay(&parsed);
        assert_eq!(state.next_id, 2);
        assert_eq!(state.orphan_events, 0);
        assert_eq!(state.jobs.len(), 2);
        assert!(state.jobs[0].claimed && !state.jobs[0].cancelled);
        assert!(matches!(
            state.jobs[0].done,
            Some(JobStatus::Completed { detected: 389, .. })
        ));
        assert!(state.jobs[1].cancelled && !state.jobs[1].claimed);
        assert_eq!(state.jobs[1].done, Some(JobStatus::Cancelled));
    }

    #[test]
    fn missing_file_is_an_empty_wal() {
        let wal = read_wal_file("/nonexistent/scanft/jobs.wal").unwrap();
        assert!(!wal.header_ok);
        assert!(wal.events.is_empty());
    }

    #[test]
    fn torn_tail_is_skipped_and_counted() {
        let mut text = format!("{{\"wal\":\"{MAGIC}\",\"version\":{VERSION}}}\n");
        text.push_str(&admit_json(&admit("job-1", "k")));
        text.push('\n');
        // A torn claim line: everything before it still replays.
        text.push_str("{\"event\":\"claim\",\"id\":\"jo");
        let wal = read_wal(&text);
        assert!(wal.header_ok);
        assert_eq!(wal.skipped_lines, 1);
        assert_eq!(wal.events.len(), 1);
        let state = replay(&wal);
        assert_eq!(state.jobs.len(), 1);
        assert!(!state.jobs[0].claimed);
    }

    /// The high-severity regression: reopening a WAL whose final line was
    /// torn mid-append must truncate the fragment first. Without the
    /// repair, the first post-restart event lands on the same line as the
    /// garbage, the merged line is lost on the next replay, and the torn
    /// job's other events become startup-refusing orphans.
    #[test]
    fn reopening_after_a_torn_tail_truncates_before_appending() {
        use std::io::Write as _;
        let path = temp_wal("torn-reopen");
        std::fs::remove_file(&path).ok();
        {
            let wal = WalWriter::open(&path).unwrap();
            wal.log_admit(&admit("job-1", "k1")).unwrap();
        }
        // Crash mid-append: half an admit line, no trailing newline.
        {
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            file.write_all(b"{\"event\":\"admit\",\"id\":\"jo").unwrap();
        }
        // Restart: reopen and append a fresh event.
        {
            let wal = WalWriter::open(&path).unwrap();
            wal.log_admit(&admit("job-2", "k2")).unwrap();
            wal.log_claim("job-2").unwrap();
        }
        let parsed = read_wal_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(parsed.header_ok);
        assert_eq!(parsed.skipped_lines, 0, "the fragment is gone, not fused");
        assert_eq!(
            parsed.events,
            vec![
                WalEvent::Admit(admit("job-1", "k1")),
                WalEvent::Admit(admit("job-2", "k2")),
                WalEvent::Claim("job-2".into()),
            ]
        );
        let state = replay(&parsed);
        assert_eq!(state.orphan_events, 0);
        assert_eq!(state.jobs.len(), 2);
    }

    /// A final line that survived whole but lost only its trailing newline
    /// is an event `read_wal` already replays — reopening must terminate
    /// it, not truncate it (that would delete a restored event from disk).
    #[test]
    fn reopening_terminates_a_complete_line_missing_its_newline() {
        use std::io::Write as _;
        let path = temp_wal("unterminated");
        std::fs::remove_file(&path).ok();
        {
            let wal = WalWriter::open(&path).unwrap();
            wal.log_admit(&admit("job-1", "k1")).unwrap();
        }
        // Crash right between the event bytes and the newline.
        {
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            file.flush().unwrap();
        }
        {
            let wal = WalWriter::open(&path).unwrap();
            wal.log_claim("job-1").unwrap();
        }
        let parsed = read_wal_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(parsed.skipped_lines, 0);
        assert_eq!(
            parsed.events,
            vec![
                WalEvent::Admit(admit("job-1", "k1")),
                WalEvent::Claim("job-1".into()),
            ]
        );
    }

    /// Even the header write can tear (crash on first boot): reopening
    /// must truncate to empty and write a fresh header.
    #[test]
    fn reopening_after_a_torn_header_starts_clean() {
        let path = temp_wal("torn-header");
        std::fs::write(&path, "{\"wal\":\"scanft-ser").unwrap();
        {
            let wal = WalWriter::open(&path).unwrap();
            wal.log_admit(&admit("job-1", "k")).unwrap();
        }
        let parsed = read_wal_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(parsed.header_ok, "a fresh header replaces the torn one");
        assert_eq!(parsed.skipped_lines, 0);
        assert_eq!(parsed.events.len(), 1);
    }

    /// WAL round trip over every control character: `escape_json_string`
    /// emits `\u00XX` for most of them, and the reader must decode that —
    /// a submission containing a vertical tab used to come back as the
    /// literal text `u000b` and poison every later startup.
    #[test]
    fn control_characters_in_submissions_round_trip() {
        let raw: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let mut a = admit("job-9", "k");
        a.kiss = format!(".i 1{raw}\n");
        a.tests = Some(raw.clone());
        a.idem = raw.clone();
        let line = admit_json(&a);
        assert_eq!(parse_event(&line), Some(WalEvent::Admit(a)));
    }

    #[test]
    fn failed_status_and_missing_tests_round_trip() {
        let mut a = admit("job-3", "k");
        a.tests = None;
        a.sticky = true;
        let line = admit_json(&a);
        let parsed = parse_event(&line).unwrap();
        assert_eq!(parsed, WalEvent::Admit(a));

        let done = done_json("job-3", &JobStatus::Failed("boom \"quoted\"".into()));
        match parse_event(&done).unwrap() {
            WalEvent::Done(id, JobStatus::Failed(msg)) => {
                assert_eq!(id, "job-3");
                assert_eq!(msg, "boom \"quoted\"");
            }
            other => panic!("wrong event: {other:?}"),
        }
    }
}
