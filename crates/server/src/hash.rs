//! Content addressing for the artifact cache.
//!
//! The cache key must identify the *semantic* circuit, not the submission:
//! two uploads of the same machine — different file names, comment lines,
//! whitespace, state orderings produced by the same canonical writer — must
//! collide, and changing a single transition must not. The key is therefore
//! a 128-bit FNV-1a hash of `scanft_fsm::kiss::write` applied to the parsed
//! table: the canonical KISS2 form contains every transition, output and
//! reset state, and nothing about where the text came from.
//!
//! FNV-1a is not cryptographic; the cache is a performance layer shared by
//! cooperating tenants, not an integrity boundary, and 128 bits keeps
//! accidental collisions out of reach of any realistic corpus size.

use scanft_fsm::StateTable;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content hash identifying a canonicalized circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentKey(pub u128);

impl ContentKey {
    /// Hashes arbitrary bytes (FNV-1a 128).
    #[must_use]
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= u128::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        ContentKey(h)
    }

    /// The key of a circuit: the hash of its canonical KISS2 form with
    /// comment lines stripped. The canonical writer records the table's
    /// name only in a leading `#` comment, so dropping comments makes the
    /// key name-independent — renaming a submission cannot miss the cache,
    /// and two differently-named uploads of the same machine share one
    /// artifact entry — while every transition, output and reset state
    /// still feeds the hash.
    #[must_use]
    pub fn of_table(table: &StateTable) -> Self {
        let canonical = scanft_fsm::kiss::write(table);
        let mut h = FNV_OFFSET;
        for line in canonical.lines().filter(|l| !l.starts_with('#')) {
            for &b in line.as_bytes() {
                h ^= u128::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
            h ^= u128::from(b'\n');
            h = h.wrapping_mul(FNV_PRIME);
        }
        ContentKey(h)
    }

    /// Fixed-width lowercase hex form (used in status JSON and logs).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for ContentKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a 128 of the empty string is the offset basis.
        assert_eq!(ContentKey::of_bytes(b"").0, FNV_OFFSET);
        assert_ne!(ContentKey::of_bytes(b"a"), ContentKey::of_bytes(b"b"));
        assert_ne!(ContentKey::of_bytes(b"ab"), ContentKey::of_bytes(b"ba"));
    }

    #[test]
    fn key_ignores_name_but_not_structure() {
        let bbtas = scanft_fsm::benchmarks::build("bbtas").unwrap();
        // Re-parse the canonical text under a different name: same key.
        let renamed = scanft_fsm::kiss::parse_with(
            &scanft_fsm::kiss::write(&bbtas),
            "uploaded-as-something-else.kiss2",
            scanft_fsm::kiss::Completion::SelfLoop,
        )
        .unwrap();
        assert_eq!(ContentKey::of_table(&bbtas), ContentKey::of_table(&renamed));
        // A different machine must differ.
        let dk27 = scanft_fsm::benchmarks::build("dk27").unwrap();
        assert_ne!(ContentKey::of_table(&bbtas), ContentKey::of_table(&dk27));
    }

    #[test]
    fn hex_is_stable_width() {
        let hex = ContentKey::of_bytes(b"x").to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex, format!("{}", ContentKey::of_bytes(b"x")));
    }
}
