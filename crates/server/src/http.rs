//! A minimal, hand-rolled HTTP/1.1 layer over blocking TCP.
//!
//! The workspace is offline and dependency-free, so there is no hyper or
//! tokio here: one thread per connection, `Connection: close` on every
//! response, and only the slice of HTTP/1.1 the job API needs — a request
//! line, headers, an optional `Content-Length` body. What it *does* take
//! seriously is abuse resistance on the read path:
//!
//! - the header section is capped at [`MAX_HEAD_BYTES`];
//! - the body is capped by the server's configured limit, checked against
//!   `Content-Length` *before* any body byte is read, so an oversized
//!   upload is refused with 413 at the cost of one header read;
//! - every socket read runs under the configured read timeout, so a stalled
//!   client cannot pin a connection thread (408 and close).
//!
//! Responses are either a single in-memory body or a caller-driven stream
//! (the events endpoint writes a header with `Connection: close` and then
//! streams JSONL until the job ends — close-delimited framing, which
//! HTTP/1.1 permits exactly when the connection is not reused).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request path (query string split off into `query`).
    pub path: String,
    /// Raw query string after `?`, empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one HTTP status.
#[derive(Debug)]
pub enum HttpError {
    /// Request head or body exceeded a size limit → 413.
    TooLarge(
        /// Which limit was exceeded.
        String,
    ),
    /// The client stalled past the read timeout → 408.
    Timeout,
    /// The request does not parse as HTTP/1.x → 400.
    Malformed(
        /// What was wrong.
        String,
    ),
    /// The client closed the connection before a full request arrived.
    Closed,
}

impl HttpError {
    /// The HTTP status code this read failure is answered with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::TooLarge(_) => 413,
            HttpError::Timeout => 408,
            HttpError::Malformed(_) => 400,
            HttpError::Closed => 400,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::Closed => write!(f, "connection closed mid-request"),
        }
    }
}

fn is_timeout(err: &std::io::Error) -> bool {
    matches!(
        err.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads and parses one request from the stream.
///
/// `read_timeout` bounds every individual socket read; `max_body` bounds
/// the `Content-Length` (checked before the body is read).
///
/// # Errors
///
/// Returns an [`HttpError`] naming the refusal; the caller answers with
/// [`HttpError::status`] and closes.
pub fn read_request(
    stream: &mut TcpStream,
    read_timeout: Duration,
    max_body: usize,
) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(read_timeout)).ok();

    // Read the head byte-wise-ish (small buffered chunks would over-read
    // into the body); the head is tiny and this path is not hot.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        match stream.read(&mut byte) {
            Ok(0) => {
                return if head.is_empty() {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::Malformed("truncated request head".into()))
                };
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Malformed(format!("read error: {e}"))),
        }
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1") => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    let _ = version;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::Malformed("truncated body".into())),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Malformed(format!("read error: {e}"))),
        }
    }

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
    })
}

/// The standard reason phrase for the handful of statuses the server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response (status, `Content-Type`, body) and flushes.
/// Every response carries `Connection: close`; the server is strictly
/// one-request-per-connection.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with(stream, status, content_type, &[], body)
}

/// Like [`write_response`], with extra response headers (e.g.
/// `Retry-After` on drain/shed refusals).
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a streaming-response head (no `Content-Length`; the body is
/// delimited by connection close). The caller then writes body bytes
/// directly and closes the stream when done.
pub fn write_stream_head(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n",
        reason(status),
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn serve_one(
        read_timeout: Duration,
        max_body: usize,
    ) -> (
        std::net::SocketAddr,
        std::thread::JoinHandle<Result<Request, HttpError>>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().map_err(|_| HttpError::Closed)?;
            read_request(&mut stream, read_timeout, max_body)
        });
        (addr, handle)
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let (addr, handle) = serve_one(Duration::from_secs(5), 1024);
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(
                b"POST /jobs?kind=simulate HTTP/1.1\r\nHost: x\r\nX-Scanft-Tenant: t1\r\nContent-Length: 5\r\n\r\nhello",
            )
            .unwrap();
        let request = handle.join().unwrap().unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/jobs");
        assert_eq!(request.query, "kind=simulate");
        assert_eq!(request.header("x-scanft-tenant"), Some("t1"));
        assert_eq!(request.body, b"hello");
    }

    #[test]
    fn oversized_content_length_is_refused_before_the_body() {
        let (addr, handle) = serve_one(Duration::from_secs(5), 10);
        let mut client = TcpStream::connect(addr).unwrap();
        // Only the head is sent; the server must refuse on the declared
        // length without waiting for (never-sent) body bytes.
        client
            .write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 999\r\n\r\n")
            .unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn stalled_client_times_out() {
        let (addr, handle) = serve_one(Duration::from_millis(50), 1024);
        let client = TcpStream::connect(addr).unwrap();
        // Send nothing; hold the socket open past the timeout.
        let err = handle.join().unwrap().unwrap_err();
        assert_eq!(err.status(), 408);
        drop(client);
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        let (addr, handle) = serve_one(Duration::from_secs(5), 1024);
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert_eq!(err.status(), 400);
    }
}
