//! Cube and cover representation for two-level logic.
//!
//! The combinational logic of a scanned machine computes, from the `pi`
//! primary-input bits and `sv` present-state bits, each primary-output bit
//! and each next-state bit. Every such single-output function is represented
//! as a *cover*: a set of [`Cube`]s whose union is the ON-set.

use scanft_fsm::{StateTable, Transition};

use crate::Encoding;

/// A product term over up to 32 binary variables.
///
/// Variable `v` is *cared for* when bit `v` of `mask` is set; its required
/// value is then bit `v` of `value`. Bits of `value` outside `mask` are kept
/// at zero (canonical form), so cubes compare by `(mask, value)` equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    /// Care mask: which variables are tested.
    pub mask: u32,
    /// Required values on the cared-for variables.
    pub value: u32,
}

impl Cube {
    /// A minterm cube: all `num_vars` variables cared for.
    #[must_use]
    pub fn minterm(point: u32, num_vars: usize) -> Self {
        let mask = mask_for(num_vars);
        Cube {
            mask,
            value: point & mask,
        }
    }

    /// Whether the cube contains the point `point` (a full assignment).
    #[must_use]
    pub fn contains_point(self, point: u32) -> bool {
        point & self.mask == self.value
    }

    /// Whether `self` contains every point of `other` (single-cube
    /// containment: `other`'s cares include `self`'s and agree on them).
    #[must_use]
    pub fn covers(self, other: Cube) -> bool {
        self.mask & other.mask == self.mask && other.value & self.mask == self.value
    }

    /// Number of don't-care variables among `num_vars`.
    #[must_use]
    pub fn free_vars(self, num_vars: usize) -> u32 {
        (mask_for(num_vars) & !self.mask).count_ones()
    }
}

fn mask_for(num_vars: usize) -> u32 {
    debug_assert!(num_vars <= 32);
    if num_vars == 32 {
        u32::MAX
    } else {
        (1u32 << num_vars) - 1
    }
}

/// A single-output function as a set of product terms over `num_vars`
/// variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    /// Product terms; the function is their OR.
    pub cubes: Vec<Cube>,
    /// Number of variables (`pi + sv` in this crate's use).
    pub num_vars: usize,
}

impl Cover {
    /// Evaluates the cover at a point.
    #[must_use]
    pub fn eval(&self, point: u32) -> bool {
        self.cubes.iter().any(|c| c.contains_point(point))
    }

    /// Total number of literals (cared-for variables summed over cubes),
    /// a standard two-level cost measure.
    #[must_use]
    pub fn literal_count(&self) -> usize {
        self.cubes
            .iter()
            .map(|c| c.mask.count_ones() as usize)
            .sum()
    }
}

/// The extracted per-bit covers of a machine's combinational logic:
/// first `num_outputs` covers compute the primary outputs, the following
/// `num_state_vars` covers compute the next-state bits.
#[derive(Debug, Clone)]
pub struct LogicSpec {
    /// One cover per output bit, then one per next-state bit.
    pub covers: Vec<Cover>,
    /// Number of primary-output covers at the front of `covers`.
    pub num_outputs: usize,
    /// Number of next-state covers at the back of `covers`.
    pub num_state_vars: usize,
    /// Number of input variables (`pi + sv`).
    pub num_vars: usize,
    /// Number of primary inputs (low-order variables).
    pub num_inputs: usize,
}

/// Extracts minterm covers for every output and next-state bit of `table`
/// under `encoding`.
///
/// Variable order: bits `0..pi` are the primary inputs, bits `pi..pi+sv`
/// are the present-state code bits. A transition from state `s` under input
/// `i` contributes the point `i | (encode(s) << pi)`.
///
/// # Panics
///
/// Panics if `pi + sv > 32` (far beyond the supported benchmark sizes).
#[must_use]
pub fn extract(table: &StateTable, encoding: Encoding) -> LogicSpec {
    let pi = table.num_inputs();
    let sv = table.num_state_vars();
    let num_vars = pi + sv;
    assert!(num_vars <= 32, "pi + sv must be at most 32");
    let no = table.num_outputs();

    let mut covers: Vec<Vec<Cube>> = vec![Vec::new(); no + sv];
    let mut add_point = |transition: &Transition| {
        let code = encoding.encode(transition.from);
        let point = transition.input | (code << pi) as u32;
        for (z, cover) in covers.iter_mut().enumerate().take(no) {
            if transition.output >> z & 1 == 1 {
                cover.push(Cube::minterm(point, num_vars));
            }
        }
        let ns_code = encoding.encode(transition.to);
        for v in 0..sv {
            if ns_code >> v & 1 == 1 {
                covers[no + v].push(Cube::minterm(point, num_vars));
            }
        }
    };
    for t in table.transitions() {
        add_point(&t);
    }

    LogicSpec {
        covers: covers
            .into_iter()
            .map(|cubes| Cover { cubes, num_vars })
            .collect(),
        num_outputs: no,
        num_state_vars: sv,
        num_vars,
        num_inputs: pi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_minterm_and_containment() {
        let m = Cube::minterm(0b101, 3);
        assert_eq!(m.mask, 0b111);
        assert!(m.contains_point(0b101));
        assert!(!m.contains_point(0b100));
        let wide = Cube {
            mask: 0b001,
            value: 0b001,
        };
        assert!(wide.covers(m));
        assert!(!m.covers(wide));
        assert!(wide.covers(wide));
        assert_eq!(wide.free_vars(3), 2);
        assert_eq!(m.free_vars(3), 0);
    }

    #[test]
    fn extract_lion_binary() {
        let lion = scanft_fsm::benchmarks::lion();
        let spec = extract(&lion, Encoding::Binary);
        assert_eq!(spec.num_vars, 4);
        assert_eq!(spec.covers.len(), 3); // 1 output + 2 next-state bits
                                          // Output z: 1 for 12 of the 16 transitions (Table 1: four zeros).
        assert_eq!(spec.covers[0].cubes.len(), 12);
        // Every cover evaluates like the table.
        for t in lion.transitions() {
            let point = t.input | (t.from << 2);
            assert_eq!(spec.covers[0].eval(point), t.output & 1 == 1);
            assert_eq!(spec.covers[1].eval(point), t.to & 1 == 1);
            assert_eq!(spec.covers[2].eval(point), t.to >> 1 & 1 == 1);
        }
    }

    #[test]
    fn extract_respects_encoding() {
        let lion = scanft_fsm::benchmarks::lion();
        let spec = extract(&lion, Encoding::Gray);
        for t in lion.transitions() {
            let point = t.input | ((Encoding::Gray.encode(t.from) as u32) << 2);
            let ns_code = Encoding::Gray.encode(t.to);
            assert_eq!(spec.covers[1].eval(point), ns_code & 1 == 1);
            assert_eq!(spec.covers[2].eval(point), ns_code >> 1 & 1 == 1);
        }
    }

    #[test]
    fn literal_count_of_minterm_cover() {
        let lion = scanft_fsm::benchmarks::lion();
        let spec = extract(&lion, Encoding::Binary);
        assert_eq!(spec.covers[0].literal_count(), 12 * 4);
    }
}
