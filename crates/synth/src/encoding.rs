use scanft_fsm::StateId;

/// State-encoding scheme: the mapping between functional states (state-table
/// row indices) and the binary codes held in the scan flip-flops.
///
/// Both schemes are bijections over the full `2^sv` code space, so scan can
/// load every functional state and every scanned-out code decodes to a
/// state — the setting the paper's benchmark machines are in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Encoding {
    /// The state index itself is the code.
    #[default]
    Binary,
    /// Reflected Gray code: `code = s ^ (s >> 1)`. Adjacent state indices
    /// differ in one flip-flop, producing a structurally different
    /// implementation than [`Encoding::Binary`] for the same machine.
    Gray,
}

impl Encoding {
    /// Code stored in the flip-flops for functional state `state`.
    #[must_use]
    pub fn encode(self, state: StateId) -> u64 {
        match self {
            Encoding::Binary => u64::from(state),
            Encoding::Gray => u64::from(state ^ (state >> 1)),
        }
    }

    /// Functional state whose code is `code`.
    ///
    /// Inverse of [`Encoding::encode`]; `code` must fit in `sv` bits for the
    /// machine at hand (the caller guarantees this — codes come from `sv`
    /// flip-flops).
    #[must_use]
    pub fn decode(self, code: u64) -> StateId {
        match self {
            Encoding::Binary => code as StateId,
            Encoding::Gray => {
                let mut s = code;
                let mut shift = 1;
                while shift < 64 {
                    s ^= s >> shift;
                    shift <<= 1;
                }
                s as StateId
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_is_identity() {
        for s in 0..64u32 {
            assert_eq!(Encoding::Binary.encode(s), u64::from(s));
            assert_eq!(Encoding::Binary.decode(u64::from(s)), s);
        }
    }

    #[test]
    fn gray_is_a_bijection_with_unit_distance() {
        let mut seen = [false; 64];
        for s in 0..64u32 {
            let code = Encoding::Gray.encode(s);
            assert!(code < 64);
            assert!(!seen[code as usize], "duplicate code {code}");
            seen[code as usize] = true;
            assert_eq!(Encoding::Gray.decode(code), s);
            if s > 0 {
                let prev = Encoding::Gray.encode(s - 1);
                assert_eq!((code ^ prev).count_ones(), 1);
            }
        }
    }

    #[test]
    fn gray_differs_from_binary() {
        assert_ne!(Encoding::Gray.encode(2), Encoding::Binary.encode(2));
    }
}
