//! Technology mapping: covers to a bounded-fanin gate netlist.
//!
//! Each single-output cover becomes a two-level AND-OR structure decomposed
//! into gates of at most `max_fanin` inputs:
//!
//! - one shared inverter per input variable (created lazily);
//! - one AND tree per cube with more than one literal;
//! - one OR tree per cover with more than one cube.
//!
//! Constant functions get an explicit generator: constant 0 is `AND(x, !x)`
//! and constant 1 is `OR(x, !x)` over the first input variable. These
//! introduce combinationally redundant faults — exactly the kind the paper
//! reports as undetectable under full scan in Table 6.

use scanft_netlist::{GateKind, NetId, NetlistBuilder};

use crate::cover::{Cover, LogicSpec};

/// Netlist-construction state shared across all covers of one machine.
pub(crate) struct Mapper {
    pub(crate) builder: NetlistBuilder,
    max_fanin: usize,
    /// Lazily-created inverted versions of the input variables.
    inverted: Vec<Option<NetId>>,
    num_vars: usize,
    num_inputs: usize,
}

impl Mapper {
    pub(crate) fn new(spec: &LogicSpec, max_fanin: usize) -> Self {
        Mapper {
            builder: NetlistBuilder::new(spec.num_inputs, spec.num_vars - spec.num_inputs),
            max_fanin,
            inverted: vec![None; spec.num_vars],
            num_vars: spec.num_vars,
            num_inputs: spec.num_inputs,
        }
    }

    /// Net for variable `v` (PI for low variables, PPI above).
    fn var_net(&self, v: usize) -> NetId {
        if v < self.num_inputs {
            self.builder.pi(v)
        } else {
            self.builder.ppi(v - self.num_inputs)
        }
    }

    /// Net for the literal of variable `v` with the given phase, creating a
    /// shared inverter on first negative use.
    fn literal(&mut self, v: usize, positive: bool) -> NetId {
        let net = self.var_net(v);
        if positive {
            return net;
        }
        if let Some(inv) = self.inverted[v] {
            return inv;
        }
        let inv = self
            .builder
            .add_gate(GateKind::Not, &[net])
            .expect("inverter of an existing net");
        self.inverted[v] = Some(inv);
        inv
    }

    /// Maps one cover to a net computing it.
    pub(crate) fn map_cover(&mut self, cover: &Cover) -> NetId {
        if cover.cubes.is_empty() {
            return self.constant(false);
        }
        // A single cube with no cares is the constant-1 function.
        if cover.cubes.iter().any(|c| c.mask == 0) {
            return self.constant(true);
        }
        let mut cube_nets: Vec<NetId> = Vec::with_capacity(cover.cubes.len());
        for cube in &cover.cubes {
            let mut literals: Vec<NetId> = Vec::new();
            for v in 0..self.num_vars {
                if cube.mask >> v & 1 == 1 {
                    let positive = cube.value >> v & 1 == 1;
                    literals.push(self.literal(v, positive));
                }
            }
            let net = self
                .builder
                .add_tree(GateKind::And, &literals, self.max_fanin)
                .expect("cube has at least one literal");
            cube_nets.push(net);
        }
        self.builder
            .add_tree(GateKind::Or, &cube_nets, self.max_fanin)
            .expect("cover has at least one cube")
    }

    /// Builds a constant net as `AND(x1, !x1)` or `OR(x1, !x1)`.
    fn constant(&mut self, one: bool) -> NetId {
        let x = self.var_net(0);
        let nx = self.literal(0, false);
        let kind = if one { GateKind::Or } else { GateKind::And };
        self.builder
            .add_gate(kind, &[x, nx])
            .expect("constant generator over existing nets")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::{extract, Cube};
    use crate::Encoding;

    fn eval_net(netlist: &scanft_netlist::Netlist, point: u32, net: NetId) -> bool {
        let mut vals = vec![0u64; netlist.num_nets()];
        let inputs = netlist.num_pis() + netlist.num_ppis();
        for (v, val) in vals.iter_mut().enumerate().take(inputs) {
            *val = if point >> v & 1 == 1 { u64::MAX } else { 0 };
        }
        for (g, gate) in netlist.gates().iter().enumerate() {
            let ins: Vec<u64> = gate.inputs.iter().map(|&i| vals[i as usize]).collect();
            vals[netlist.gate_output(g) as usize] = gate.kind.eval_words(&ins);
        }
        vals[net as usize] != 0
    }

    #[test]
    fn maps_simple_cover_correctly() {
        // f = x1'x2 + x3 over 3 PIs (variables v0=x1 ... note net naming is
        // 1-based, variables 0-based).
        let cover = Cover {
            cubes: vec![
                Cube {
                    mask: 0b011,
                    value: 0b010,
                },
                Cube {
                    mask: 0b100,
                    value: 0b100,
                },
            ],
            num_vars: 3,
        };
        let spec = crate::cover::LogicSpec {
            covers: vec![cover.clone()],
            num_outputs: 1,
            num_state_vars: 0,
            num_vars: 3,
            num_inputs: 3,
        };
        let mut mapper = Mapper::new(&spec, 4);
        let net = mapper.map_cover(&cover);
        let n = mapper.builder.finish(vec![net], vec![]).unwrap();
        for p in 0..8u32 {
            assert_eq!(eval_net(&n, p, net), cover.eval(p), "p={p:03b}");
        }
    }

    #[test]
    fn constant_covers() {
        let spec = crate::cover::LogicSpec {
            covers: vec![],
            num_outputs: 0,
            num_state_vars: 0,
            num_vars: 2,
            num_inputs: 2,
        };
        let zero_cover = Cover {
            cubes: vec![],
            num_vars: 2,
        };
        let one_cover = Cover {
            cubes: vec![Cube { mask: 0, value: 0 }],
            num_vars: 2,
        };
        let mut mapper = Mapper::new(&spec, 4);
        let z = mapper.map_cover(&zero_cover);
        let o = mapper.map_cover(&one_cover);
        let n = mapper.builder.finish(vec![z, o], vec![]).unwrap();
        for p in 0..4u32 {
            assert!(!eval_net(&n, p, z));
            assert!(eval_net(&n, p, o));
        }
    }

    #[test]
    fn inverters_are_shared() {
        let lion = scanft_fsm::benchmarks::lion();
        let spec = extract(&lion, Encoding::Binary);
        let mut mapper = Mapper::new(&spec, 4);
        for cover in &spec.covers {
            mapper.map_cover(cover);
        }
        let inverter_count = mapper
            .builder
            .clone()
            .finish(vec![], vec![])
            .unwrap()
            .stats()
            .num_not;
        // At most one inverter per variable.
        assert!(inverter_count <= spec.num_vars);
    }
}
