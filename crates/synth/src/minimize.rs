//! Two-level cover minimization.
//!
//! The benchmark machines are completely specified, so there is no don't-care
//! set and Quine–McCluskey-style minimization is *exact*:
//!
//! 1. **prime generation** — repeatedly merge pairs of cubes that agree on
//!    their care mask and differ in exactly one care bit, then drop cubes
//!    contained in others;
//! 2. **cover selection** — essential primes first (a minterm covered by
//!    exactly one prime forces it), then greedy set cover over the
//!    remaining minterms;
//! 3. **irredundancy pass** — drop any selected prime whose minterms are
//!    already covered by the rest.
//!
//! Step 2–3 matter beyond area: a redundant cover produces undetectable
//! stuck-at faults in the mapped netlist, which would distort the paper's
//! Table 6 coverage figures.

use std::collections::{HashMap, HashSet};

use crate::cover::{Cover, Cube};

/// Minimizes a cover exactly: prime generation, essential/greedy cover
/// selection, and an irredundancy pass.
///
/// The returned cover computes exactly the same function (verified by the
/// crate's property tests), is deterministic, and no selected cube is
/// covered by the union of the others.
///
/// # Examples
///
/// ```
/// use scanft_synth::cover::{Cover, Cube};
/// use scanft_synth::minimize::minimize_cover;
///
/// // f = m0 + m1 over 2 variables: minimizes to a single cube (!v1).
/// let cover = Cover {
///     cubes: vec![Cube::minterm(0b00, 2), Cube::minterm(0b01, 2)],
///     num_vars: 2,
/// };
/// let min = minimize_cover(&cover);
/// assert_eq!(min.cubes, vec![Cube { mask: 0b10, value: 0b00 }]);
/// ```
#[must_use]
pub fn minimize_cover(cover: &Cover) -> Cover {
    let primes = prime_cover(cover);
    select_cover(cover, primes)
}

/// Step 1: all prime-ish implicants by iterated distance-1 merging plus
/// containment removal.
fn prime_cover(cover: &Cover) -> Cover {
    let num_vars = cover.num_vars;
    let mut current: HashSet<Cube> = cover.cubes.iter().copied().collect();

    // Iterated merging: each pass merges same-mask cubes differing in one
    // care bit into a cube with that bit dropped. Merged parents are
    // removed (their union is the child); unmerged cubes survive.
    loop {
        let mut next: HashSet<Cube> = HashSet::with_capacity(current.len());
        let mut merged_any = false;
        let mut consumed: HashSet<Cube> = HashSet::new();
        let mut cubes: Vec<Cube> = current.iter().copied().collect();
        cubes.sort_unstable();
        for &cube in &cubes {
            let mut cube_merged = false;
            for v in 0..num_vars as u32 {
                let bit = 1u32 << v;
                if cube.mask & bit == 0 {
                    continue;
                }
                let partner = Cube {
                    mask: cube.mask,
                    value: cube.value ^ bit,
                };
                if current.contains(&partner) {
                    cube_merged = true;
                    next.insert(Cube {
                        mask: cube.mask & !bit,
                        value: cube.value & !bit,
                    });
                }
            }
            if cube_merged {
                consumed.insert(cube);
                merged_any = true;
            }
        }
        for &cube in &cubes {
            if !consumed.contains(&cube) {
                next.insert(cube);
            }
        }
        current = next;
        if !merged_any {
            break;
        }
    }

    // Containment removal: drop any cube covered by another.
    let mut cubes: Vec<Cube> = current.into_iter().collect();
    cubes.sort_unstable_by_key(|c| (c.mask.count_ones(), c.mask, c.value));
    let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
    'outer: for &cube in &cubes {
        for &k in &kept {
            if k.covers(cube) {
                continue 'outer;
            }
        }
        kept.push(cube);
    }
    kept.sort_unstable();
    Cover {
        cubes: kept,
        num_vars,
    }
}

/// Steps 2–3: essential primes, greedy set cover, irredundancy pass.
///
/// `original` supplies the minterms to cover (its cubes need not be
/// minterms; each cube is expanded).
fn select_cover(original: &Cover, primes: Cover) -> Cover {
    if primes.cubes.len() <= 1 {
        return primes;
    }
    let num_vars = primes.num_vars;

    // All ON-set minterms, deduplicated.
    let mut minterms: Vec<u32> = Vec::new();
    {
        let mut seen: HashSet<u32> = HashSet::new();
        for cube in &original.cubes {
            for point in enumerate_cube(*cube, num_vars) {
                if seen.insert(point) {
                    minterms.push(point);
                }
            }
        }
        minterms.sort_unstable();
    }

    // Which primes cover each minterm.
    let mut covered_by: HashMap<u32, Vec<usize>> = HashMap::with_capacity(minterms.len());
    for (k, prime) in primes.cubes.iter().enumerate() {
        for point in enumerate_cube(*prime, num_vars) {
            covered_by.entry(point).or_default().push(k);
        }
    }

    let mut selected = vec![false; primes.cubes.len()];
    let mut covered: HashSet<u32> = HashSet::with_capacity(minterms.len());

    // Essential primes.
    for &m in &minterms {
        let list = &covered_by[&m];
        if list.len() == 1 {
            selected[list[0]] = true;
        }
    }
    for (k, prime) in primes.cubes.iter().enumerate() {
        if selected[k] {
            covered.extend(enumerate_cube(*prime, num_vars));
        }
    }

    // Greedy cover of the rest: repeatedly pick the prime covering the most
    // uncovered minterms (ties: smaller index, i.e. canonical cube order).
    loop {
        let mut gain = vec![0usize; primes.cubes.len()];
        let mut remaining = 0usize;
        for &m in &minterms {
            if covered.contains(&m) {
                continue;
            }
            remaining += 1;
            for &k in &covered_by[&m] {
                if !selected[k] {
                    gain[k] += 1;
                }
            }
        }
        if remaining == 0 {
            break;
        }
        let best = (0..primes.cubes.len())
            .filter(|&k| !selected[k])
            .max_by_key(|&k| (gain[k], usize::MAX - k))
            .expect("uncovered minterms imply an unselected prime");
        debug_assert!(gain[best] > 0);
        selected[best] = true;
        covered.extend(enumerate_cube(primes.cubes[best], num_vars));
    }

    // Irredundancy pass: drop selected primes (largest mask first, i.e.
    // most-specific first) whose minterms are covered by the others.
    let mut order: Vec<usize> = (0..primes.cubes.len()).filter(|&k| selected[k]).collect();
    order.sort_unstable_by_key(|&k| std::cmp::Reverse(primes.cubes[k].mask.count_ones()));
    for &k in &order {
        let others_cover = enumerate_cube(primes.cubes[k], num_vars)
            .into_iter()
            .all(|m| {
                covered_by[&m]
                    .iter()
                    .any(|&other| other != k && selected[other])
            });
        if others_cover {
            selected[k] = false;
        }
    }

    let mut cubes: Vec<Cube> = primes
        .cubes
        .into_iter()
        .zip(selected)
        .filter_map(|(c, s)| s.then_some(c))
        .collect();
    cubes.sort_unstable();
    Cover { cubes, num_vars }
}

/// All points of a cube (2^free of them).
fn enumerate_cube(cube: Cube, num_vars: usize) -> Vec<u32> {
    let free: Vec<u32> = (0..num_vars as u32)
        .filter(|&v| cube.mask >> v & 1 == 0)
        .collect();
    let mut points = Vec::with_capacity(1 << free.len());
    for combo in 0..(1u32 << free.len()) {
        let mut p = cube.value;
        for (k, &v) in free.iter().enumerate() {
            if combo >> k & 1 == 1 {
                p |= 1 << v;
            }
        }
        points.push(p);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::Cube;

    fn minterm_cover(points: &[u32], num_vars: usize) -> Cover {
        Cover {
            cubes: points.iter().map(|&p| Cube::minterm(p, num_vars)).collect(),
            num_vars,
        }
    }

    fn eval_all(cover: &Cover) -> Vec<bool> {
        (0..1u32 << cover.num_vars).map(|p| cover.eval(p)).collect()
    }

    #[test]
    fn tautology_collapses_to_one_cube() {
        let cover = minterm_cover(&[0, 1, 2, 3], 2);
        let min = minimize_cover(&cover);
        assert_eq!(min.cubes, vec![Cube { mask: 0, value: 0 }]);
    }

    #[test]
    fn classic_qm_example() {
        // f(a,b,c,d) = Σ m(0,1,2,5,6,7,8,9,10,14) — a standard QM exercise.
        let points = [0u32, 1, 2, 5, 6, 7, 8, 9, 10, 14];
        let cover = minterm_cover(&points, 4);
        let min = minimize_cover(&cover);
        // Function preserved exactly.
        assert_eq!(eval_all(&cover), eval_all(&min));
        // Known prime implicant count for this function is 7; with all
        // primes kept minus containment the cover is small.
        assert!(min.cubes.len() <= 7, "{} cubes", min.cubes.len());
        assert!(min.literal_count() < cover.literal_count());
    }

    #[test]
    fn empty_cover_stays_empty() {
        let cover = minterm_cover(&[], 3);
        let min = minimize_cover(&cover);
        assert!(min.cubes.is_empty());
    }

    #[test]
    fn single_minterm_untouched() {
        let cover = minterm_cover(&[5], 3);
        let min = minimize_cover(&cover);
        assert_eq!(min.cubes, vec![Cube::minterm(5, 3)]);
    }

    #[test]
    fn function_preserved_exhaustively() {
        // All 256 3-variable functions.
        for f in 0u32..256 {
            let points: Vec<u32> = (0..8).filter(|&p| f >> p & 1 == 1).collect();
            let cover = minterm_cover(&points, 3);
            let min = minimize_cover(&cover);
            for p in 0..8u32 {
                assert_eq!(min.eval(p), f >> p & 1 == 1, "f={f:08b} p={p}");
            }
            // No cube contains another.
            for (i, a) in min.cubes.iter().enumerate() {
                for (j, b) in min.cubes.iter().enumerate() {
                    if i != j {
                        assert!(!a.covers(*b), "f={f:08b}");
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let points = [0u32, 1, 2, 5, 6, 7, 8, 9, 10, 14];
        let a = minimize_cover(&minterm_cover(&points, 4));
        let b = minimize_cover(&minterm_cover(&points, 4));
        assert_eq!(a, b);
    }
}
