//! FSM-to-gate-level synthesis substrate for `scanft`.
//!
//! The paper evaluates functional tests by fault-simulating them on
//! gate-level implementations of the benchmark machines. This crate builds
//! those implementations from a [`scanft_fsm::StateTable`]:
//!
//! 1. **state encoding** ([`Encoding`]): assign each state a binary code on
//!    `N_SV` flip-flops (binary or Gray; the choice produces genuinely
//!    different implementations, which the paper's implementation-
//!    independence claim is about);
//! 2. **cover extraction** ([`cover`]): one sum-of-products cover per output
//!    and next-state bit over the `pi + sv` input variables;
//! 3. **two-level minimization** ([`minimize`]): exact Quine–McCluskey-style
//!    cube merging with containment removal (the machines are completely
//!    specified, so merged covers equal the original functions exactly);
//! 4. **technology mapping** ([`map`]): shared input inverters, bounded-fanin
//!    AND/OR trees per cube and per output.
//!
//! The result is a [`SynthesizedCircuit`]: a scan-bounded netlist plus the
//! encoding needed to translate between functional states and scan codes.
//!
//! # Example
//!
//! ```
//! use scanft_synth::{synthesize, SynthConfig};
//!
//! let lion = scanft_fsm::benchmarks::lion();
//! let circuit = synthesize(&lion, &SynthConfig::default());
//! assert_eq!(circuit.netlist().num_ppis(), 2); // two state variables
//! // The netlist computes exactly the state table:
//! assert!(scanft_synth::verify_against_table(&circuit, &lion, None).is_ok());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cover;
pub mod map;
pub mod minimize;

mod circuit;
mod encoding;
mod verify;

pub use circuit::{synthesize, SynthConfig, SynthesizedCircuit};
pub use encoding::Encoding;
pub use verify::{verify_against_table, MismatchReport};
