use scanft_fsm::{InputId, StateId, StateTable};

use crate::circuit::SynthesizedCircuit;

/// A disagreement between a synthesized netlist and its source state table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MismatchReport {
    /// Functional state where the disagreement occurs.
    pub state: StateId,
    /// Input combination where the disagreement occurs.
    pub input: InputId,
    /// Expected (table) next state and output.
    pub expected: (StateId, u64),
    /// Actual (netlist) next state and output.
    pub actual: (StateId, u64),
}

/// Exhaustively (or up to `limit` transitions) checks that `circuit`
/// computes exactly the behaviour of `table`.
///
/// Evaluates the netlist for every `(state, input)` pair in canonical order,
/// comparing the primary-output word and decoded next state. Pass
/// `limit = None` for a complete check or `Some(n)` to check only the first
/// `n` transitions (useful for very large machines).
///
/// # Errors
///
/// Returns the first [`MismatchReport`] found.
///
/// # Examples
///
/// ```
/// use scanft_synth::{synthesize, verify_against_table, SynthConfig};
///
/// let lion = scanft_fsm::benchmarks::lion();
/// let c = synthesize(&lion, &SynthConfig::default());
/// verify_against_table(&c, &lion, None).expect("synthesis is correct");
/// ```
pub fn verify_against_table(
    circuit: &SynthesizedCircuit,
    table: &StateTable,
    limit: Option<usize>,
) -> Result<(), MismatchReport> {
    let netlist = circuit.netlist();
    let pi = netlist.num_pis();
    let sv = netlist.num_ppis();
    let mut values = vec![0u64; netlist.num_nets()];
    let limit = limit.unwrap_or(usize::MAX);

    for (count, t) in table.transitions().enumerate() {
        if count >= limit {
            break;
        }
        let code = circuit.encode_state(t.from);
        for k in 0..pi {
            values[netlist.pi(k) as usize] = if t.input >> k & 1 == 1 { u64::MAX } else { 0 };
        }
        for k in 0..sv {
            values[netlist.ppi(k) as usize] = if code >> k & 1 == 1 { u64::MAX } else { 0 };
        }
        for (g, gate) in netlist.gates().iter().enumerate() {
            let mut acc: Option<u64> = None;
            // Evaluate without allocating: fold over inputs by kind.
            let word = match gate.kind {
                scanft_netlist::GateKind::Not => !values[gate.inputs[0] as usize],
                scanft_netlist::GateKind::Buf => values[gate.inputs[0] as usize],
                kind => {
                    for &i in &gate.inputs {
                        let v = values[i as usize];
                        acc = Some(match (acc, kind) {
                            (None, _) => v,
                            (Some(a), scanft_netlist::GateKind::And)
                            | (Some(a), scanft_netlist::GateKind::Nand) => a & v,
                            (Some(a), scanft_netlist::GateKind::Or)
                            | (Some(a), scanft_netlist::GateKind::Nor) => a | v,
                            (Some(a), scanft_netlist::GateKind::Xor) => a ^ v,
                            _ => unreachable!("unary kinds handled above"),
                        });
                    }
                    let a = acc.expect("gates have at least one input");
                    match gate.kind {
                        scanft_netlist::GateKind::Nand | scanft_netlist::GateKind::Nor => !a,
                        _ => a,
                    }
                }
            };
            values[netlist.gate_output(g) as usize] = word;
        }
        let mut out_word: u64 = 0;
        for (z, &net) in netlist.pos().iter().enumerate() {
            if values[net as usize] != 0 {
                out_word |= 1 << z;
            }
        }
        let mut ns_code: u64 = 0;
        for (v, &net) in netlist.ppos().iter().enumerate() {
            if values[net as usize] != 0 {
                ns_code |= 1 << v;
            }
        }
        let actual_state = circuit.decode_state(ns_code);
        if out_word != t.output || actual_state != t.to {
            return Err(MismatchReport {
                state: t.from,
                input: t.input,
                expected: (t.to, t.output),
                actual: (actual_state, out_word),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, Encoding, SynthConfig};

    #[test]
    fn lion_verifies_under_all_configs() {
        let lion = scanft_fsm::benchmarks::lion();
        for encoding in [Encoding::Binary, Encoding::Gray] {
            for minimize in [true, false] {
                for max_fanin in [2, 4] {
                    let c = synthesize(
                        &lion,
                        &SynthConfig {
                            encoding,
                            minimize,
                            max_fanin,
                        },
                    );
                    verify_against_table(&c, &lion, None).unwrap_or_else(|m| {
                        panic!("{encoding:?} minimize={minimize} fanin={max_fanin}: {m:?}")
                    });
                }
            }
        }
    }

    #[test]
    fn several_benchmarks_verify() {
        for name in ["bbtas", "dk15", "dk27", "shiftreg", "beecount", "mc", "tav"] {
            let t = scanft_fsm::benchmarks::build(name).unwrap();
            let c = synthesize(&t, &SynthConfig::default());
            verify_against_table(&c, &t, None).unwrap_or_else(|m| panic!("{name}: {m:?}"));
        }
    }

    #[test]
    fn limit_short_circuits() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        assert!(verify_against_table(&c, &lion, Some(3)).is_ok());
    }
}
