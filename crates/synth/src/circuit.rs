use scanft_fsm::{StateId, StateTable};
use scanft_netlist::Netlist;

use crate::cover::{extract, LogicSpec};
use crate::map::Mapper;
use crate::minimize::minimize_cover;
use crate::Encoding;

/// Configuration of the synthesis flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthConfig {
    /// State encoding scheme.
    pub encoding: Encoding,
    /// Whether to run two-level minimization before mapping. Disabling it
    /// produces a (much larger) one-gate-per-minterm implementation — useful
    /// as a structurally different second implementation of the same
    /// machine.
    pub minimize: bool,
    /// Maximum gate fanin for the mapped AND/OR trees (at least 2).
    pub max_fanin: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            encoding: Encoding::Binary,
            minimize: true,
            max_fanin: 4,
        }
    }
}

/// A gate-level, full-scan implementation of a state table.
///
/// Wraps the combinational [`Netlist`] together with the state encoding so
/// functional states can be translated to scan codes and back.
#[derive(Debug, Clone)]
pub struct SynthesizedCircuit {
    netlist: Netlist,
    encoding: Encoding,
    name: String,
    num_states: usize,
}

impl SynthesizedCircuit {
    /// The combinational netlist between the scan flip-flops.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The state encoding used.
    #[must_use]
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Name of the machine this implements.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of functional states of the source machine.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Scan code for functional state `state`.
    #[must_use]
    pub fn encode_state(&self, state: StateId) -> u64 {
        self.encoding.encode(state)
    }

    /// Functional state for scan code `code`.
    #[must_use]
    pub fn decode_state(&self, code: u64) -> StateId {
        self.encoding.decode(code)
    }
}

/// Synthesizes a gate-level full-scan implementation of `table`.
///
/// The flow is: extract per-bit covers under the configured encoding,
/// optionally minimize each cover, then map to shared-inverter, bounded-
/// fanin AND-OR logic.
///
/// # Panics
///
/// Panics if `config.max_fanin < 2` or if `pi + sv > 32`.
///
/// # Examples
///
/// ```
/// use scanft_synth::{synthesize, Encoding, SynthConfig};
///
/// let lion = scanft_fsm::benchmarks::lion();
/// let binary = synthesize(&lion, &SynthConfig::default());
/// let gray = synthesize(&lion, &SynthConfig { encoding: Encoding::Gray, ..SynthConfig::default() });
/// // Two different implementations of the same machine.
/// assert_ne!(binary.netlist().num_gates(), 0);
/// assert_ne!(binary.netlist(), gray.netlist());
/// ```
#[must_use]
pub fn synthesize(table: &StateTable, config: &SynthConfig) -> SynthesizedCircuit {
    assert!(config.max_fanin >= 2, "max_fanin must be at least 2");
    let obs = scanft_obs::global();
    let span = obs.timer("synth.synthesize").start();
    let mut spec: LogicSpec = extract(table, config.encoding);
    if config.minimize {
        for cover in &mut spec.covers {
            *cover = minimize_cover(cover);
        }
    }
    let literals: usize = spec
        .covers
        .iter()
        .map(crate::cover::Cover::literal_count)
        .sum();
    obs.gauge("synth.literals").set(literals as u64);
    let mut mapper = Mapper::new(&spec, config.max_fanin);
    let nets: Vec<_> = spec.covers.iter().map(|c| mapper.map_cover(c)).collect();
    let (po_nets, ppo_nets) = nets.split_at(spec.num_outputs);
    let netlist = mapper
        .builder
        .finish(po_nets.to_vec(), ppo_nets.to_vec())
        .expect("mapped nets exist");
    obs.gauge("synth.gates").set(netlist.num_gates() as u64);
    obs.counter("synth.circuits").inc();
    drop(span);
    SynthesizedCircuit {
        netlist,
        encoding: config.encoding,
        name: table.name().to_owned(),
        num_states: table.num_states(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lion_synthesis_shape() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let n = c.netlist();
        assert_eq!(n.num_pis(), 2);
        assert_eq!(n.num_ppis(), 2);
        assert_eq!(n.pos().len(), 1);
        assert_eq!(n.ppos().len(), 2);
        assert!(n.num_gates() > 0);
    }

    #[test]
    fn minimization_shrinks_netlist() {
        let lion = scanft_fsm::benchmarks::lion();
        let minimized = synthesize(&lion, &SynthConfig::default());
        let flat = synthesize(
            &lion,
            &SynthConfig {
                minimize: false,
                ..SynthConfig::default()
            },
        );
        assert!(minimized.netlist().num_gates() < flat.netlist().num_gates());
    }

    #[test]
    fn encode_decode_round_trip() {
        let lion = scanft_fsm::benchmarks::lion();
        for enc in [Encoding::Binary, Encoding::Gray] {
            let c = synthesize(
                &lion,
                &SynthConfig {
                    encoding: enc,
                    ..SynthConfig::default()
                },
            );
            for s in 0..4u32 {
                assert_eq!(c.decode_state(c.encode_state(s)), s);
            }
        }
    }

    #[test]
    #[should_panic(expected = "max_fanin")]
    fn rejects_unit_fanin() {
        let lion = scanft_fsm::benchmarks::lion();
        let _ = synthesize(
            &lion,
            &SynthConfig {
                max_fanin: 1,
                ..SynthConfig::default()
            },
        );
    }
}
