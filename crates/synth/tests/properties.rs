//! Randomized property tests: synthesized netlists compute exactly their
//! source state tables, for random machines across all configurations.
//!
//! Driven by the in-repo SplitMix64 RNG with fixed seeds so the workspace
//! builds and tests fully offline (no external `proptest`).

#![allow(clippy::unwrap_used)]
use scanft_fsm::benchmarks::random_machine;
use scanft_fsm::rng::SplitMix64;
use scanft_synth::{synthesize, verify_against_table, Encoding, SynthConfig};

#[test]
fn netlist_equals_table() {
    let mut rng = SplitMix64::new(0x5717_0001);
    for _ in 0..48 {
        let pi = 1 + rng.next_below(3) as usize;
        let po = 1 + rng.next_below(3) as usize;
        let states = 2 + rng.next_below(7) as usize;
        let table = random_machine("prop", pi, po, states, rng.next_u64()).unwrap();
        let config = SynthConfig {
            encoding: if rng.chance(1, 2) {
                Encoding::Gray
            } else {
                Encoding::Binary
            },
            minimize: rng.chance(1, 2),
            max_fanin: 2 + rng.next_below(4) as usize,
        };
        let circuit = synthesize(&table, &config);
        assert!(verify_against_table(&circuit, &table, None).is_ok());
        // All mapped gates respect the fanin bound.
        for gate in circuit.netlist().gates() {
            assert!(gate.inputs.len() <= config.max_fanin);
        }
    }
}

/// Minimization never increases literal cost and preserves functions.
#[test]
fn minimize_is_sound_and_non_worsening() {
    let mut rng = SplitMix64::new(0x5717_0002);
    for _ in 0..32 {
        let pi = 1 + rng.next_below(3) as usize;
        let states = 2 + rng.next_below(7) as usize;
        let table = random_machine("prop", pi, 2, states, rng.next_u64()).unwrap();
        let spec = scanft_synth::cover::extract(&table, Encoding::Binary);
        for cover in &spec.covers {
            let min = scanft_synth::minimize::minimize_cover(cover);
            assert!(min.literal_count() <= cover.literal_count());
            for p in 0..(1u32 << spec.num_vars) {
                assert_eq!(min.eval(p), cover.eval(p), "point {p}");
            }
        }
    }
}
