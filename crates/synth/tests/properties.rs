//! Property-based tests: synthesized netlists compute exactly their source
//! state tables, for random machines across all configurations.

use proptest::prelude::*;
use scanft_fsm::benchmarks::random_machine;
use scanft_synth::{synthesize, verify_against_table, Encoding, SynthConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn netlist_equals_table(
        pi in 1usize..=3,
        po in 1usize..=3,
        states in 2usize..=8,
        seed in any::<u64>(),
        gray in any::<bool>(),
        minimize in any::<bool>(),
        max_fanin in 2usize..=5,
    ) {
        let table = random_machine("prop", pi, po, states, seed).unwrap();
        let config = SynthConfig {
            encoding: if gray { Encoding::Gray } else { Encoding::Binary },
            minimize,
            max_fanin,
        };
        let circuit = synthesize(&table, &config);
        prop_assert!(verify_against_table(&circuit, &table, None).is_ok());
        // All mapped gates respect the fanin bound.
        for gate in circuit.netlist().gates() {
            prop_assert!(gate.inputs.len() <= max_fanin);
        }
    }

    /// Minimization never increases literal cost and preserves functions.
    #[test]
    fn minimize_is_sound_and_non_worsening(
        pi in 1usize..=3,
        states in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let table = random_machine("prop", pi, 2, states, seed).unwrap();
        let spec = scanft_synth::cover::extract(&table, Encoding::Binary);
        for cover in &spec.covers {
            let min = scanft_synth::minimize::minimize_cover(cover);
            prop_assert!(min.literal_count() <= cover.literal_count());
            for p in 0..(1u32 << spec.num_vars) {
                prop_assert_eq!(min.eval(p), cover.eval(p), "point {}", p);
            }
        }
    }
}
