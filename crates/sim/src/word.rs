//! Lane-word abstraction for bit-parallel simulation kernels.
//!
//! Every net in a simulation pass carries one *lane word*: each bit lane is
//! an independent simulation context (one fault of a batch, or one input
//! pattern of an exhaustive sweep). The original kernel is hard-wired to
//! `u64` (64 lanes); [`LaneWord`] lifts the handful of operations the
//! kernels actually need so the same code runs over a 256-bit word —
//! [`W256`], four `u64` limbs — and simulates 256 faults or patterns per
//! pass. All operations are lane-wise, so widening a kernel never changes
//! per-lane results: lane `l` of a `W256` run is bit-identical to lane
//! `l % 64` of the corresponding `u64` run.

use std::fmt::Debug;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Not};

/// A fixed-width word of independent simulation lanes.
///
/// Implementations must behave as a plain bit vector: the bitwise operators
/// act lane-wise, [`LaneWord::zero`]/[`LaneWord::ones`] are the identity
/// elements, and lane `l` lives in bit `l % 64` of limb `l / 64`
/// (little-endian limb order, exposed by [`LaneWord::limb`]).
pub trait LaneWord:
    Copy
    + Debug
    + Default
    + PartialEq
    + Eq
    + Send
    + Sync
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + BitAndAssign
    + BitOrAssign
    + Not<Output = Self>
    + 'static
{
    /// Number of independent lanes (bits) in the word.
    const LANES: usize;

    /// Number of `u64` limbs (`LANES / 64`).
    const LIMBS: usize;

    /// The all-zero word.
    fn zero() -> Self;

    /// The all-ones word.
    fn ones() -> Self;

    /// Broadcasts one bit to every lane (the fault-free value of a net).
    #[inline]
    fn splat_bit(bit: bool) -> Self {
        if bit {
            Self::ones()
        } else {
            Self::zero()
        }
    }

    /// The word with only lane `lane` set.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    fn lane_bit(lane: usize) -> Self;

    /// The mask covering the `n` lowest lanes (all lanes when `n == LANES`,
    /// empty when `n == 0`).
    ///
    /// # Panics
    ///
    /// Panics if `n > LANES`.
    fn low_lanes(n: usize) -> Self;

    /// Whether no lane is set.
    fn is_zero(self) -> bool;

    /// Number of set lanes.
    fn count_lanes(self) -> u32;

    /// The `i`-th 64-lane limb (lane `64 * i + k` is bit `k`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= LIMBS`.
    fn limb(self, i: usize) -> u64;
}

impl LaneWord for u64 {
    const LANES: usize = 64;
    const LIMBS: usize = 1;

    #[inline]
    fn zero() -> Self {
        0
    }

    #[inline]
    fn ones() -> Self {
        u64::MAX
    }

    #[inline]
    fn lane_bit(lane: usize) -> Self {
        assert!(lane < 64, "lane {lane} out of range");
        1u64 << lane
    }

    #[inline]
    fn low_lanes(n: usize) -> Self {
        assert!(n <= 64, "lane count {n} out of range");
        if n == 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    #[inline]
    fn is_zero(self) -> bool {
        self == 0
    }

    #[inline]
    fn count_lanes(self) -> u32 {
        self.count_ones()
    }

    #[inline]
    fn limb(self, i: usize) -> u64 {
        assert!(i == 0, "limb {i} out of range");
        self
    }
}

/// A 256-lane word: four `u64` limbs, little-endian lane order.
///
/// This is the wide kernel's value type. Four limbs is wide enough to
/// quadruple batch throughput yet small enough to live in registers on any
/// 64-bit target without `unsafe` or vendor intrinsics; the compiler
/// auto-vectorizes the limb-wise loops where SIMD units exist.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct W256(pub [u64; 4]);

impl BitAnd for W256 {
    type Output = W256;

    #[inline]
    fn bitand(self, rhs: W256) -> W256 {
        W256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for W256 {
    type Output = W256;

    #[inline]
    fn bitor(self, rhs: W256) -> W256 {
        W256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for W256 {
    type Output = W256;

    #[inline]
    fn bitxor(self, rhs: W256) -> W256 {
        W256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl BitAndAssign for W256 {
    #[inline]
    fn bitand_assign(&mut self, rhs: W256) {
        *self = *self & rhs;
    }
}

impl BitOrAssign for W256 {
    #[inline]
    fn bitor_assign(&mut self, rhs: W256) {
        *self = *self | rhs;
    }
}

impl Not for W256 {
    type Output = W256;

    #[inline]
    fn not(self) -> W256 {
        W256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl LaneWord for W256 {
    const LANES: usize = 256;
    const LIMBS: usize = 4;

    #[inline]
    fn zero() -> Self {
        W256([0; 4])
    }

    #[inline]
    fn ones() -> Self {
        W256([u64::MAX; 4])
    }

    #[inline]
    fn lane_bit(lane: usize) -> Self {
        assert!(lane < 256, "lane {lane} out of range");
        let mut limbs = [0u64; 4];
        limbs[lane / 64] = 1u64 << (lane % 64);
        W256(limbs)
    }

    #[inline]
    fn low_lanes(n: usize) -> Self {
        assert!(n <= 256, "lane count {n} out of range");
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let low = n.saturating_sub(64 * i);
            *limb = u64::low_lanes(low.min(64));
        }
        W256(limbs)
    }

    #[inline]
    fn is_zero(self) -> bool {
        self.0 == [0; 4]
    }

    #[inline]
    fn count_lanes(self) -> u32 {
        self.0.iter().map(|limb| limb.count_ones()).sum()
    }

    #[inline]
    fn limb(self, i: usize) -> u64 {
        self.0[i]
    }
}

/// Calls `visit(lane)` for every set lane of `word`, in increasing order.
pub fn for_each_lane<W: LaneWord>(word: W, mut visit: impl FnMut(usize)) {
    for i in 0..W::LIMBS {
        let mut limb = word.limb(i);
        while limb != 0 {
            let lane = 64 * i + limb.trailing_zeros() as usize;
            visit(lane);
            limb &= limb - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `x | x == x` and `x ^ x == 0` are exactly the algebraic laws under
    // test, so the operands are equal on purpose.
    #[allow(clippy::eq_op)]
    fn check_word_laws<W: LaneWord>() {
        assert_eq!(W::LANES, 64 * W::LIMBS);
        assert_eq!(W::zero(), W::default());
        assert_eq!(!W::zero(), W::ones());
        assert_eq!(W::splat_bit(true), W::ones());
        assert_eq!(W::splat_bit(false), W::zero());
        assert!(W::zero().is_zero());
        assert!(!W::ones().is_zero());
        assert_eq!(W::ones().count_lanes() as usize, W::LANES);
        assert_eq!(W::low_lanes(0), W::zero());
        assert_eq!(W::low_lanes(W::LANES), W::ones());
        for lane in (0..W::LANES).step_by(7) {
            let bit = W::lane_bit(lane);
            assert_eq!(bit.count_lanes(), 1);
            assert_eq!(bit.limb(lane / 64) >> (lane % 64) & 1, 1);
            assert_eq!(bit & W::low_lanes(lane), W::zero());
            assert_eq!(bit & W::low_lanes(lane + 1), bit);
            assert_eq!(bit | bit, bit);
            assert_eq!(bit ^ bit, W::zero());
            assert_eq!(bit & !bit, W::zero());
        }
    }

    #[test]
    fn u64_satisfies_the_lane_word_laws() {
        check_word_laws::<u64>();
    }

    #[test]
    fn w256_satisfies_the_lane_word_laws() {
        check_word_laws::<W256>();
    }

    #[test]
    fn w256_lanes_map_to_limbs() {
        let w = W256::lane_bit(0) | W256::lane_bit(65) | W256::lane_bit(255);
        assert_eq!(w.limb(0), 1);
        assert_eq!(w.limb(1), 2);
        assert_eq!(w.limb(2), 0);
        assert_eq!(w.limb(3), 1u64 << 63);
        assert_eq!(w.count_lanes(), 3);
    }

    #[test]
    fn low_lanes_straddles_limb_boundaries() {
        let w = W256::low_lanes(100);
        assert_eq!(w.limb(0), u64::MAX);
        assert_eq!(w.limb(1), (1u64 << 36) - 1);
        assert_eq!(w.limb(2), 0);
        assert_eq!(w.count_lanes(), 100);
    }

    #[test]
    fn for_each_lane_visits_in_order() {
        let w = W256::lane_bit(3) | W256::lane_bit(64) | W256::lane_bit(200);
        let mut seen = Vec::new();
        for_each_lane(w, |lane| seen.push(lane));
        assert_eq!(seen, vec![3, 64, 200]);
        let mut none = Vec::new();
        for_each_lane(W256::zero(), |lane| none.push(lane));
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_lane_bit_panics() {
        let _ = W256::lane_bit(256);
    }
}
