//! Exhaustive combinational detectability analysis.
//!
//! Under full scan, every `(state code, input combination)` pair can be
//! applied as a length-1 test, so a fault is *detectable* iff some such pair
//! produces a different primary-output combination or next-state code. The
//! paper uses exactly this argument to classify the faults its functional
//! tests leave undetected: all of them are undetectable (combinationally
//! redundant), hence the functional tests achieve complete coverage of
//! detectable faults (Table 6).
//!
//! The check enumerates all `2^(pi+sv)` input points, 64 pattern-parallel
//! lanes at a time, with the single fault injected in every lane.

use scanft_netlist::Netlist;

use crate::engine::{FaultEngine, InjectionPlan};
use crate::faults::Fault;
use crate::ScanTest;

/// Verdict of the exhaustive detectability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detectability {
    /// Some single-cycle scan test detects the fault.
    Detectable,
    /// No single-cycle scan test detects the fault: it is combinationally
    /// redundant and undetectable under full scan.
    Undetectable,
    /// The exhaustive enumeration was larger than the supplied budget.
    BudgetExceeded,
}

/// Exhaustively decides whether `fault` is detectable by any length-1 scan
/// test, giving up once more than `budget_points` input points would have to
/// be simulated.
///
/// # Examples
///
/// ```
/// use scanft_sim::exhaustive::{is_detectable, Detectability};
/// use scanft_sim::faults::{Fault, FaultSite, StuckFault};
/// use scanft_synth::{synthesize, SynthConfig};
///
/// let lion = scanft_fsm::benchmarks::lion();
/// let c = synthesize(&lion, &SynthConfig::default());
/// let po_stuck = Fault::Stuck(StuckFault {
///     site: FaultSite::Net(c.netlist().pos()[0]),
///     stuck_at_one: false,
/// });
/// assert_eq!(is_detectable(c.netlist(), &po_stuck, 1 << 20), Detectability::Detectable);
/// ```
#[must_use]
pub fn is_detectable(netlist: &Netlist, fault: &Fault, budget_points: u64) -> Detectability {
    find_detecting_test(netlist, fault, budget_points).0
}

/// Like [`is_detectable`], but also returns a *witness*: the first length-1
/// scan test (in `(code, input)` enumeration order) that detects the fault.
/// The witness is `Some` exactly when the verdict is
/// [`Detectability::Detectable`].
#[must_use]
pub fn find_detecting_test(
    netlist: &Netlist,
    fault: &Fault,
    budget_points: u64,
) -> (Detectability, Option<ScanTest>) {
    let bits = netlist.num_pis() + netlist.num_ppis();
    assert!(bits < 63, "input space too large to enumerate");
    let total: u64 = 1 << bits;
    if total > budget_points {
        return (Detectability::BudgetExceeded, None);
    }

    // Pattern-parallel sweep: 64 (input, state) points per evaluation, the
    // fault injected in every lane.
    let batch: Vec<Fault> = vec![*fault; 64];
    let plan = InjectionPlan::new(netlist, &batch);
    let mut engine = FaultEngine::new(netlist);
    let mut reference = crate::logic::Evaluator::new(netlist);
    let num_pis = netlist.num_pis();
    let num_ppis = netlist.num_ppis();
    let mut pi_words = vec![0u64; num_pis];
    let mut ppi_words = vec![0u64; num_ppis];
    // Scratch output buffers, reused across the sweep — the hot loop
    // allocates nothing.
    let mut po = Vec::new();
    let mut ppo = Vec::new();

    let mut base = 0u64;
    while base < total {
        let count = 64.min(total - base) as usize;
        for (k, word) in pi_words.iter_mut().enumerate() {
            *word = spread_bit(base, k, count);
        }
        for (k, word) in ppi_words.iter_mut().enumerate() {
            *word = spread_bit(base, num_pis + k, count);
        }
        reference.load_input_words(&pi_words);
        reference.load_state_words(&ppi_words);
        reference.eval();
        engine.eval_single_cycle_patterns_into(&pi_words, &ppi_words, &plan, &mut po, &mut ppo);

        let live = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        let mut diff = 0u64;
        for (z, &net) in netlist.pos().iter().enumerate() {
            diff |= po[z] ^ reference.value(net);
        }
        for (v, &net) in netlist.ppos().iter().enumerate() {
            diff |= ppo[v] ^ reference.value(net);
        }
        diff &= live;
        if diff != 0 {
            let lane = diff.trailing_zeros() as u64;
            let point = base + lane;
            let input = (point & ((1 << num_pis) - 1)) as u32;
            let code = point >> num_pis;
            return (
                Detectability::Detectable,
                Some(ScanTest::new(code, vec![input])),
            );
        }
        base += 64;
    }
    (Detectability::Undetectable, None)
}

/// Lane-spread helper: bit `l` of the result is bit `bit` of `base + l`
/// (for the first `count` lanes).
fn spread_bit(base: u64, bit: usize, count: usize) -> u64 {
    let mut word = 0u64;
    for l in 0..count {
        if (base + l as u64) >> bit & 1 == 1 {
            word |= 1 << l;
        }
    }
    word
}

/// Classifies a list of faults, returning `(detectable, undetectable,
/// budget_exceeded)` index lists (indices into `faults`).
#[must_use]
pub fn classify(
    netlist: &Netlist,
    faults: &[Fault],
    budget_points: u64,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut detectable = Vec::new();
    let mut undetectable = Vec::new();
    let mut over_budget = Vec::new();
    for (k, fault) in faults.iter().enumerate() {
        match is_detectable(netlist, fault, budget_points) {
            Detectability::Detectable => detectable.push(k),
            Detectability::Undetectable => undetectable.push(k),
            Detectability::BudgetExceeded => over_budget.push(k),
        }
    }
    (detectable, undetectable, over_budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{self, FaultSite, StuckFault};
    use scanft_netlist::{GateKind, NetlistBuilder};
    use scanft_synth::{synthesize, SynthConfig};

    #[test]
    fn redundant_fault_is_undetectable() {
        // z = OR(x1, AND(x1, x2)): the AND gate is redundant (absorption),
        // so AND-output s-a-0 is undetectable.
        let mut b = NetlistBuilder::new(2, 0);
        let a = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let z = b.add_gate(GateKind::Or, &[0, a]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let sa0 = Fault::Stuck(StuckFault {
            site: FaultSite::Net(a),
            stuck_at_one: false,
        });
        assert_eq!(
            is_detectable(&n, &sa0, 1 << 10),
            Detectability::Undetectable
        );
        // But s-a-1 on the same net is detectable (x1=0, x2=0 gives z=1).
        let sa1 = Fault::Stuck(StuckFault {
            site: FaultSite::Net(a),
            stuck_at_one: true,
        });
        assert_eq!(is_detectable(&n, &sa1, 1 << 10), Detectability::Detectable);
    }

    #[test]
    fn lion_classification_finds_no_redundancy() {
        // The minimizer's cover selection makes the lion netlist
        // irredundant: every stuck fault is detectable.
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let stuck = faults::enumerate_stuck(c.netlist());
        let list = faults::as_fault_list(&stuck);
        let (det, undet, over) = classify(c.netlist(), &list, 1 << 20);
        assert!(over.is_empty());
        assert_eq!(det.len(), list.len());
        assert!(undet.is_empty());
    }

    #[test]
    fn budget_is_respected() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let stuck = faults::enumerate_stuck(c.netlist());
        let fault = Fault::Stuck(stuck[0]);
        assert_eq!(
            is_detectable(c.netlist(), &fault, 1),
            Detectability::BudgetExceeded
        );
    }

    #[test]
    fn detectability_agrees_with_campaign_on_exhaustive_tests() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let n = c.netlist();
        // Full exhaustive length-1 test set over codes and inputs.
        let tests: Vec<ScanTest> = (0..4u64)
            .flat_map(|code| (0..4u32).map(move |i| ScanTest::new(code, vec![i])))
            .collect();
        let stuck = faults::enumerate_stuck(n);
        let list = faults::as_fault_list(&stuck);
        let report = crate::campaign::run(n, &tests, &list);
        for (k, fault) in list.iter().enumerate() {
            let verdict = is_detectable(n, fault, 1 << 20);
            let detected = report.detecting_test[k].is_some();
            assert_eq!(
                verdict == Detectability::Detectable,
                detected,
                "fault {k}: {}",
                fault.describe(n)
            );
        }
    }
}
