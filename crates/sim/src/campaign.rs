//! Whole-test-set fault simulation with fault dropping, plus the paper's
//! effective-test selection.
//!
//! The paper simulates the functional tests *in decreasing order of length*
//! (ties keep the generation order) with fault dropping, and keeps a test —
//! calls it *effective* — iff it newly detects at least one fault (Table 3
//! for `lion`, Tables 6 and 7 in aggregate). Dropping a test drops one scan
//! operation regardless of its length, so pruning short tests shrinks test
//! application time most.
//!
//! race-lint: deterministic-replay — resumed campaigns must merge journal
//! records into results identical to an uninterrupted run, so this module
//! must not consult wall clocks or any other ambient nondeterminism.

use scanft_race::sync::Arc;

use scanft_harness::{
    run_units, Budget, FailurePlan, Journal, JournalHeader, JournalRecord, JournalWriter,
    ScanftError, StopReason, UnitFailure,
};
use scanft_netlist::{GateArena, Netlist};

use crate::engine::{FaultEngine, InjectionPlan};
use crate::faults::Fault;
use crate::logic::{self, Evaluator, GoodTrace};
use crate::word::{for_each_lane, LaneWord, W256};
use crate::{ScanResponse, ScanTest};

/// Number of 64-lane journal slots covered by one wide (256-lane) batch.
const WIDE_SLOTS: usize = W256::LANES / 64;

/// Which simulation kernel a supervised campaign runs on.
///
/// Both kernels produce bit-identical detection verdicts (the wide kernel's
/// lane `l` behaves exactly like the narrow kernel's lane `l % 64`), and
/// both journal 64-lane units, so checkpoints written by one kernel resume
/// under the other.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Kernel {
    /// 64 faults per pass, full netlist re-evaluation per cycle. The
    /// differential oracle.
    #[default]
    Narrow,
    /// 256 faults per pass with cone-restricted, event-driven evaluation
    /// (PPSFP): only gates inside the batch's fault cones whose fanins
    /// deviate from the precomputed fault-free trace are re-evaluated.
    Wide,
}

impl Kernel {
    /// Parses a `--kernel=` flag value.
    #[must_use]
    pub fn from_flag(value: &str) -> Option<Self> {
        match value {
            "narrow" => Some(Kernel::Narrow),
            "wide" => Some(Kernel::Wide),
            _ => None,
        }
    }

    /// The flag spelling (`narrow` / `wide`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Narrow => "narrow",
            Kernel::Wide => "wide",
        }
    }
}

/// Outcome of simulating an ordered test set against a fault list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// For each fault (input order), the index *into the simulated order*
    /// of the first test that detects it, or `None` if undetected.
    pub detecting_test: Vec<Option<usize>>,
    /// The simulation order as indices into the caller's test list.
    pub order: Vec<usize>,
    /// Number of faults newly detected by each test of `order`.
    pub new_detections: Vec<usize>,
}

impl CampaignReport {
    /// Total number of faults simulated.
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.detecting_test.len()
    }

    /// Number of detected faults.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.detecting_test.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage in percent (100.0 when there are no faults).
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.detecting_test.is_empty() {
            return 100.0;
        }
        100.0 * self.detected() as f64 / self.detecting_test.len() as f64
    }

    /// Indices (into the caller's test list) of the effective tests — those
    /// that newly detect at least one fault — in simulated order.
    #[must_use]
    pub fn effective_tests(&self) -> Vec<usize> {
        self.order
            .iter()
            .zip(&self.new_detections)
            .filter_map(|(&t, &n)| (n > 0).then_some(t))
            .collect()
    }

    /// Indices of the undetected faults (into the caller's fault list).
    #[must_use]
    pub fn undetected_faults(&self) -> Vec<usize> {
        self.detecting_test
            .iter()
            .enumerate()
            .filter_map(|(f, d)| d.is_none().then_some(f))
            .collect()
    }
}

/// Simulates `tests` in the given order against `faults` with fault
/// dropping.
///
/// Faults are processed in batches of 64 lanes; each batch walks the test
/// list once, skipping lanes already detected, so the result is identical
/// to per-fault sequential simulation with dropping.
#[must_use]
pub fn run(netlist: &Netlist, tests: &[ScanTest], faults: &[Fault]) -> CampaignReport {
    let order: Vec<usize> = (0..tests.len()).collect();
    run_ordered(netlist, tests, &order, faults)
}

/// Simulates tests in the paper's effective-test order: decreasing length,
/// ties in original order.
#[must_use]
pub fn run_decreasing_length(
    netlist: &Netlist,
    tests: &[ScanTest],
    faults: &[Fault],
) -> CampaignReport {
    run_ordered(netlist, tests, &decreasing_length_order(tests), faults)
}

/// The paper's decreasing-length application order: longest test first,
/// index order breaking ties. Exposed so supervised runs (which need an
/// explicit, journal-stable order) match [`run_decreasing_length`].
#[must_use]
pub fn decreasing_length_order(tests: &[ScanTest]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..tests.len()).collect();
    order.sort_by(|&a, &b| tests[b].len().cmp(&tests[a].len()).then(a.cmp(&b)));
    order
}

/// Simulates tests in an explicit order (indices into `tests`) with fault
/// dropping.
///
/// # Panics
///
/// Panics if `order` references a test out of range.
#[must_use]
pub fn run_ordered(
    netlist: &Netlist,
    tests: &[ScanTest],
    order: &[usize],
    faults: &[Fault],
) -> CampaignReport {
    run_ordered_observing(netlist, tests, order, faults, true)
}

/// Like [`run_ordered`], with the scan-out observation made optional —
/// `observe_scan_out = false` models non-scan test application where faults
/// are visible only at the primary outputs.
#[must_use]
pub fn run_ordered_observing(
    netlist: &Netlist,
    tests: &[ScanTest],
    order: &[usize],
    faults: &[Fault],
    observe_scan_out: bool,
) -> CampaignReport {
    let obs = scanft_obs::global();
    let _span = obs.timer("sim.campaign.run").start();
    obs.counter("sim.campaign.faults").add(faults.len() as u64);
    let batches_run = obs.counter("sim.campaign.batches");
    let tests_simulated = obs.counter("sim.campaign.tests_simulated");
    let tests_skipped = obs.counter("sim.campaign.tests_skipped");

    // Fault-free responses, computed once per referenced test.
    let mut responses: Vec<Option<ScanResponse>> = vec![None; tests.len()];
    for &t in order {
        if responses[t].is_none() {
            responses[t] = Some(logic::simulate(netlist, &tests[t]));
        }
    }

    let mut detecting_test: Vec<Option<usize>> = vec![None; faults.len()];
    let mut engine = FaultEngine::new(netlist);
    for (batch_start, batch) in faults.chunks(64).enumerate().map(|(i, b)| (i * 64, b)) {
        if batch.is_empty() {
            // Empty batches used to run a full (vacuous) simulation pass;
            // skip them outright.
            continue;
        }
        batches_run.inc();
        let plan = InjectionPlan::new(netlist, batch);
        let mut detected: u64 = 0;
        let all = plan.lane_mask();
        for (pos, &t) in order.iter().enumerate() {
            let response = responses[t].as_ref().expect("response precomputed");
            tests_simulated.inc();
            let newly =
                engine.run_test_observing(&tests[t], response, &plan, detected, observe_scan_out);
            if newly != 0 {
                let mut lanes = newly;
                while lanes != 0 {
                    let lane = lanes.trailing_zeros() as usize;
                    detecting_test[batch_start + lane] = Some(pos);
                    lanes &= lanes - 1;
                }
                detected |= newly;
            }
            if detected == all {
                // Fault dropping: the whole batch is detected, so the rest
                // of the ordered test list never has to be simulated.
                tests_skipped.add((order.len() - pos - 1) as u64);
                break;
            }
        }
    }

    obs.counter("sim.kernel.gate_evals")
        .add(engine.take_gate_evals());
    let mut new_detections = vec![0usize; order.len()];
    for d in detecting_test.iter().flatten() {
        new_detections[*d] += 1;
    }
    CampaignReport {
        detecting_test,
        order: order.to_vec(),
        new_detections,
    }
}

/// Sequential campaign on the **wide kernel**: 256-fault batches evaluated
/// event-driven against precomputed fault-free traces (PPSFP). Produces a
/// report bit-identical to [`run_ordered_observing`] — the per-lane
/// simulations are independent, so batch width and cone restriction cannot
/// change any verdict — at a fraction of the gate evaluations.
///
/// # Panics
///
/// Panics if `order` references a test out of range.
#[must_use]
pub fn run_ordered_wide(
    netlist: &Netlist,
    tests: &[ScanTest],
    order: &[usize],
    faults: &[Fault],
    observe_scan_out: bool,
) -> CampaignReport {
    let obs = scanft_obs::global();
    let _span = obs.timer("sim.campaign.run_wide").start();
    obs.counter("sim.campaign.faults").add(faults.len() as u64);
    let batches_run = obs.counter("sim.campaign.batches");
    let tests_simulated = obs.counter("sim.campaign.tests_simulated");
    let tests_skipped = obs.counter("sim.campaign.tests_skipped");

    let arena = Arc::new(GateArena::build(netlist));
    // Fault-free traces, recorded once per referenced test and shared by
    // every batch.
    let mut traces: Vec<Option<GoodTrace>> = vec![None; tests.len()];
    {
        let mut evaluator = Evaluator::with_arena(netlist, Arc::clone(&arena));
        for &t in order {
            if traces[t].is_none() {
                traces[t] = Some(evaluator.record_trace(&tests[t]));
            }
        }
    }

    let mut detecting_test: Vec<Option<usize>> = vec![None; faults.len()];
    let mut engine = FaultEngine::<W256>::with_arena(netlist, Arc::clone(&arena));
    for (batch_start, batch) in faults
        .chunks(W256::LANES)
        .enumerate()
        .map(|(i, b)| (i * W256::LANES, b))
    {
        if batch.is_empty() {
            continue;
        }
        batches_run.inc();
        let plan = InjectionPlan::<W256>::event_driven(netlist, &arena, batch);
        let mut detected = W256::zero();
        let all = plan.lane_mask();
        for (pos, &t) in order.iter().enumerate() {
            let trace = traces[t].as_ref().expect("trace precomputed");
            tests_simulated.inc();
            let newly =
                engine.run_test_event_driven(&tests[t], trace, &plan, detected, observe_scan_out);
            if !newly.is_zero() {
                for_each_lane(newly, |lane| detecting_test[batch_start + lane] = Some(pos));
                detected |= newly;
            }
            if detected == all {
                tests_skipped.add((order.len() - pos - 1) as u64);
                break;
            }
        }
    }

    obs.counter("sim.kernel.gate_evals")
        .add(engine.take_gate_evals());
    let mut new_detections = vec![0usize; order.len()];
    for d in detecting_test.iter().flatten() {
        new_detections[*d] += 1;
    }
    CampaignReport {
        detecting_test,
        order: order.to_vec(),
        new_detections,
    }
}

/// Like [`run_ordered_observing`], with the 64-fault batches distributed
/// over `num_threads` worker threads. Batches are independent (each owns
/// its lanes), so the result is bit-identical to the sequential runner.
///
/// Runs through the panic-isolating supervisor: a worker panic no longer
/// aborts the whole campaign (the old behaviour was
/// `handle.join().expect("worker thread panicked")`). Instead the bad
/// batch is quarantined and its faults stay undetected, which keeps the
/// returned coverage a sound lower bound; callers that need to distinguish
/// quarantined from genuinely undetected faults use [`run_supervised`].
///
/// # Panics
///
/// Panics if `num_threads == 0` or `order` references a test out of range.
#[must_use]
pub fn run_parallel(
    netlist: &Netlist,
    tests: &[ScanTest],
    order: &[usize],
    faults: &[Fault],
    observe_scan_out: bool,
    num_threads: usize,
) -> CampaignReport {
    let obs = scanft_obs::global();
    let _span = obs.timer("sim.campaign.parallel").start();
    let config = SupervisedConfig {
        num_threads,
        observe_scan_out,
        label: "run_parallel".to_owned(),
        ..SupervisedConfig::default()
    };
    run_supervised(netlist, tests, order, faults, &config, None, None, None)
        .expect("no journal attached, so supervised run cannot fail")
        .report
}

/// One 64-fault batch simulated against the ordered test list with fault
/// dropping; returns the detecting-test position per lane.
fn run_batch(
    engine: &mut FaultEngine,
    netlist: &Netlist,
    tests: &[ScanTest],
    order: &[usize],
    responses: &[Option<ScanResponse>],
    batch: &[Fault],
    observe_scan_out: bool,
) -> Vec<Option<usize>> {
    if batch.is_empty() {
        // `InjectionPlan` over zero faults has an all-zero lane mask, which
        // the detection loop used to treat as "already done" only after a
        // full simulation pass. Return without touching the engine.
        return Vec::new();
    }
    let plan = InjectionPlan::new(netlist, batch);
    let mut local: Vec<Option<usize>> = vec![None; batch.len()];
    let mut detected: u64 = 0;
    let all = plan.lane_mask();
    for (pos, &t) in order.iter().enumerate() {
        let response = responses[t].as_ref().expect("precomputed");
        let newly =
            engine.run_test_observing(&tests[t], response, &plan, detected, observe_scan_out);
        let mut lanes = newly;
        while lanes != 0 {
            let lane = lanes.trailing_zeros() as usize;
            local[lane] = Some(pos);
            lanes &= lanes - 1;
        }
        detected |= newly;
        if detected == all {
            break;
        }
    }
    local
}

/// Knobs for a supervised campaign run.
#[derive(Debug, Clone)]
pub struct SupervisedConfig {
    /// Number of worker threads (must be positive).
    pub num_threads: usize,
    /// Whether faults are observed at the scan-out in addition to the POs.
    pub observe_scan_out: bool,
    /// Wall-clock deadline and batch-count cap for this run.
    pub budget: Budget,
    /// Human-readable label recorded in the journal header.
    pub label: String,
    /// Which simulation kernel to run on. Verdicts and journal layout are
    /// identical across kernels; only throughput differs.
    pub kernel: Kernel,
    /// Pre-built gate arena for the wide kernel. `None` builds one per run;
    /// a caching caller (the `scanft serve` artifact cache) passes a shared
    /// arena so repeat campaigns on the same netlist skip the rebuild. The
    /// arena carries no per-run state, so sharing cannot change verdicts.
    pub arena: Option<Arc<GateArena>>,
}

impl Default for SupervisedConfig {
    fn default() -> Self {
        SupervisedConfig {
            num_threads: 1,
            observe_scan_out: true,
            budget: Budget::unlimited(),
            label: "campaign".to_owned(),
            kernel: Kernel::Narrow,
            arena: None,
        }
    }
}

/// Outcome of a supervised (budgeted, panic-isolated, resumable) campaign.
///
/// The embedded [`CampaignReport`] is a **sound lower bound**: faults in
/// quarantined or remaining batches are reported as undetected, never
/// guessed. When [`PartialReport::is_complete`] holds, the report is
/// bit-identical to what the uninterrupted sequential runner produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialReport {
    /// Lower-bound campaign report over the full fault list.
    pub report: CampaignReport,
    /// Batch ids that finished (freshly simulated or merged from the
    /// resume journal), sorted.
    pub completed_units: Vec<usize>,
    /// Batch ids merged from the resume journal (subset of
    /// `completed_units`), sorted.
    pub resumed_units: Vec<usize>,
    /// Batches whose worker panicked, with the panic message.
    pub quarantined: Vec<UnitFailure>,
    /// Batch ids never simulated because the budget stopped the run.
    pub remaining_units: Vec<usize>,
    /// Why the run stopped early, if it did.
    pub stopped: Option<StopReason>,
    /// Total number of 64-fault batches in the campaign.
    pub num_units: usize,
}

impl PartialReport {
    /// Whether every batch completed: nothing quarantined, nothing left.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty() && self.remaining_units.is_empty()
    }

    /// Detected-over-all-faults coverage in percent. Quarantined and
    /// remaining faults count as undetected, so this is a sound lower
    /// bound on the true coverage.
    #[must_use]
    pub fn coverage_lower_bound_percent(&self) -> f64 {
        self.report.coverage_percent()
    }

    /// The full report, only when the campaign actually completed.
    #[must_use]
    pub fn into_complete(self) -> Option<CampaignReport> {
        self.is_complete().then_some(self.report)
    }

    /// Number of faults whose verdict is still unknown (they sit in a
    /// quarantined or remaining batch).
    #[must_use]
    pub fn faults_unresolved(&self) -> usize {
        let num_faults = self.report.num_faults();
        self.quarantined
            .iter()
            .map(|f| f.unit)
            .chain(self.remaining_units.iter().copied())
            .map(|unit| (num_faults - unit * 64).min(64))
            .sum()
    }
}

/// Runs a campaign under the resilient supervisor: 64-fault batches with
/// panic quarantine, an enforced [`Budget`], an optional append-only
/// checkpoint journal, resume from a previously written journal, and
/// optional chaos injection.
///
/// Journaling writes one header line plus one record per completed batch
/// (flushed immediately, so a killed process loses at most the record
/// being written). `resume_from` merges intact records of a prior journal
/// — validated against this campaign's shape — and re-simulates only the
/// missing batches; a resumed-and-completed run is bit-identical to an
/// uninterrupted one.
///
/// # Errors
///
/// Returns [`ScanftError::Journal`] when the resume journal does not match
/// this campaign or a journal write fails.
///
/// # Panics
///
/// Panics if `config.num_threads == 0` or `order` references a test out of
/// range.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised(
    netlist: &Netlist,
    tests: &[ScanTest],
    order: &[usize],
    faults: &[Fault],
    config: &SupervisedConfig,
    journal: Option<&JournalWriter>,
    resume_from: Option<&Journal>,
    chaos: Option<&FailurePlan>,
) -> Result<PartialReport, ScanftError> {
    assert!(config.num_threads > 0, "num_threads must be positive");
    let obs = scanft_obs::global();
    let _span = obs.timer("sim.campaign.supervised").start();
    obs.counter("sim.campaign.faults").add(faults.len() as u64);

    let batches: Vec<&[Fault]> = faults.chunks(64).collect();
    let num_units = batches.len();
    let header = JournalHeader {
        label: config.label.clone(),
        faults: faults.len(),
        units: num_units,
        order: order.len(),
        lanes_per_unit: 64,
    };

    // Merge intact, shape-correct records of the resume journal; anything
    // damaged is simply re-simulated.
    let mut prior: Vec<Option<&JournalRecord>> = vec![None; num_units];
    if let Some(journal) = resume_from {
        journal.validate(&header)?;
        for record in &journal.records {
            if record.unit < num_units && record.lanes.len() == batches[record.unit].len() {
                // Last record wins; duplicates can only disagree if the
                // journal was tampered with, and simulation re-derives the
                // truth for any unit we refuse here.
                prior[record.unit] = Some(record);
            }
        }
    }
    let resumed_units: Vec<usize> = (0..num_units).filter(|&u| prior[u].is_some()).collect();
    obs.counter("sim.campaign.units_resumed")
        .add(resumed_units.len() as u64);

    if let (Some(writer), None) = (journal, resume_from) {
        writer
            .write_header(&header)
            .map_err(|e| ScanftError::Journal {
                message: format!("writing journal header: {e}"),
            })?;
    }

    let pending: Vec<usize> = (0..num_units).filter(|&u| prior[u].is_none()).collect();
    let batches_run = obs.counter("sim.campaign.batches");
    let gate_evals = obs.counter("sim.kernel.gate_evals");
    let journal_error: scanft_race::sync::Mutex<Option<String>> =
        scanft_race::sync::Mutex::new(None);
    let append_record = |unit: usize, lanes: &[Option<usize>]| {
        if let Some(writer) = journal {
            let record = JournalRecord {
                unit,
                lanes: lanes.iter().map(|d| d.map(|p| p as u64)).collect(),
            };
            if let Err(e) = writer.append(&record) {
                journal_error.lock().get_or_insert_with(|| e.to_string());
            }
        }
    };

    // Both kernels journal 64-lane units; the wide kernel simulates
    // four-unit "super batches" and splits each into per-unit records, so a
    // checkpoint written by one kernel resumes under the other.
    let (fresh, quarantined, remaining_units, stopped) = match config.kernel {
        Kernel::Narrow => {
            // Fault-free responses, computed once up front and shared
            // read-only.
            let mut responses: Vec<Option<ScanResponse>> = vec![None; tests.len()];
            for &t in order {
                if responses[t].is_none() {
                    responses[t] = Some(logic::simulate(netlist, &tests[t]));
                }
            }
            let outcome = run_units(
                &pending,
                config.num_threads,
                &config.budget,
                chaos,
                || FaultEngine::new(netlist),
                |engine, unit| {
                    batches_run.inc();
                    let local = run_batch(
                        engine,
                        netlist,
                        tests,
                        order,
                        &responses,
                        batches[unit],
                        config.observe_scan_out,
                    );
                    gate_evals.add(engine.take_gate_evals());
                    append_record(unit, &local);
                    local
                },
            );
            (
                outcome.completed,
                outcome.quarantined,
                outcome.remaining,
                outcome.stopped,
            )
        }
        Kernel::Wide => {
            let arena = config
                .arena
                .clone()
                .unwrap_or_else(|| Arc::new(GateArena::build(netlist)));
            let mut traces: Vec<Option<GoodTrace>> = vec![None; tests.len()];
            {
                let mut evaluator = Evaluator::with_arena(netlist, Arc::clone(&arena));
                for &t in order {
                    if traces[t].is_none() {
                        traces[t] = Some(evaluator.record_trace(&tests[t]));
                    }
                }
            }
            let num_supers = num_units.div_ceil(WIDE_SLOTS);
            let supers: Vec<usize> = (0..num_supers)
                .filter(|&s| {
                    (s * WIDE_SLOTS..((s + 1) * WIDE_SLOTS).min(num_units))
                        .any(|slot| prior[slot].is_none())
                })
                .collect();
            let prior = &prior;
            let outcome = run_units(
                &supers,
                config.num_threads,
                &config.budget,
                chaos,
                || FaultEngine::<W256>::with_arena(netlist, Arc::clone(&arena)),
                |engine, s| {
                    let slot_lo = s * WIDE_SLOTS;
                    let slot_hi = (slot_lo + WIDE_SLOTS).min(num_units);
                    let batch = &faults[slot_lo * 64..(slot_hi * 64).min(faults.len())];
                    batches_run.inc();
                    let plan = InjectionPlan::<W256>::event_driven(netlist, &arena, batch);
                    // Lanes of already-journaled units stay skipped: they
                    // quiesce to fault-free values and cost no events.
                    let mut skip = W256::zero();
                    for (offset, done) in prior[slot_lo..slot_hi].iter().enumerate() {
                        if done.is_some() {
                            skip |= slot_mask(offset);
                        }
                    }
                    let all = plan.lane_mask();
                    let mut detected = skip & all;
                    let mut local: Vec<Option<usize>> = vec![None; batch.len()];
                    for (pos, &t) in order.iter().enumerate() {
                        let trace = traces[t].as_ref().expect("trace precomputed");
                        let newly = engine.run_test_event_driven(
                            &tests[t],
                            trace,
                            &plan,
                            detected,
                            config.observe_scan_out,
                        );
                        if !newly.is_zero() {
                            for_each_lane(newly, |lane| local[lane] = Some(pos));
                            detected |= newly;
                        }
                        if detected == all {
                            break;
                        }
                    }
                    gate_evals.add(engine.take_gate_evals());
                    let mut out: Vec<(usize, Vec<Option<usize>>)> = Vec::new();
                    for (offset, done) in prior[slot_lo..slot_hi].iter().enumerate() {
                        if done.is_some() {
                            continue;
                        }
                        let slot = slot_lo + offset;
                        let lane_lo = offset * 64;
                        let lane_hi = (lane_lo + 64).min(batch.len());
                        let verdicts = local[lane_lo..lane_hi].to_vec();
                        append_record(slot, &verdicts);
                        out.push((slot, verdicts));
                    }
                    out
                },
            );
            let fresh: Vec<(usize, Vec<Option<usize>>)> = outcome
                .completed
                .into_iter()
                .flat_map(|(_, locals)| locals)
                .collect();
            let expand = |s: usize| {
                (s * WIDE_SLOTS..((s + 1) * WIDE_SLOTS).min(num_units))
                    .filter(|&slot| prior[slot].is_none())
            };
            let quarantined: Vec<UnitFailure> = outcome
                .quarantined
                .into_iter()
                .flat_map(|f| {
                    let message = f.message;
                    expand(f.unit).map(move |slot| UnitFailure {
                        unit: slot,
                        message: message.clone(),
                    })
                })
                .collect();
            let remaining: Vec<usize> =
                outcome.remaining.iter().copied().flat_map(expand).collect();
            (fresh, quarantined, remaining, outcome.stopped)
        }
    };
    if let Some(message) = journal_error.into_inner() {
        return Err(ScanftError::Journal {
            message: format!("writing journal record: {message}"),
        });
    }

    let mut detecting_test: Vec<Option<usize>> = vec![None; faults.len()];
    for (unit, record) in prior.iter().enumerate() {
        if let Some(record) = record {
            for (lane, &pos) in record.lanes.iter().enumerate() {
                detecting_test[unit * 64 + lane] = pos.map(|p| p as usize);
            }
        }
    }
    let mut completed_units = resumed_units.clone();
    for (unit, local) in &fresh {
        completed_units.push(*unit);
        for (lane, &verdict) in local.iter().enumerate() {
            detecting_test[unit * 64 + lane] = verdict;
        }
    }
    completed_units.sort_unstable();

    let mut new_detections = vec![0usize; order.len()];
    for d in detecting_test.iter().flatten() {
        new_detections[*d] += 1;
    }
    Ok(PartialReport {
        report: CampaignReport {
            detecting_test,
            order: order.to_vec(),
            new_detections,
        },
        completed_units,
        resumed_units,
        quarantined,
        remaining_units,
        stopped,
        num_units,
    })
}

/// All-ones mask for the 64 lanes of the given slot within a wide word.
fn slot_mask(slot: usize) -> W256 {
    let mut limbs = [0u64; W256::LIMBS];
    limbs[slot] = u64::MAX;
    W256(limbs)
}

/// Per-test row of an effectiveness table (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffectivenessRow {
    /// Index into the caller's test list.
    pub test: usize,
    /// Test length.
    pub length: usize,
    /// Cumulative faults detected after simulating this test.
    pub cumulative_detected: usize,
    /// Whether the test newly detected any fault.
    pub effective: bool,
}

/// Produces the rows of a Table-3-style effectiveness table from a
/// decreasing-length campaign.
#[must_use]
pub fn effectiveness_table(tests: &[ScanTest], report: &CampaignReport) -> Vec<EffectivenessRow> {
    let mut cumulative = 0usize;
    report
        .order
        .iter()
        .zip(&report.new_detections)
        .map(|(&t, &n)| {
            cumulative += n;
            EffectivenessRow {
                test: t,
                length: tests[t].len(),
                cumulative_detected: cumulative,
                effective: n > 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults;
    use scanft_synth::{synthesize, SynthConfig};

    fn lion_setup() -> (scanft_synth::SynthesizedCircuit, Vec<ScanTest>) {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let tests = lion
            .transitions()
            .map(|t| ScanTest::new(c.encode_state(t.from), vec![t.input]))
            .collect();
        (c, tests)
    }

    #[test]
    fn exhaustive_transition_tests_detect_everything_detectable() {
        // Length-1 tests for every transition exercise every (state, input)
        // pair, so they must detect exactly the detectable faults — the
        // faults they miss are combinationally redundant (the situation the
        // paper describes for its sub-100% rows of Table 6).
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        let list = faults::as_fault_list(&stuck);
        let report = run(c.netlist(), &tests, &list);
        let (detectable, undetectable, over) =
            crate::exhaustive::classify(c.netlist(), &list, 1 << 20);
        assert!(over.is_empty());
        assert_eq!(report.detected(), detectable.len());
        for f in report.undetected_faults() {
            assert!(undetectable.contains(&f), "fault {f} detectable but missed");
        }
    }

    #[test]
    fn order_does_not_change_coverage() {
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        let list = faults::as_fault_list(&stuck);
        let forward = run(c.netlist(), &tests, &list);
        let reversed_order: Vec<usize> = (0..tests.len()).rev().collect();
        let backward = run_ordered(c.netlist(), &tests, &reversed_order, &list);
        assert_eq!(forward.detected(), backward.detected());
    }

    #[test]
    fn decreasing_length_order_is_stable() {
        let tests = vec![
            ScanTest::new(0, vec![0]),
            ScanTest::new(0, vec![0, 1, 2]),
            ScanTest::new(0, vec![1]),
            ScanTest::new(0, vec![1, 2]),
        ];
        let (c, _) = lion_setup();
        let report = run_decreasing_length(c.netlist(), &tests, &[]);
        assert_eq!(report.order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn effectiveness_rows_accumulate() {
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        let report = run_decreasing_length(c.netlist(), &tests, &faults::as_fault_list(&stuck));
        let rows = effectiveness_table(&tests, &report);
        assert_eq!(rows.len(), tests.len());
        let last = rows.last().unwrap();
        assert_eq!(last.cumulative_detected, report.detected());
        // Cumulative counts never decrease.
        for pair in rows.windows(2) {
            assert!(pair[1].cumulative_detected >= pair[0].cumulative_detected);
        }
        // Every effective row adds detections.
        for pair in rows.windows(2) {
            assert_eq!(
                pair[1].effective,
                pair[1].cumulative_detected > pair[0].cumulative_detected
            );
        }
    }

    #[test]
    fn effective_tests_cover_like_full_set() {
        // Re-simulating only the effective tests yields the same coverage —
        // the invariant behind the paper's test-set pruning.
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        let list = faults::as_fault_list(&stuck);
        let report = run_decreasing_length(c.netlist(), &tests, &list);
        let effective = report.effective_tests();
        assert!(!effective.is_empty());
        assert!(effective.len() < tests.len());
        let pruned: Vec<ScanTest> = effective.iter().map(|&t| tests[t].clone()).collect();
        let pruned_report = run(c.netlist(), &pruned, &list);
        assert_eq!(pruned_report.detected(), report.detected());
    }

    #[test]
    fn parallel_equals_sequential() {
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        let list = faults::as_fault_list(&stuck);
        let order: Vec<usize> = (0..tests.len()).collect();
        let sequential = run_ordered(c.netlist(), &tests, &order, &list);
        for threads in [1, 2, 4] {
            let parallel = run_parallel(c.netlist(), &tests, &order, &list, true, threads);
            assert_eq!(
                parallel.detecting_test, sequential.detecting_test,
                "{threads}"
            );
            assert_eq!(parallel.new_detections, sequential.new_detections);
        }
        // Non-observing variant agrees too.
        let seq_po = run_ordered_observing(c.netlist(), &tests, &order, &list, false);
        let par_po = run_parallel(c.netlist(), &tests, &order, &list, false, 3);
        assert_eq!(par_po.detecting_test, seq_po.detecting_test);
    }

    /// Vacuous case pinned: an empty fault list is 100% covered — the same
    /// convention as `TestSet::percent_unit_tested` with zero transitions.
    #[test]
    fn empty_fault_list_is_vacuously_covered() {
        let (c, tests) = lion_setup();
        let report = run(c.netlist(), &tests, &[]);
        assert_eq!(report.num_faults(), 0);
        assert_eq!(report.detected(), 0);
        assert!((report.coverage_percent() - 100.0).abs() < 1e-12);
        assert!(report.undetected_faults().is_empty());
    }

    #[test]
    fn more_than_64_faults_batch_correctly() {
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        assert!(
            stuck.len() > 64,
            "need multiple batches, got {}",
            stuck.len()
        );
        let list = faults::as_fault_list(&stuck);
        let report = run(c.netlist(), &tests, &list);
        // Cross-check a sample of faults against single-fault simulation.
        for (f, fault) in list.iter().enumerate().step_by(7) {
            let single = run(c.netlist(), &tests, std::slice::from_ref(fault));
            assert_eq!(
                single.detecting_test[0].is_some(),
                report.detecting_test[f].is_some(),
                "fault {f}"
            );
        }
    }

    fn lion_campaign() -> (
        scanft_synth::SynthesizedCircuit,
        Vec<ScanTest>,
        Vec<usize>,
        Vec<Fault>,
    ) {
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        let list = faults::as_fault_list(&stuck);
        let order: Vec<usize> = (0..tests.len()).collect();
        (c, tests, order, list)
    }

    #[test]
    fn supervised_complete_run_matches_sequential() {
        let (c, tests, order, list) = lion_campaign();
        let sequential = run_ordered(c.netlist(), &tests, &order, &list);
        let config = SupervisedConfig {
            num_threads: 2,
            ..SupervisedConfig::default()
        };
        let partial = run_supervised(
            c.netlist(),
            &tests,
            &order,
            &list,
            &config,
            None,
            None,
            None,
        )
        .expect("no journal involved");
        assert!(partial.is_complete());
        assert!(partial.stopped.is_none());
        assert_eq!(partial.resumed_units, Vec::<usize>::new());
        assert_eq!(partial.completed_units.len(), partial.num_units);
        assert_eq!(partial.into_complete().expect("complete"), sequential);
    }

    #[test]
    fn supervised_zero_second_budget_is_cleanly_empty() {
        // The vacuous-deadline edge: nothing simulated, nothing quarantined,
        // every batch remaining, coverage lower bound 0%.
        let (c, tests, order, list) = lion_campaign();
        let config = SupervisedConfig {
            num_threads: 2,
            budget: Budget::unlimited().with_deadline(std::time::Duration::ZERO),
            ..SupervisedConfig::default()
        };
        let partial = run_supervised(
            c.netlist(),
            &tests,
            &order,
            &list,
            &config,
            None,
            None,
            None,
        )
        .expect("no journal involved");
        assert!(partial.completed_units.is_empty());
        assert!(partial.quarantined.is_empty());
        assert_eq!(partial.remaining_units.len(), partial.num_units);
        assert_eq!(partial.stopped, Some(StopReason::Deadline));
        assert_eq!(partial.report.detected(), 0);
        assert!(partial.coverage_lower_bound_percent().abs() < 1e-12);
        assert_eq!(partial.faults_unresolved(), list.len());
        assert!(partial.into_complete().is_none());
    }

    #[test]
    fn supervised_journal_then_resume_is_bit_identical() {
        let (c, tests, order, list) = lion_campaign();
        let uninterrupted = run_ordered(c.netlist(), &tests, &order, &list);
        let config = SupervisedConfig {
            num_threads: 2,
            // Stop after one batch so the journal is genuinely partial.
            budget: Budget::unlimited().with_max_units(1),
            ..SupervisedConfig::default()
        };
        let (writer, buffer) = JournalWriter::in_memory();
        let first = run_supervised(
            c.netlist(),
            &tests,
            &order,
            &list,
            &config,
            Some(&writer),
            None,
            None,
        )
        .expect("journal write to memory");
        assert_eq!(first.completed_units.len(), 1);
        assert!(!first.remaining_units.is_empty());

        let journal = scanft_harness::read_journal(&scanft_harness::buffer_contents(&buffer));
        assert_eq!(journal.records.len(), 1);
        let resumed_config = SupervisedConfig {
            num_threads: 2,
            ..SupervisedConfig::default()
        };
        let resumed = run_supervised(
            c.netlist(),
            &tests,
            &order,
            &list,
            &resumed_config,
            None,
            Some(&journal),
            None,
        )
        .expect("resume");
        assert!(resumed.is_complete());
        assert_eq!(resumed.resumed_units, first.completed_units);
        assert_eq!(resumed.into_complete().expect("complete"), uninterrupted);
    }

    #[test]
    fn supervised_resume_refuses_mismatched_journal() {
        let (c, tests, order, list) = lion_campaign();
        let (writer, buffer) = JournalWriter::in_memory();
        writer
            .write_header(&JournalHeader {
                label: "other".to_owned(),
                faults: list.len() + 1,
                units: 9,
                order: order.len(),
                lanes_per_unit: 64,
            })
            .expect("memory write");
        let journal = scanft_harness::read_journal(&scanft_harness::buffer_contents(&buffer));
        let err = run_supervised(
            c.netlist(),
            &tests,
            &order,
            &list,
            &SupervisedConfig::default(),
            None,
            Some(&journal),
            None,
        )
        .expect_err("shape mismatch must refuse");
        assert!(matches!(err, ScanftError::Journal { .. }));
    }

    #[test]
    fn empty_batch_runs_no_simulation() {
        // Regression: an empty batch used to run a full (vacuous)
        // simulation pass before noticing its all-zero lane mask.
        let (c, tests, order, _) = lion_campaign();
        let mut engine = FaultEngine::new(c.netlist());
        let verdicts = run_batch(&mut engine, c.netlist(), &tests, &order, &[], &[], true);
        assert!(verdicts.is_empty());
        assert_eq!(engine.gate_evals(), 0, "empty batch must not simulate");
    }

    #[test]
    fn wide_sequential_matches_narrow() {
        // The differential oracle: the wide event-driven kernel must agree
        // with the narrow full-resimulation kernel verdict-for-verdict.
        let (c, tests, order, list) = lion_campaign();
        for observe in [true, false] {
            let narrow = run_ordered_observing(c.netlist(), &tests, &order, &list, observe);
            let wide = run_ordered_wide(c.netlist(), &tests, &order, &list, observe);
            assert_eq!(wide.detecting_test, narrow.detecting_test, "{observe}");
            assert_eq!(wide.new_detections, narrow.new_detections);
        }
    }

    #[test]
    fn wide_supervised_matches_narrow_and_journals_64_lane_units() {
        let (c, tests, order, list) = lion_campaign();
        let sequential = run_ordered(c.netlist(), &tests, &order, &list);
        let config = SupervisedConfig {
            num_threads: 2,
            kernel: Kernel::Wide,
            ..SupervisedConfig::default()
        };
        let (writer, buffer) = JournalWriter::in_memory();
        let partial = run_supervised(
            c.netlist(),
            &tests,
            &order,
            &list,
            &config,
            Some(&writer),
            None,
            None,
        )
        .expect("journal write to memory");
        assert!(partial.is_complete());
        assert_eq!(partial.into_complete().expect("complete"), sequential);
        // Wide super-batches still journal one 64-lane record per unit, so
        // narrow runs can resume from this checkpoint (and vice versa).
        let journal = scanft_harness::read_journal(&scanft_harness::buffer_contents(&buffer));
        assert_eq!(journal.records.len(), list.len().div_ceil(64));
        for record in &journal.records {
            assert!(record.lanes.len() <= 64);
        }
    }

    #[test]
    fn wide_resume_from_narrow_journal_is_bit_identical() {
        // Cross-kernel resume: a checkpoint written by the narrow kernel
        // continues under the wide kernel (journaled units become skipped
        // lanes in the super batch) with bit-identical results.
        let (c, tests, order, list) = lion_campaign();
        let uninterrupted = run_ordered(c.netlist(), &tests, &order, &list);
        let narrow_config = SupervisedConfig {
            budget: Budget::unlimited().with_max_units(1),
            ..SupervisedConfig::default()
        };
        let (writer, buffer) = JournalWriter::in_memory();
        let first = run_supervised(
            c.netlist(),
            &tests,
            &order,
            &list,
            &narrow_config,
            Some(&writer),
            None,
            None,
        )
        .expect("journal write to memory");
        assert_eq!(first.completed_units.len(), 1);
        assert!(!first.remaining_units.is_empty());

        let journal = scanft_harness::read_journal(&scanft_harness::buffer_contents(&buffer));
        let wide_config = SupervisedConfig {
            kernel: Kernel::Wide,
            ..SupervisedConfig::default()
        };
        let resumed = run_supervised(
            c.netlist(),
            &tests,
            &order,
            &list,
            &wide_config,
            None,
            Some(&journal),
            None,
        )
        .expect("resume");
        assert!(resumed.is_complete());
        assert_eq!(resumed.resumed_units, first.completed_units);
        assert_eq!(resumed.into_complete().expect("complete"), uninterrupted);
    }

    #[test]
    fn kernel_flag_round_trips() {
        assert_eq!(Kernel::from_flag("narrow"), Some(Kernel::Narrow));
        assert_eq!(Kernel::from_flag("wide"), Some(Kernel::Wide));
        assert_eq!(Kernel::from_flag("256"), None);
        assert_eq!(Kernel::Narrow.name(), "narrow");
        assert_eq!(Kernel::Wide.name(), "wide");
        assert_eq!(Kernel::default(), Kernel::Narrow);
    }

    #[test]
    fn supervised_quarantine_keeps_coverage_a_lower_bound() {
        scanft_harness::silence_chaos_panics();
        let (c, tests, order, list) = lion_campaign();
        let sequential = run_ordered(c.netlist(), &tests, &order, &list);
        // Panic on every unit: coverage must be exactly zero, never invented.
        let plan = FailurePlan::new(7).with_panic_rate(1, 1);
        let partial = run_supervised(
            c.netlist(),
            &tests,
            &order,
            &list,
            &SupervisedConfig::default(),
            None,
            None,
            Some(&plan),
        )
        .expect("no journal involved");
        assert!(partial.completed_units.is_empty());
        assert_eq!(partial.quarantined.len(), partial.num_units);
        assert_eq!(partial.report.detected(), 0);
        assert!(partial.coverage_lower_bound_percent() <= sequential.coverage_percent());
    }
}
