//! Whole-test-set fault simulation with fault dropping, plus the paper's
//! effective-test selection.
//!
//! The paper simulates the functional tests *in decreasing order of length*
//! (ties keep the generation order) with fault dropping, and keeps a test —
//! calls it *effective* — iff it newly detects at least one fault (Table 3
//! for `lion`, Tables 6 and 7 in aggregate). Dropping a test drops one scan
//! operation regardless of its length, so pruning short tests shrinks test
//! application time most.

use scanft_netlist::Netlist;

use crate::engine::{FaultEngine, InjectionPlan};
use crate::faults::Fault;
use crate::logic;
use crate::{ScanResponse, ScanTest};

/// Outcome of simulating an ordered test set against a fault list.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// For each fault (input order), the index *into the simulated order*
    /// of the first test that detects it, or `None` if undetected.
    pub detecting_test: Vec<Option<usize>>,
    /// The simulation order as indices into the caller's test list.
    pub order: Vec<usize>,
    /// Number of faults newly detected by each test of `order`.
    pub new_detections: Vec<usize>,
}

impl CampaignReport {
    /// Total number of faults simulated.
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.detecting_test.len()
    }

    /// Number of detected faults.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.detecting_test.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage in percent (100.0 when there are no faults).
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.detecting_test.is_empty() {
            return 100.0;
        }
        100.0 * self.detected() as f64 / self.detecting_test.len() as f64
    }

    /// Indices (into the caller's test list) of the effective tests — those
    /// that newly detect at least one fault — in simulated order.
    #[must_use]
    pub fn effective_tests(&self) -> Vec<usize> {
        self.order
            .iter()
            .zip(&self.new_detections)
            .filter_map(|(&t, &n)| (n > 0).then_some(t))
            .collect()
    }

    /// Indices of the undetected faults (into the caller's fault list).
    #[must_use]
    pub fn undetected_faults(&self) -> Vec<usize> {
        self.detecting_test
            .iter()
            .enumerate()
            .filter_map(|(f, d)| d.is_none().then_some(f))
            .collect()
    }
}

/// Simulates `tests` in the given order against `faults` with fault
/// dropping.
///
/// Faults are processed in batches of 64 lanes; each batch walks the test
/// list once, skipping lanes already detected, so the result is identical
/// to per-fault sequential simulation with dropping.
#[must_use]
pub fn run(netlist: &Netlist, tests: &[ScanTest], faults: &[Fault]) -> CampaignReport {
    let order: Vec<usize> = (0..tests.len()).collect();
    run_ordered(netlist, tests, &order, faults)
}

/// Simulates tests in the paper's effective-test order: decreasing length,
/// ties in original order.
#[must_use]
pub fn run_decreasing_length(
    netlist: &Netlist,
    tests: &[ScanTest],
    faults: &[Fault],
) -> CampaignReport {
    let mut order: Vec<usize> = (0..tests.len()).collect();
    order.sort_by(|&a, &b| tests[b].len().cmp(&tests[a].len()).then(a.cmp(&b)));
    run_ordered(netlist, tests, &order, faults)
}

/// Simulates tests in an explicit order (indices into `tests`) with fault
/// dropping.
///
/// # Panics
///
/// Panics if `order` references a test out of range.
#[must_use]
pub fn run_ordered(
    netlist: &Netlist,
    tests: &[ScanTest],
    order: &[usize],
    faults: &[Fault],
) -> CampaignReport {
    run_ordered_observing(netlist, tests, order, faults, true)
}

/// Like [`run_ordered`], with the scan-out observation made optional —
/// `observe_scan_out = false` models non-scan test application where faults
/// are visible only at the primary outputs.
#[must_use]
pub fn run_ordered_observing(
    netlist: &Netlist,
    tests: &[ScanTest],
    order: &[usize],
    faults: &[Fault],
    observe_scan_out: bool,
) -> CampaignReport {
    let obs = scanft_obs::global();
    let _span = obs.timer("sim.campaign.run").start();
    obs.counter("sim.campaign.faults").add(faults.len() as u64);
    let batches_run = obs.counter("sim.campaign.batches");
    let tests_simulated = obs.counter("sim.campaign.tests_simulated");
    let tests_skipped = obs.counter("sim.campaign.tests_skipped");

    // Fault-free responses, computed once per referenced test.
    let mut responses: Vec<Option<ScanResponse>> = vec![None; tests.len()];
    for &t in order {
        if responses[t].is_none() {
            responses[t] = Some(logic::simulate(netlist, &tests[t]));
        }
    }

    let mut detecting_test: Vec<Option<usize>> = vec![None; faults.len()];
    let mut engine = FaultEngine::new(netlist);
    for (batch_start, batch) in faults.chunks(64).enumerate().map(|(i, b)| (i * 64, b)) {
        batches_run.inc();
        let plan = InjectionPlan::new(netlist, batch);
        let mut detected: u64 = 0;
        let all = plan.lane_mask();
        for (pos, &t) in order.iter().enumerate() {
            let response = responses[t].as_ref().expect("response precomputed");
            tests_simulated.inc();
            let newly =
                engine.run_test_observing(&tests[t], response, &plan, detected, observe_scan_out);
            if newly != 0 {
                let mut lanes = newly;
                while lanes != 0 {
                    let lane = lanes.trailing_zeros() as usize;
                    detecting_test[batch_start + lane] = Some(pos);
                    lanes &= lanes - 1;
                }
                detected |= newly;
            }
            if detected == all {
                // Fault dropping: the whole batch is detected, so the rest
                // of the ordered test list never has to be simulated.
                tests_skipped.add((order.len() - pos - 1) as u64);
                break;
            }
        }
    }

    let mut new_detections = vec![0usize; order.len()];
    for d in detecting_test.iter().flatten() {
        new_detections[*d] += 1;
    }
    CampaignReport {
        detecting_test,
        order: order.to_vec(),
        new_detections,
    }
}

/// Like [`run_ordered_observing`], with the 64-fault batches distributed
/// over `num_threads` worker threads. Batches are independent (each owns
/// its lanes), so the result is bit-identical to the sequential runner.
///
/// # Panics
///
/// Panics if `num_threads == 0` or `order` references a test out of range.
#[must_use]
pub fn run_parallel(
    netlist: &Netlist,
    tests: &[ScanTest],
    order: &[usize],
    faults: &[Fault],
    observe_scan_out: bool,
    num_threads: usize,
) -> CampaignReport {
    assert!(num_threads > 0, "num_threads must be positive");
    let obs = scanft_obs::global();
    let _span = obs.timer("sim.campaign.parallel").start();
    obs.counter("sim.campaign.faults").add(faults.len() as u64);
    // Fault-free responses, computed once up front and shared read-only.
    let mut responses: Vec<Option<ScanResponse>> = vec![None; tests.len()];
    for &t in order {
        if responses[t].is_none() {
            responses[t] = Some(logic::simulate(netlist, &tests[t]));
        }
    }

    let batches: Vec<(usize, &[Fault])> = faults
        .chunks(64)
        .enumerate()
        .map(|(i, b)| (i * 64, b))
        .collect();
    let next_batch = std::sync::atomic::AtomicUsize::new(0);
    let mut detecting_test: Vec<Option<usize>> = vec![None; faults.len()];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..num_threads.min(batches.len().max(1)) {
            let batches = &batches;
            let next_batch = &next_batch;
            let responses = &responses;
            let batches_run = obs.counter("sim.campaign.batches");
            let thread_batches =
                obs.counter(&format!("sim.campaign.parallel.thread{worker}.batches"));
            handles.push(scope.spawn(move || {
                let mut engine = FaultEngine::new(netlist);
                let mut results: Vec<(usize, Vec<Option<usize>>)> = Vec::new();
                loop {
                    let k = next_batch.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&(batch_start, batch)) = batches.get(k) else {
                        break;
                    };
                    batches_run.inc();
                    thread_batches.inc();
                    let plan = InjectionPlan::new(netlist, batch);
                    let mut local: Vec<Option<usize>> = vec![None; batch.len()];
                    let mut detected: u64 = 0;
                    let all = plan.lane_mask();
                    for (pos, &t) in order.iter().enumerate() {
                        let response = responses[t].as_ref().expect("precomputed");
                        let newly = engine.run_test_observing(
                            &tests[t],
                            response,
                            &plan,
                            detected,
                            observe_scan_out,
                        );
                        let mut lanes = newly;
                        while lanes != 0 {
                            let lane = lanes.trailing_zeros() as usize;
                            local[lane] = Some(pos);
                            lanes &= lanes - 1;
                        }
                        detected |= newly;
                        if detected == all {
                            break;
                        }
                    }
                    results.push((batch_start, local));
                }
                results
            }));
        }
        for handle in handles {
            for (batch_start, local) in handle.join().expect("worker thread panicked") {
                for (lane, verdict) in local.into_iter().enumerate() {
                    detecting_test[batch_start + lane] = verdict;
                }
            }
        }
    });

    let mut new_detections = vec![0usize; order.len()];
    for d in detecting_test.iter().flatten() {
        new_detections[*d] += 1;
    }
    CampaignReport {
        detecting_test,
        order: order.to_vec(),
        new_detections,
    }
}

/// Per-test row of an effectiveness table (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffectivenessRow {
    /// Index into the caller's test list.
    pub test: usize,
    /// Test length.
    pub length: usize,
    /// Cumulative faults detected after simulating this test.
    pub cumulative_detected: usize,
    /// Whether the test newly detected any fault.
    pub effective: bool,
}

/// Produces the rows of a Table-3-style effectiveness table from a
/// decreasing-length campaign.
#[must_use]
pub fn effectiveness_table(tests: &[ScanTest], report: &CampaignReport) -> Vec<EffectivenessRow> {
    let mut cumulative = 0usize;
    report
        .order
        .iter()
        .zip(&report.new_detections)
        .map(|(&t, &n)| {
            cumulative += n;
            EffectivenessRow {
                test: t,
                length: tests[t].len(),
                cumulative_detected: cumulative,
                effective: n > 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults;
    use scanft_synth::{synthesize, SynthConfig};

    fn lion_setup() -> (scanft_synth::SynthesizedCircuit, Vec<ScanTest>) {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let tests = lion
            .transitions()
            .map(|t| ScanTest::new(c.encode_state(t.from), vec![t.input]))
            .collect();
        (c, tests)
    }

    #[test]
    fn exhaustive_transition_tests_detect_everything_detectable() {
        // Length-1 tests for every transition exercise every (state, input)
        // pair, so they must detect exactly the detectable faults — the
        // faults they miss are combinationally redundant (the situation the
        // paper describes for its sub-100% rows of Table 6).
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        let list = faults::as_fault_list(&stuck);
        let report = run(c.netlist(), &tests, &list);
        let (detectable, undetectable, over) =
            crate::exhaustive::classify(c.netlist(), &list, 1 << 20);
        assert!(over.is_empty());
        assert_eq!(report.detected(), detectable.len());
        for f in report.undetected_faults() {
            assert!(undetectable.contains(&f), "fault {f} detectable but missed");
        }
    }

    #[test]
    fn order_does_not_change_coverage() {
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        let list = faults::as_fault_list(&stuck);
        let forward = run(c.netlist(), &tests, &list);
        let reversed_order: Vec<usize> = (0..tests.len()).rev().collect();
        let backward = run_ordered(c.netlist(), &tests, &reversed_order, &list);
        assert_eq!(forward.detected(), backward.detected());
    }

    #[test]
    fn decreasing_length_order_is_stable() {
        let tests = vec![
            ScanTest::new(0, vec![0]),
            ScanTest::new(0, vec![0, 1, 2]),
            ScanTest::new(0, vec![1]),
            ScanTest::new(0, vec![1, 2]),
        ];
        let (c, _) = lion_setup();
        let report = run_decreasing_length(c.netlist(), &tests, &[]);
        assert_eq!(report.order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn effectiveness_rows_accumulate() {
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        let report = run_decreasing_length(c.netlist(), &tests, &faults::as_fault_list(&stuck));
        let rows = effectiveness_table(&tests, &report);
        assert_eq!(rows.len(), tests.len());
        let last = rows.last().unwrap();
        assert_eq!(last.cumulative_detected, report.detected());
        // Cumulative counts never decrease.
        for pair in rows.windows(2) {
            assert!(pair[1].cumulative_detected >= pair[0].cumulative_detected);
        }
        // Every effective row adds detections.
        for pair in rows.windows(2) {
            assert_eq!(
                pair[1].effective,
                pair[1].cumulative_detected > pair[0].cumulative_detected
            );
        }
    }

    #[test]
    fn effective_tests_cover_like_full_set() {
        // Re-simulating only the effective tests yields the same coverage —
        // the invariant behind the paper's test-set pruning.
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        let list = faults::as_fault_list(&stuck);
        let report = run_decreasing_length(c.netlist(), &tests, &list);
        let effective = report.effective_tests();
        assert!(!effective.is_empty());
        assert!(effective.len() < tests.len());
        let pruned: Vec<ScanTest> = effective.iter().map(|&t| tests[t].clone()).collect();
        let pruned_report = run(c.netlist(), &pruned, &list);
        assert_eq!(pruned_report.detected(), report.detected());
    }

    #[test]
    fn parallel_equals_sequential() {
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        let list = faults::as_fault_list(&stuck);
        let order: Vec<usize> = (0..tests.len()).collect();
        let sequential = run_ordered(c.netlist(), &tests, &order, &list);
        for threads in [1, 2, 4] {
            let parallel = run_parallel(c.netlist(), &tests, &order, &list, true, threads);
            assert_eq!(
                parallel.detecting_test, sequential.detecting_test,
                "{threads}"
            );
            assert_eq!(parallel.new_detections, sequential.new_detections);
        }
        // Non-observing variant agrees too.
        let seq_po = run_ordered_observing(c.netlist(), &tests, &order, &list, false);
        let par_po = run_parallel(c.netlist(), &tests, &order, &list, false, 3);
        assert_eq!(par_po.detecting_test, seq_po.detecting_test);
    }

    /// Vacuous case pinned: an empty fault list is 100% covered — the same
    /// convention as `TestSet::percent_unit_tested` with zero transitions.
    #[test]
    fn empty_fault_list_is_vacuously_covered() {
        let (c, tests) = lion_setup();
        let report = run(c.netlist(), &tests, &[]);
        assert_eq!(report.num_faults(), 0);
        assert_eq!(report.detected(), 0);
        assert!((report.coverage_percent() - 100.0).abs() < 1e-12);
        assert!(report.undetected_faults().is_empty());
    }

    #[test]
    fn more_than_64_faults_batch_correctly() {
        let (c, tests) = lion_setup();
        let stuck = faults::enumerate_stuck(c.netlist());
        assert!(
            stuck.len() > 64,
            "need multiple batches, got {}",
            stuck.len()
        );
        let list = faults::as_fault_list(&stuck);
        let report = run(c.netlist(), &tests, &list);
        // Cross-check a sample of faults against single-fault simulation.
        for (f, fault) in list.iter().enumerate().step_by(7) {
            let single = run(c.netlist(), &tests, std::slice::from_ref(fault));
            assert_eq!(
                single.detecting_test[0].is_some(),
                report.detecting_test[f].is_some(),
                "fault {f}"
            );
        }
    }
}
