//! Fault universes: single stuck-at faults and non-feedback bridging faults.
//!
//! **Stuck-at**: a stuck-at-0/1 on every *line* of the circuit — every net
//! (PI, present-state line, gate output) is a stem line, and every input pin
//! of a gate fed by a net with more than one fanout is a distinct branch
//! line (a fault on one branch of a fanout stem is not equivalent to the
//! stem fault, so branches get their own faults, as in standard line-fault
//! enumeration).
//!
//! **Bridging**: exactly the paper's universe — for every pair of lines
//! `g1`, `g2` such that
//!
//! 1. `g1` and `g2` are outputs of multi-input gates,
//! 2. `g1` and `g2` are inputs of different gates (they share no consumer),
//! 3. there is no structural path from `g1` to `g2` nor from `g2` to `g1`
//!    (non-feedback),
//!
//! both an AND-type and an OR-type bridge are considered: the bridged lines
//! both take the AND (resp. OR) of their driven values.

use scanft_netlist::{NetId, Netlist, Reachability};

/// A single stuck-at fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A stem line: the net itself (affects all its fanout).
    Net(NetId),
    /// A fanout branch: input pin `pin` of gate `gate` only.
    Branch {
        /// Index of the consuming gate.
        gate: u32,
        /// Pin position within that gate's input list.
        pin: u32,
    },
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StuckFault {
    /// Where the fault sits.
    pub site: FaultSite,
    /// The stuck value: `true` = stuck-at-1.
    pub stuck_at_one: bool,
}

/// Wired-logic type of a bridging fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BridgeKind {
    /// Both lines take the AND of the two driven values (wired-AND).
    And,
    /// Both lines take the OR of the two driven values (wired-OR).
    Or,
}

/// A non-feedback bridging fault between two lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BridgingFault {
    /// First bridged net (`a < b` canonically).
    pub a: NetId,
    /// Second bridged net.
    pub b: NetId,
    /// Wired-AND or wired-OR behaviour.
    pub kind: BridgeKind,
}

/// A gross transition-delay fault: the named net takes more than one clock
/// period to complete its slow transition, so a value launched in one cycle
/// is captured one cycle late.
///
/// Detection requires **at-speed** consecutive cycles: a length-1 test
/// (scan-in, one capture, scan-out) never launches a transition through the
/// combinational logic, which is exactly why the paper argues for chaining
/// transitions into longer tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DelayFault {
    /// The slow net.
    pub net: NetId,
    /// `true` = slow-to-rise (late 0→1), `false` = slow-to-fall.
    pub slow_to_rise: bool,
}

/// Any fault the engine can simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Single stuck-at fault.
    Stuck(StuckFault),
    /// Non-feedback bridging fault.
    Bridge(BridgingFault),
    /// Gross transition-delay fault.
    Delay(DelayFault),
}

impl Fault {
    /// Human-readable description, e.g. `g3 s-a-1` or `g2~g7 wired-AND`.
    #[must_use]
    pub fn describe(&self, netlist: &Netlist) -> String {
        match self {
            Fault::Stuck(f) => {
                let v = if f.stuck_at_one { 1 } else { 0 };
                match f.site {
                    FaultSite::Net(net) => format!("{} s-a-{v}", netlist.net_name(net)),
                    FaultSite::Branch { gate, pin } => {
                        let src = netlist.gates()[gate as usize].inputs[pin as usize];
                        format!(
                            "{}->{} s-a-{v}",
                            netlist.net_name(src),
                            netlist.net_name(netlist.gate_output(gate as usize))
                        )
                    }
                }
            }
            Fault::Bridge(f) => {
                let kind = match f.kind {
                    BridgeKind::And => "wired-AND",
                    BridgeKind::Or => "wired-OR",
                };
                format!("{}~{} {kind}", netlist.net_name(f.a), netlist.net_name(f.b))
            }
            Fault::Delay(f) => {
                let dir = if f.slow_to_rise { "rise" } else { "fall" };
                format!("{} slow-to-{dir}", netlist.net_name(f.net))
            }
        }
    }
}

/// Enumerates transition-delay faults (slow-to-rise and slow-to-fall) on
/// every connected net.
#[must_use]
pub fn enumerate_delay(netlist: &Netlist) -> Vec<DelayFault> {
    let mut faults = Vec::new();
    for net in 0..netlist.num_nets() as NetId {
        if !netlist.is_connected(net) {
            continue;
        }
        for slow_to_rise in [false, true] {
            faults.push(DelayFault { net, slow_to_rise });
        }
    }
    faults
}

/// Wraps delay faults into the generic [`Fault`] list the engine takes.
#[must_use]
pub fn delays_as_fault_list(delays: &[DelayFault]) -> Vec<Fault> {
    delays.iter().copied().map(Fault::Delay).collect()
}

/// Enumerates the full uncollapsed single stuck-at universe of `netlist`:
/// two faults per connected net (stem) and two per fanout branch.
///
/// Nets that drive nothing (not even an output) are skipped — a fault there
/// is trivially undetectable and only distorts coverage percentages.
#[must_use]
pub fn enumerate_stuck(netlist: &Netlist) -> Vec<StuckFault> {
    let mut faults = Vec::new();
    for net in 0..netlist.num_nets() as NetId {
        if !netlist.is_connected(net) {
            continue;
        }
        for stuck_at_one in [false, true] {
            faults.push(StuckFault {
                site: FaultSite::Net(net),
                stuck_at_one,
            });
        }
        // Branch faults only where the stem actually branches.
        if netlist.fanout(net).len() > 1 {
            for &g in netlist.fanout(net) {
                let gate = &netlist.gates()[g as usize];
                for (pin, &input) in gate.inputs.iter().enumerate() {
                    if input == net {
                        for stuck_at_one in [false, true] {
                            faults.push(StuckFault {
                                site: FaultSite::Branch {
                                    gate: g,
                                    pin: pin as u32,
                                },
                                stuck_at_one,
                            });
                        }
                    }
                }
            }
        }
    }
    faults
}

/// Enumerates the paper's bridging-fault universe (see module docs), both
/// AND-type and OR-type per qualifying pair, capped at `max_pairs` pairs.
///
/// When the structural pair count exceeds `max_pairs`, pairs are kept by a
/// deterministic stride so the selection is reproducible; the true pair
/// count is reported in [`BridgeEnumeration::total_pairs`] — never silently
/// truncated.
#[must_use]
pub fn enumerate_bridging(netlist: &Netlist, max_pairs: usize) -> BridgeEnumeration {
    let reach = Reachability::new(netlist);
    // Candidate lines: outputs of multi-input gates (condition 1) that feed
    // at least one gate (condition 2 requires them to be gate inputs).
    let candidates: Vec<NetId> = (0..netlist.num_gates())
        .map(|g| netlist.gate_output(g))
        .filter(|&net| {
            let gate = netlist.driver(net).expect("gate outputs have drivers");
            gate.inputs.len() > 1 && !netlist.fanout(net).is_empty()
        })
        .collect();

    let mut pairs: Vec<(NetId, NetId)> = Vec::new();
    for (i, &a) in candidates.iter().enumerate() {
        for &b in &candidates[i + 1..] {
            // Condition 2: inputs of different gates — no shared consumer.
            let shares_consumer = netlist
                .fanout(a)
                .iter()
                .any(|g| netlist.fanout(b).contains(g));
            if shares_consumer {
                continue;
            }
            // Condition 3: non-feedback.
            if !reach.independent(a, b) {
                continue;
            }
            pairs.push((a, b));
        }
    }

    let total_pairs = pairs.len();
    let kept: Vec<(NetId, NetId)> = if total_pairs > max_pairs && max_pairs > 0 {
        // Deterministic stride subsample.
        (0..max_pairs)
            .map(|k| pairs[k * total_pairs / max_pairs])
            .collect()
    } else {
        pairs
    };

    // No silent caps: the subsampling is observable in the metrics export,
    // not just in the returned struct.
    let obs = scanft_obs::global();
    obs.counter("sim.faults.bridge_pairs")
        .add(total_pairs as u64);
    obs.counter("sim.faults.bridge_pairs_dropped")
        .add((total_pairs - kept.len()) as u64);

    let faults = kept
        .iter()
        .flat_map(|&(a, b)| {
            [BridgeKind::And, BridgeKind::Or]
                .into_iter()
                .map(move |kind| BridgingFault { a, b, kind })
        })
        .collect();
    BridgeEnumeration {
        faults,
        total_pairs,
    }
}

/// Result of bridging-fault enumeration.
#[derive(Debug, Clone)]
pub struct BridgeEnumeration {
    /// The enumerated faults (two per kept pair).
    pub faults: Vec<BridgingFault>,
    /// Number of structurally qualifying pairs before any cap.
    pub total_pairs: usize,
}

impl BridgeEnumeration {
    /// Whether the cap truncated the universe.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.faults.len() < self.total_pairs * 2
    }

    /// Number of structurally qualifying pairs dropped by the cap.
    #[must_use]
    pub fn dropped_pairs(&self) -> usize {
        self.total_pairs - self.faults.len() / 2
    }
}

/// Wraps stuck-at faults into the generic [`Fault`] list the engine takes.
#[must_use]
pub fn as_fault_list(stuck: &[StuckFault]) -> Vec<Fault> {
    stuck.iter().copied().map(Fault::Stuck).collect()
}

/// Wraps bridging faults into the generic [`Fault`] list the engine takes.
#[must_use]
pub fn bridges_as_fault_list(bridges: &[BridgingFault]) -> Vec<Fault> {
    bridges.iter().copied().map(Fault::Bridge).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_netlist::{GateKind, NetlistBuilder};

    fn diamond() -> Netlist {
        // x1,x2,x3; a = AND(x1,x2); b = OR(x2,x3); c = AND(a,b) -> PO.
        let mut bld = NetlistBuilder::new(3, 0);
        let a = bld.add_gate(GateKind::And, &[0, 1]).unwrap();
        let b = bld.add_gate(GateKind::Or, &[1, 2]).unwrap();
        let c = bld.add_gate(GateKind::And, &[a, b]).unwrap();
        bld.finish(vec![c], vec![]).unwrap()
    }

    #[test]
    fn stuck_enumeration_counts() {
        let n = diamond();
        let faults = enumerate_stuck(&n);
        // Nets: 3 PIs + 3 gates = 6 stems = 12 faults; x2 branches to two
        // gates = 2 pins * 2 values = 4 branch faults.
        assert_eq!(faults.len(), 16);
        let branches = faults
            .iter()
            .filter(|f| matches!(f.site, FaultSite::Branch { .. }))
            .count();
        assert_eq!(branches, 4);
    }

    #[test]
    fn disconnected_nets_are_skipped() {
        let mut bld = NetlistBuilder::new(2, 0);
        let a = bld.add_gate(GateKind::Not, &[0]).unwrap();
        // PI 1 is dangling.
        let n = bld.finish(vec![a], vec![]).unwrap();
        let faults = enumerate_stuck(&n);
        assert_eq!(faults.len(), 4); // x1 and g1 only
    }

    #[test]
    fn bridging_conditions_enforced() {
        let n = diamond();
        let e = enumerate_bridging(&n, usize::MAX);
        // Candidates: a, b, c (all multi-input). c feeds nothing but the PO
        // list => fanout empty => excluded by condition 2's gate-input
        // requirement. a and b both feed gate c => shared consumer =>
        // excluded. Hence no pairs.
        assert_eq!(e.total_pairs, 0);
        assert!(e.faults.is_empty());
        assert!(!e.truncated());
    }

    #[test]
    fn bridging_finds_independent_pairs() {
        // Two disjoint cones: a = AND(x1,x2) -> n1 = NOT a -> PO1;
        // b = OR(x3,x4) -> n2 = NOT b -> PO2.
        let mut bld = NetlistBuilder::new(4, 0);
        let a = bld.add_gate(GateKind::And, &[0, 1]).unwrap();
        let na = bld.add_gate(GateKind::Not, &[a]).unwrap();
        let b = bld.add_gate(GateKind::Or, &[2, 3]).unwrap();
        let nb = bld.add_gate(GateKind::Not, &[b]).unwrap();
        let n = bld.finish(vec![na, nb], vec![]).unwrap();
        let e = enumerate_bridging(&n, usize::MAX);
        assert_eq!(e.total_pairs, 1);
        assert_eq!(e.faults.len(), 2);
        assert_eq!(e.faults[0].a, a);
        assert_eq!(e.faults[0].b, b);
    }

    #[test]
    fn bridging_cap_is_deterministic_and_reported() {
        // Many parallel AND cones to get several pairs.
        let mut bld = NetlistBuilder::new(8, 0);
        let mut pos = Vec::new();
        for k in 0..4 {
            let a = bld
                .add_gate(GateKind::And, &[2 * k as u32, 2 * k as u32 + 1])
                .unwrap();
            let n = bld.add_gate(GateKind::Not, &[a]).unwrap();
            pos.push(n);
        }
        let n = bld.finish(pos, vec![]).unwrap();
        let full = enumerate_bridging(&n, usize::MAX);
        assert_eq!(full.total_pairs, 6); // C(4,2)
        assert_eq!(full.dropped_pairs(), 0);
        let capped = enumerate_bridging(&n, 3);
        assert_eq!(capped.total_pairs, 6);
        assert_eq!(capped.faults.len(), 6); // 3 pairs * 2 kinds
        assert!(capped.truncated());
        assert_eq!(capped.dropped_pairs(), 3);
        let capped2 = enumerate_bridging(&n, 3);
        assert_eq!(capped.faults, capped2.faults);
    }

    #[test]
    fn describe_is_informative() {
        let n = diamond();
        let f = Fault::Stuck(StuckFault {
            site: FaultSite::Net(0),
            stuck_at_one: true,
        });
        assert_eq!(f.describe(&n), "x1 s-a-1");
        let bf = Fault::Bridge(BridgingFault {
            a: 3,
            b: 4,
            kind: BridgeKind::Or,
        });
        assert_eq!(bf.describe(&n), "g1~g2 wired-OR");
        let brf = Fault::Stuck(StuckFault {
            site: FaultSite::Branch { gate: 0, pin: 1 },
            stuck_at_one: false,
        });
        assert_eq!(brf.describe(&n), "x2->g1 s-a-0");
    }
}
