//! 64-lane bit-parallel combinational evaluation.
//!
//! Every net carries a 64-bit word; the engine interprets the lanes either
//! as 64 independent input patterns (pattern-parallel, used by the
//! exhaustive simulator) or as 64 copies of one pattern under 64 different
//! faults (fault-parallel, used by the fault engine).

use scanft_fsm::InputId;
use scanft_netlist::Netlist;

use crate::{ScanResponse, ScanTest};

/// Reusable evaluation buffers for one netlist (one 64-bit word per net).
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for `netlist`.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        Evaluator {
            netlist,
            values: vec![0; netlist.num_nets()],
        }
    }

    /// The netlist being evaluated.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Current value word of `net` (valid after an `eval_*` call).
    #[must_use]
    pub fn value(&self, net: scanft_netlist::NetId) -> u64 {
        self.values[net as usize]
    }

    /// Loads a primary-input combination, broadcast to all 64 lanes.
    pub fn load_input_broadcast(&mut self, input: InputId) {
        for k in 0..self.netlist.num_pis() {
            self.values[self.netlist.pi(k) as usize] =
                if input >> k & 1 == 1 { u64::MAX } else { 0 };
        }
    }

    /// Loads a state code, broadcast to all 64 lanes.
    pub fn load_state_broadcast(&mut self, code: u64) {
        for k in 0..self.netlist.num_ppis() {
            self.values[self.netlist.ppi(k) as usize] =
                if code >> k & 1 == 1 { u64::MAX } else { 0 };
        }
    }

    /// Loads raw per-lane words into the PIs (pattern-parallel use).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != num_pis()`.
    pub fn load_input_words(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.netlist.num_pis());
        for (k, &w) in words.iter().enumerate() {
            self.values[self.netlist.pi(k) as usize] = w;
        }
    }

    /// Loads raw per-lane words into the PPIs (pattern-parallel use).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != num_ppis()`.
    pub fn load_state_words(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.netlist.num_ppis());
        for (k, &w) in words.iter().enumerate() {
            self.values[self.netlist.ppi(k) as usize] = w;
        }
    }

    /// Evaluates all gates in topological order (fault-free).
    pub fn eval(&mut self) {
        let inputs = self.netlist.num_pis() + self.netlist.num_ppis();
        for (g, gate) in self.netlist.gates().iter().enumerate() {
            let word = eval_gate(gate, &self.values);
            self.values[inputs + g] = word;
        }
    }

    /// Packed primary-output word: bit `k` of lane `l` set when PO `k` is 1
    /// in lane `l`. Returns one word per PO.
    #[must_use]
    pub fn output_words(&self) -> Vec<u64> {
        self.netlist
            .pos()
            .iter()
            .map(|&net| self.values[net as usize])
            .collect()
    }

    /// Per-PO words for the next-state lines.
    #[must_use]
    pub fn next_state_words(&self) -> Vec<u64> {
        self.netlist
            .ppos()
            .iter()
            .map(|&net| self.values[net as usize])
            .collect()
    }

    /// Interprets lane `lane` of the current PO values as a packed output
    /// combination (bit `k` = PO `k`).
    #[must_use]
    pub fn output_combo(&self, lane: usize) -> u64 {
        pack_lane(self.netlist.pos(), &self.values, lane)
    }

    /// Interprets lane `lane` of the current PPO values as a state code.
    #[must_use]
    pub fn next_state_code(&self, lane: usize) -> u64 {
        pack_lane(self.netlist.ppos(), &self.values, lane)
    }
}

fn pack_lane(nets: &[scanft_netlist::NetId], values: &[u64], lane: usize) -> u64 {
    let mut word = 0u64;
    for (k, &net) in nets.iter().enumerate() {
        if values[net as usize] >> lane & 1 == 1 {
            word |= 1 << k;
        }
    }
    word
}

pub(crate) fn eval_gate(gate: &scanft_netlist::Gate, values: &[u64]) -> u64 {
    use scanft_netlist::GateKind;
    match gate.kind {
        GateKind::Not => !values[gate.inputs[0] as usize],
        GateKind::Buf => values[gate.inputs[0] as usize],
        GateKind::And => gate
            .inputs
            .iter()
            .fold(u64::MAX, |acc, &i| acc & values[i as usize]),
        GateKind::Or => gate
            .inputs
            .iter()
            .fold(0, |acc, &i| acc | values[i as usize]),
        GateKind::Nand => !gate
            .inputs
            .iter()
            .fold(u64::MAX, |acc, &i| acc & values[i as usize]),
        GateKind::Nor => !gate
            .inputs
            .iter()
            .fold(0, |acc, &i| acc | values[i as usize]),
        GateKind::Xor => gate
            .inputs
            .iter()
            .fold(0, |acc, &i| acc ^ values[i as usize]),
    }
}

/// Simulates the fault-free response of `netlist` to `test`.
///
/// # Examples
///
/// ```
/// use scanft_sim::{logic, ScanTest};
/// use scanft_synth::{synthesize, SynthConfig};
///
/// let lion = scanft_fsm::benchmarks::lion();
/// let c = synthesize(&lion, &SynthConfig::default());
/// // From state 0 apply 01: output 1, next state 1 (Table 1).
/// let r = logic::simulate(c.netlist(), &ScanTest::new(0, vec![0b01]));
/// assert_eq!(r.outputs, vec![1]);
/// assert_eq!(r.final_code, 1);
/// ```
#[must_use]
pub fn simulate(netlist: &Netlist, test: &ScanTest) -> ScanResponse {
    let mut eval = Evaluator::new(netlist);
    let mut code = test.init_code;
    let mut outputs = Vec::with_capacity(test.inputs.len());
    for &input in &test.inputs {
        eval.load_state_broadcast(code);
        eval.load_input_broadcast(input);
        eval.eval();
        outputs.push(eval.output_combo(0));
        code = eval.next_state_code(0);
    }
    ScanResponse {
        outputs,
        final_code: code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_synth::{synthesize, SynthConfig};

    #[test]
    fn simulate_matches_state_table_on_lion() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        for t in lion.transitions() {
            let r = simulate(
                c.netlist(),
                &ScanTest::new(u64::from(t.from), vec![t.input]),
            );
            assert_eq!(r.outputs, vec![t.output], "transition {t:?}");
            assert_eq!(r.final_code, u64::from(t.to), "transition {t:?}");
        }
    }

    #[test]
    fn simulate_sequences_track_the_machine() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        // The paper's test tau_1 = (0, (10,00,11,00,01,00), 1).
        let seq = vec![0b10, 0b00, 0b11, 0b00, 0b01, 0b00];
        let r = simulate(c.netlist(), &ScanTest::new(0, seq.clone()));
        let (fin, outs) = lion.run(0, &seq);
        assert_eq!(r.final_code, u64::from(fin));
        assert_eq!(r.outputs, outs);
        assert_eq!(fin, 1);
    }

    #[test]
    fn broadcast_lanes_agree() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let mut eval = Evaluator::new(c.netlist());
        eval.load_state_broadcast(2);
        eval.load_input_broadcast(1);
        eval.eval();
        for lane in 0..64 {
            assert_eq!(eval.output_combo(lane), eval.output_combo(0));
            assert_eq!(eval.next_state_code(lane), eval.next_state_code(0));
        }
    }

    #[test]
    fn pattern_parallel_words() {
        // Evaluate two different states in different lanes simultaneously.
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let mut eval = Evaluator::new(c.netlist());
        // lane 0: state 0; lane 1: state 2 (code bits: y1 = bit0, y2 = bit1).
        eval.load_state_words(&[0b00, 0b10]);
        // input 01 in both lanes: x1=0, x2=1 -> PI bit0 (x1? variable order:
        // input bit k of the combination maps to PI k).
        let input = 0b01u32;
        let words: Vec<u64> = (0..2)
            .map(|k| if input >> k & 1 == 1 { 0b11 } else { 0 })
            .collect();
        eval.load_input_words(&words);
        eval.eval();
        // state 0 under 01 -> ns 1 out 1; state 2 under 01 -> ns 2 out 1.
        assert_eq!(eval.output_combo(0), 1);
        assert_eq!(eval.output_combo(1), 1);
        assert_eq!(eval.next_state_code(0), 1);
        assert_eq!(eval.next_state_code(1), 2);
    }
}
