//! Lane-parallel combinational evaluation.
//!
//! Every net carries a lane word ([`crate::word::LaneWord`], `u64` by
//! default); the engine interprets the lanes either as independent input
//! patterns (pattern-parallel, used by the exhaustive simulator) or as
//! copies of one pattern under different faults (fault-parallel, used by
//! the fault engine). Evaluation walks the netlist's flattened
//! [`GateArena`], built once and shared by every evaluator of a campaign.

use scanft_race::sync::Arc;

use scanft_fsm::InputId;
use scanft_netlist::{GateArena, GateKind, NetId, Netlist};

use crate::word::LaneWord;
use crate::{ScanResponse, ScanTest};

/// Reusable evaluation buffers for one netlist (one 64-bit word per net).
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    netlist: &'a Netlist,
    arena: Arc<GateArena>,
    values: Vec<u64>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for `netlist`, building a private arena.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        Evaluator::with_arena(netlist, Arc::new(GateArena::build(netlist)))
    }

    /// Creates an evaluator sharing a prebuilt `arena` (one arena serves
    /// every evaluator and fault engine of a campaign).
    #[must_use]
    pub fn with_arena(netlist: &'a Netlist, arena: Arc<GateArena>) -> Self {
        debug_assert_eq!(arena.num_nets(), netlist.num_nets());
        Evaluator {
            netlist,
            arena,
            values: vec![0; netlist.num_nets()],
        }
    }

    /// The netlist being evaluated.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Current value word of `net` (valid after an `eval_*` call).
    #[must_use]
    pub fn value(&self, net: NetId) -> u64 {
        self.values[net as usize]
    }

    /// Loads a primary-input combination, broadcast to all 64 lanes.
    pub fn load_input_broadcast(&mut self, input: InputId) {
        for k in 0..self.netlist.num_pis() {
            self.values[self.netlist.pi(k) as usize] =
                if input >> k & 1 == 1 { u64::MAX } else { 0 };
        }
    }

    /// Loads a state code, broadcast to all 64 lanes.
    pub fn load_state_broadcast(&mut self, code: u64) {
        for k in 0..self.netlist.num_ppis() {
            self.values[self.netlist.ppi(k) as usize] =
                if code >> k & 1 == 1 { u64::MAX } else { 0 };
        }
    }

    /// Loads raw per-lane words into the PIs (pattern-parallel use).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != num_pis()`.
    pub fn load_input_words(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.netlist.num_pis());
        for (k, &w) in words.iter().enumerate() {
            self.values[self.netlist.pi(k) as usize] = w;
        }
    }

    /// Loads raw per-lane words into the PPIs (pattern-parallel use).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != num_ppis()`.
    pub fn load_state_words(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.netlist.num_ppis());
        for (k, &w) in words.iter().enumerate() {
            self.values[self.netlist.ppi(k) as usize] = w;
        }
    }

    /// Evaluates all gates in topological order (fault-free).
    pub fn eval(&mut self) {
        let arena = Arc::clone(&self.arena);
        for &g in arena.schedule() {
            let g = g as usize;
            self.values[arena.gate_output(g) as usize] =
                eval_gate_fanins(arena.kind(g), arena.fanins(g), &self.values);
        }
    }

    /// Writes the per-PO value words into `out` (cleared first): one word
    /// per primary output, bit lane `l` carrying that lane's value.
    pub fn output_words_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(
            self.netlist
                .pos()
                .iter()
                .map(|&net| self.values[net as usize]),
        );
    }

    /// Writes the per-PPO (next-state line) value words into `out`
    /// (cleared first).
    pub fn next_state_words_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(
            self.netlist
                .ppos()
                .iter()
                .map(|&net| self.values[net as usize]),
        );
    }

    /// Interprets lane `lane` of the current PO values as a packed output
    /// combination (bit `k` = PO `k`).
    #[must_use]
    pub fn output_combo(&self, lane: usize) -> u64 {
        pack_lane(self.netlist.pos(), &self.values, lane)
    }

    /// Interprets lane `lane` of the current PPO values as a state code.
    #[must_use]
    pub fn next_state_code(&self, lane: usize) -> u64 {
        pack_lane(self.netlist.ppos(), &self.values, lane)
    }

    /// Simulates `test` fault-free and records the value of **every net at
    /// every cycle** (one bit per net, packed), plus the observed outputs
    /// and final state. The resulting [`GoodTrace`] is what the PPSFP
    /// kernel reads through for nets outside a batch's fault cones.
    pub fn record_trace(&mut self, test: &ScanTest) -> GoodTrace {
        let num_nets = self.netlist.num_nets();
        let words_per_cycle = num_nets.div_ceil(64);
        let mut bits = Vec::with_capacity(words_per_cycle * test.inputs.len());
        let mut outputs = Vec::with_capacity(test.inputs.len());
        let mut code = test.init_code;
        for &input in &test.inputs {
            self.load_state_broadcast(code);
            self.load_input_broadcast(input);
            self.eval();
            for chunk in 0..words_per_cycle {
                let mut word = 0u64;
                for bit in 0..64 {
                    let net = chunk * 64 + bit;
                    if net >= num_nets {
                        break;
                    }
                    // Broadcast evaluation: every lane agrees, bit 0 is
                    // representative.
                    word |= (self.values[net] & 1) << bit;
                }
                bits.push(word);
            }
            outputs.push(self.output_combo(0));
            code = self.next_state_code(0);
        }
        GoodTrace {
            words_per_cycle,
            bits,
            outputs,
            final_code: code,
        }
    }
}

/// The fault-free value of every net at every cycle of one scan test,
/// bit-packed (cycle-major), plus the fault-free response.
///
/// Recorded once per test by [`Evaluator::record_trace`] and then shared by
/// every fault batch simulating that test: the event-driven kernel reads
/// the good value of any net outside its dirty set straight from the trace
/// instead of re-deriving it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoodTrace {
    words_per_cycle: usize,
    bits: Vec<u64>,
    outputs: Vec<u64>,
    final_code: u64,
}

impl GoodTrace {
    /// Fault-free value of `net` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` or `net` is out of range.
    #[inline]
    #[must_use]
    pub fn bit(&self, cycle: usize, net: NetId) -> bool {
        let n = net as usize;
        self.bits[cycle * self.words_per_cycle + n / 64] >> (n % 64) & 1 == 1
    }

    /// Fault-free packed output combination per cycle.
    #[must_use]
    pub fn outputs(&self) -> &[u64] {
        &self.outputs
    }

    /// Fault-free final state code (the scan-out reference).
    #[must_use]
    pub fn final_code(&self) -> u64 {
        self.final_code
    }

    /// Number of recorded cycles.
    #[must_use]
    pub fn num_cycles(&self) -> usize {
        self.outputs.len()
    }

    /// The fault-free response as a [`ScanResponse`].
    #[must_use]
    pub fn response(&self) -> ScanResponse {
        ScanResponse {
            outputs: self.outputs.clone(),
            final_code: self.final_code,
        }
    }
}

fn pack_lane(nets: &[NetId], values: &[u64], lane: usize) -> u64 {
    let mut word = 0u64;
    for (k, &net) in nets.iter().enumerate() {
        if values[net as usize] >> lane & 1 == 1 {
            word |= 1 << k;
        }
    }
    word
}

/// Evaluates one gate over `values`, gathering inputs by net id.
#[inline]
pub(crate) fn eval_gate_fanins<W: LaneWord>(kind: GateKind, fanins: &[NetId], values: &[W]) -> W {
    match kind {
        GateKind::Not => !values[fanins[0] as usize],
        GateKind::Buf => values[fanins[0] as usize],
        GateKind::And => fanins
            .iter()
            .fold(W::ones(), |acc, &i| acc & values[i as usize]),
        GateKind::Or => fanins
            .iter()
            .fold(W::zero(), |acc, &i| acc | values[i as usize]),
        GateKind::Nand => !fanins
            .iter()
            .fold(W::ones(), |acc, &i| acc & values[i as usize]),
        GateKind::Nor => !fanins
            .iter()
            .fold(W::zero(), |acc, &i| acc | values[i as usize]),
        GateKind::Xor => fanins
            .iter()
            .fold(W::zero(), |acc, &i| acc ^ values[i as usize]),
    }
}

/// Evaluates one gate over already-gathered input words (the slow-path
/// variant used when inputs pass through bridge taps or branch forces).
#[inline]
pub(crate) fn eval_gate_scratch<W: LaneWord>(kind: GateKind, inputs: &[W]) -> W {
    match kind {
        GateKind::Not => !inputs[0],
        GateKind::Buf => inputs[0],
        GateKind::And => inputs.iter().fold(W::ones(), |acc, &w| acc & w),
        GateKind::Or => inputs.iter().fold(W::zero(), |acc, &w| acc | w),
        GateKind::Nand => !inputs.iter().fold(W::ones(), |acc, &w| acc & w),
        GateKind::Nor => !inputs.iter().fold(W::zero(), |acc, &w| acc | w),
        GateKind::Xor => inputs.iter().fold(W::zero(), |acc, &w| acc ^ w),
    }
}

/// Simulates the fault-free response of `netlist` to `test`.
///
/// # Examples
///
/// ```
/// use scanft_sim::{logic, ScanTest};
/// use scanft_synth::{synthesize, SynthConfig};
///
/// let lion = scanft_fsm::benchmarks::lion();
/// let c = synthesize(&lion, &SynthConfig::default());
/// // From state 0 apply 01: output 1, next state 1 (Table 1).
/// let r = logic::simulate(c.netlist(), &ScanTest::new(0, vec![0b01]));
/// assert_eq!(r.outputs, vec![1]);
/// assert_eq!(r.final_code, 1);
/// ```
#[must_use]
pub fn simulate(netlist: &Netlist, test: &ScanTest) -> ScanResponse {
    let mut eval = Evaluator::new(netlist);
    let mut code = test.init_code;
    let mut outputs = Vec::with_capacity(test.inputs.len());
    for &input in &test.inputs {
        eval.load_state_broadcast(code);
        eval.load_input_broadcast(input);
        eval.eval();
        outputs.push(eval.output_combo(0));
        code = eval.next_state_code(0);
    }
    ScanResponse {
        outputs,
        final_code: code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_synth::{synthesize, SynthConfig};

    #[test]
    fn simulate_matches_state_table_on_lion() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        for t in lion.transitions() {
            let r = simulate(
                c.netlist(),
                &ScanTest::new(u64::from(t.from), vec![t.input]),
            );
            assert_eq!(r.outputs, vec![t.output], "transition {t:?}");
            assert_eq!(r.final_code, u64::from(t.to), "transition {t:?}");
        }
    }

    #[test]
    fn simulate_sequences_track_the_machine() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        // The paper's test tau_1 = (0, (10,00,11,00,01,00), 1).
        let seq = vec![0b10, 0b00, 0b11, 0b00, 0b01, 0b00];
        let r = simulate(c.netlist(), &ScanTest::new(0, seq.clone()));
        let (fin, outs) = lion.run(0, &seq);
        assert_eq!(r.final_code, u64::from(fin));
        assert_eq!(r.outputs, outs);
        assert_eq!(fin, 1);
    }

    #[test]
    fn broadcast_lanes_agree() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let mut eval = Evaluator::new(c.netlist());
        eval.load_state_broadcast(2);
        eval.load_input_broadcast(1);
        eval.eval();
        for lane in 0..64 {
            assert_eq!(eval.output_combo(lane), eval.output_combo(0));
            assert_eq!(eval.next_state_code(lane), eval.next_state_code(0));
        }
    }

    #[test]
    fn pattern_parallel_words() {
        // Evaluate two different states in different lanes simultaneously.
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let mut eval = Evaluator::new(c.netlist());
        // lane 0: state 0; lane 1: state 2 (code bits: y1 = bit0, y2 = bit1).
        eval.load_state_words(&[0b00, 0b10]);
        // input 01 in both lanes: x1=0, x2=1 -> PI bit0 (x1? variable order:
        // input bit k of the combination maps to PI k).
        let input = 0b01u32;
        let words: Vec<u64> = (0..2)
            .map(|k| if input >> k & 1 == 1 { 0b11 } else { 0 })
            .collect();
        eval.load_input_words(&words);
        eval.eval();
        // state 0 under 01 -> ns 1 out 1; state 2 under 01 -> ns 2 out 1.
        assert_eq!(eval.output_combo(0), 1);
        assert_eq!(eval.output_combo(1), 1);
        assert_eq!(eval.next_state_code(0), 1);
        assert_eq!(eval.next_state_code(1), 2);
    }

    #[test]
    fn scratch_output_words_match_lane_packing() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let mut eval = Evaluator::new(c.netlist());
        eval.load_state_broadcast(1);
        eval.load_input_broadcast(0b10);
        eval.eval();
        let mut pos = vec![0xdead; 7];
        let mut ppos = Vec::new();
        eval.output_words_into(&mut pos);
        eval.next_state_words_into(&mut ppos);
        assert_eq!(pos.len(), c.netlist().pos().len());
        assert_eq!(ppos.len(), c.netlist().ppos().len());
        for lane in [0usize, 17, 63] {
            let combo = pack_lane(c.netlist().pos(), &eval.values, lane);
            assert_eq!(eval.output_combo(lane), combo);
        }
        for (k, &w) in pos.iter().enumerate() {
            assert_eq!(w, eval.value(c.netlist().pos()[k]));
        }
        for (k, &w) in ppos.iter().enumerate() {
            assert_eq!(w, eval.value(c.netlist().ppos()[k]));
        }
    }

    #[test]
    fn recorded_trace_matches_simulate() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let test = ScanTest::new(2, vec![0b10, 0b00, 0b11, 0b01]);
        let reference = simulate(c.netlist(), &test);
        let mut eval = Evaluator::new(c.netlist());
        let trace = eval.record_trace(&test);
        assert_eq!(trace.response(), reference);
        assert_eq!(trace.num_cycles(), test.inputs.len());
        // Per-net bits agree with a step-by-step re-simulation.
        let n = c.netlist();
        let mut code = test.init_code;
        for (cycle, &input) in test.inputs.iter().enumerate() {
            eval.load_state_broadcast(code);
            eval.load_input_broadcast(input);
            eval.eval();
            for net in 0..n.num_nets() as u32 {
                assert_eq!(
                    trace.bit(cycle, net),
                    eval.value(net) & 1 == 1,
                    "cycle {cycle} net {net}"
                );
            }
            code = eval.next_state_code(0);
        }
        assert_eq!(trace.final_code(), code);
    }
}
