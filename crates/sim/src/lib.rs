//! Logic and fault simulation substrate for `scanft`.
//!
//! This crate evaluates scan-based tests on gate-level netlists and measures
//! the gate-level fault coverage of functional test sets, reproducing the
//! simulation side of the paper's evaluation (Tables 3, 6 and 7):
//!
//! - [`ScanTest`]: a test in the paper's sense — scan-in an initial state
//!   code, apply a sequence of primary-input combinations while observing
//!   the primary outputs at every cycle, scan-out the final state;
//! - [`logic`]: 64-lane bit-parallel combinational evaluation;
//! - [`faults`]: the two fault universes of the paper — single stuck-at
//!   faults on every line (stems and fanout branches) and non-feedback
//!   AND/OR bridging faults between outputs of multi-input gates;
//! - [`engine`]: a 64-way *fault-parallel* simulator (one fault per bit
//!   lane) with faulty-state propagation across cycles and scan-out
//!   comparison;
//! - [`campaign`]: fault-dropping simulation of a whole test set, the
//!   decreasing-length *effective-test selection* of the paper, and
//!   coverage reports;
//! - [`exhaustive`]: exhaustive combinational test application, used to
//!   classify faults left undetected by the functional tests as
//!   undetectable (the paper's redundancy argument in Table 6).
//!
//! # Example
//!
//! ```
//! use scanft_sim::{campaign, faults, ScanTest};
//! use scanft_synth::{synthesize, SynthConfig};
//!
//! let lion = scanft_fsm::benchmarks::lion();
//! let circuit = synthesize(&lion, &SynthConfig::default());
//! let netlist = circuit.netlist();
//! // One-cycle scan test per state transition (the paper's baseline).
//! let tests: Vec<ScanTest> = lion
//!     .transitions()
//!     .map(|t| ScanTest::new(circuit.encode_state(t.from), vec![t.input]))
//!     .collect();
//! let stuck = faults::enumerate_stuck(netlist);
//! let report = campaign::run(netlist, &tests, &faults::as_fault_list(&stuck));
//! // Per-transition tests are exhaustive: the irredundant lion netlist has
//! // every stuck-at fault detectable, so coverage is complete.
//! assert_eq!(report.detected(), report.num_faults());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod campaign;
pub mod collapse;
pub mod dictionary;
pub mod engine;
pub mod exhaustive;
pub mod faults;
pub mod logic;
pub mod word;

mod scan;

pub use scan::{ScanResponse, ScanTest};
pub use word::{LaneWord, W256};
